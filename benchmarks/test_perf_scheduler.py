"""Perf trajectory: scheduling policies under a skewed deadline workload.

Like ``test_perf_traversal.py``, this module tracks the implementation rather
than the paper: it fires the calibrated skewed burst from
``repro.bench.scheduler_bench`` (bulk no-deadline batch groups + late urgent
tight-deadline requests) at one service per scheduling policy and writes
``BENCH_scheduler.json`` at the repo root so CI can archive the trend.

The headline claim — EDF meets deadlines FIFO misses, and a bounded queue
sheds load with ``AdmissionError`` instead of growing without bound — is
asserted here; latency percentiles and amortization live in the JSON.

The multi-tenant section adds the fairness claim: weighted-fair queueing
holds the polite tenant's p95 where FIFO lets it collapse behind an
aggressive tenant's burst, at comparable aggregate throughput, and an
infeasible-deadline request is rejected at submit (``rejected_infeasible``)
instead of expiring in the queue.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.scheduler_bench import (
    bench_scheduler,
    build_bench_graphs,
    format_report,
    headline_ok,
    plan_decision_lines,
    write_report,
)

#: Repo-root location of the JSON artifact (next to BENCH_traversal.json).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"
#: Repo-root plan-decision log of the planner-on bench arm (JSONL, one drain
#: decision per line), archived by CI next to the report.
PLAN_DECISIONS_PATH = BENCH_PATH.parent / "plan_decisions.jsonl"

#: Reduced shape: large enough that a bulk group takes a few milliseconds
#: (so the calibrated urgent deadline is meaningfully tight), small enough
#: that the whole module stays in the seconds range.
BENCH_VERTICES = 2500
BENCH_EDGES = 40000


def test_edf_meets_deadlines_fifo_misses(results_dir):
    graphs = build_bench_graphs(BENCH_VERTICES, BENCH_EDGES)
    report = bench_scheduler(graphs=graphs)
    write_report(report, BENCH_PATH)
    decision_lines = plan_decision_lines(report)
    PLAN_DECISIONS_PATH.write_text("\n".join(decision_lines) + "\n")
    (results_dir / "bench_scheduler.txt").write_text(format_report(report) + "\n")
    print("\n" + format_report(report))

    # The artifact this run just wrote must round-trip as valid JSON.
    parsed = json.loads(BENCH_PATH.read_text())
    assert parsed["benchmark"] == "service-scheduling"
    assert {
        "workload", "policies", "admission", "summary", "planner", "resilience"
    } <= set(parsed)

    by_policy = {run["policy"]: run for run in report["policies"]}
    assert set(by_policy) == {"fifo", "largest", "edf", "wfq"}
    for run in by_policy.values():
        assert run["finished_in_time"]
        # every job is accounted for: completed or failed (incl. expired)
        total = run["completed"] + run["failed"]
        assert total == report["workload"]["bulk_jobs"] + report["workload"]["urgent_jobs"]

    # The headline: deadline-aware ordering must never do worse than FIFO,
    # and on this calibrated workload it meets deadlines FIFO misses — or
    # meets every single one, if the machine is so fast that FIFO does too.
    # The calibration anchors the deadline to this machine's speed, so the
    # contrast survives slow CI hardware (the CI step is non-gating anyway).
    assert by_policy["edf"]["urgent_met"] >= by_policy["fifo"]["urgent_met"]
    assert headline_ok(report)

    # Admission control: a bounded queue sheds part of the burst with
    # AdmissionError instead of growing without bound.
    admission = report["admission"]
    assert admission["rejected"] > 0
    assert admission["rejected"] == admission["rejected_in_stats"]
    assert admission["admitted"] + admission["rejected"] == admission["burst"]

    # Multi-tenant fairness: WFQ holds the polite tenant's p95 where FIFO
    # lets it collapse behind the aggressive burst, at comparable aggregate
    # throughput.
    multi = report["multi_tenant"]
    mt_by_policy = {run["policy"]: run for run in multi["policies"]}
    assert set(mt_by_policy) == {"fifo", "wfq"}
    for run in mt_by_policy.values():
        assert run["finished_in_time"]
    mt_summary = multi["summary"]
    assert mt_summary["wfq_polite_p95_ms"] < mt_summary["fifo_polite_p95_ms"]
    assert mt_summary["wfq_holds_polite_p95"] is True
    # The 10% claim lives in the JSON (throughput_within_10pct) where the
    # archived trend can be inspected; the assertion keeps a wider band so a
    # GC pause on a noisy shared runner cannot fail the suite over wall-clock
    # jitter between two separately timed runs.
    ratio = mt_summary["throughput_ratio_wfq_over_fifo"]
    assert 0.75 <= ratio <= 1.33, f"aggregate throughput collapsed: {ratio:.3f}"

    # The infeasible-deadline probe: cost-model admission rejects it at
    # submit (counted as rejected_infeasible), where FIFO without admission
    # lets the same request expire in the queue.
    assert mt_summary["probe_rejected_under_wfq"] is True
    assert mt_by_policy["wfq"]["rejected_infeasible"] == 1
    assert mt_by_policy["wfq"]["expired"] == 0
    assert mt_summary["probe_expired_under_fifo"] is True
    assert mt_by_policy["fifo"]["rejected_infeasible"] == 0
    assert mt_by_policy["fifo"]["expired"] >= 1

    # Fusion planner: the mixed-application backlog must actually fuse (both
    # packed and streaming shapes), throughput with the planner must not fall
    # behind planner-off beyond timing jitter, and every drain decision must
    # be in the JSONL artifact this run just wrote.
    planner = report["planner"]
    on_run = next(run for run in planner["modes"] if run["planner"])
    off_run = next(run for run in planner["modes"] if not run["planner"])
    for run in (on_run, off_run):
        assert run["finished_in_time"]
        assert run["failed"] == 0
        assert run["completed"] == planner["workload"]["jobs"]
    assert on_run["fused_plans"] > 0
    # Packed fusion must fire (the BFS/SSSP strategy groups are wide and
    # always profitable); streaming fusion is opportunistic — the CC/PageRank
    # singletons drain open-loop, and the confidence gate rightly refuses
    # them once early bootstrap errors have inflated the margin — so it is
    # recorded in fused_kinds but not required.
    assert "packed" in on_run["fused_kinds"]
    assert off_run["plans_logged"] == 0  # planner off: no plan path at all
    # The strict >= 1.0 verdict lives in the JSON (planner_not_slower) for
    # the archived trend; the assertion keeps a jitter band like the wfq
    # throughput check above.
    ratio = planner["summary"]["throughput_ratio_on_over_off"]
    assert ratio >= 0.85, f"planner-on throughput collapsed: {ratio:.3f}"
    assert decision_lines and len(decision_lines) == on_run["plans_logged"]
    for line in decision_lines:
        entry = json.loads(line)
        assert {"kind", "shape", "groups", "lanes", "actual_seconds"} <= set(entry)

    # Resilience substrate: an armed-but-idle fault plan never fired and its
    # hot-path cost stays recorded in the archived trend.  The 5% gate itself
    # lives in benchmarks/test_resilience_overhead.py; here the section just
    # has to be present and internally consistent.
    resilience = report["resilience"]
    assert resilience["faults_fired"] == 0
    assert resilience["armed_idle_ms"] > 0 and resilience["off_ms"] > 0
