"""Ablation: worker (sub-warp) size for the merged zero-copy kernel.

§4.3.1 argues that when the interconnect is the bottleneck, shrinking the
worker below a full 32-thread warp cannot help and usually hurts, because
smaller workers issue smaller PCIe requests.  This ablation sweeps the worker
size and confirms that a full warp is (at least tied for) the best choice on
an out-of-memory graph.
"""

from dataclasses import replace

import pytest

from repro.bench.report import format_table
from repro.config import default_system
from repro.graph.datasets import load_dataset, pick_sources
from repro.traversal.api import bfs
from repro.types import AccessStrategy

from .conftest import emit

WORKER_SIZES = (4, 8, 16, 32)


def sweep_worker_sizes(symbol="GK"):
    graph = load_dataset(symbol)
    source = int(pick_sources(graph, 1, seed=13)[0])
    base = default_system()
    rows = []
    for worker_size in WORKER_SIZES:
        system = replace(base, gpu=replace(base.gpu, warp_size=worker_size))
        result = bfs(graph, source, strategy=AccessStrategy.MERGED_ALIGNED, system=system)
        rows.append(
            [
                worker_size,
                round(result.seconds * 1e3, 3),
                round(result.metrics.achieved_bandwidth_gbps, 2),
                result.metrics.total_pcie_requests,
                round(result.metrics.request_size_distribution[128], 3),
            ]
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_worker_size(benchmark, results_dir):
    rows = benchmark.pedantic(sweep_worker_sizes, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_worker_size",
        format_table(
            ["worker_threads", "time_ms", "pcie_gbps", "requests", "128B_fraction"],
            rows,
            title="Ablation: worker size for Merged+Aligned BFS on GK",
        ),
    )

    by_size = {row[0]: row for row in rows}
    times = {row[0]: row[1] for row in rows}
    full_warp = times[32]
    # A full warp is at least as fast as any sub-warp worker.
    assert full_warp <= min(times.values()) * 1.02
    # Smaller workers generate more, smaller requests.
    assert by_size[4][3] >= by_size[32][3]
    assert by_size[4][4] <= by_size[32][4]
