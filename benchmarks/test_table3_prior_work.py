"""Table 3: EMOGI versus the HALO- and Subway-style baselines."""

import pytest

from repro.bench.figures import table3

from .conftest import emit


@pytest.mark.benchmark(group="table3")
def test_table3_prior_work(benchmark, harness, results_dir):
    result = benchmark.pedantic(table3, args=(harness,), rounds=1, iterations=1)
    emit(results_dir, "table3_prior_work", result.to_table())

    speedups = {(row[0], row[1], row[2]): row[5] for row in result.rows}

    # EMOGI beats both baselines on every configuration (paper: 1.34x-4.73x).
    for key, speedup in speedups.items():
        assert speedup > 1.0, f"EMOGI should outperform {key}"
        assert speedup < 8.0  # and not absurdly so

    # The Subway BFS comparisons show the largest gaps, as in the paper.
    subway_bfs = [v for (baseline, app, _), v in speedups.items()
                  if baseline == "Subway" and app == "bfs"]
    subway_sssp = [v for (baseline, app, _), v in speedups.items()
                   if baseline == "Subway" and app == "sssp"]
    assert min(subway_bfs) > 1.5
    assert sum(subway_bfs) / len(subway_bfs) > sum(subway_sssp) / len(subway_sssp)
