"""Figure 7: total PCIe request counts for Naive / Merged / Merged+Aligned BFS."""

import pytest

from repro.bench.figures import figure7

from .conftest import emit


@pytest.mark.benchmark(group="figure7")
def test_figure7_pcie_request_counts(benchmark, harness, results_dir):
    result = benchmark.pedantic(figure7, args=(harness,), rounds=1, iterations=1)
    emit(results_dir, "figure07_pcie_request_counts", result.to_table())

    for row in result.rows:
        symbol, naive, merged, aligned, merged_reduction, aligned_reduction = row
        # Merging drastically reduces the request count (paper: up to 83.3%).
        assert merged_reduction > 0.5
        # Alignment removes a further slice (paper: up to 28.8%).
        assert 0.0 <= aligned_reduction < 0.45
        assert aligned <= merged < naive
