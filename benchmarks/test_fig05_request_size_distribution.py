"""Figure 5: PCIe read-request size distribution for BFS."""

import pytest

from repro.bench.figures import figure5

from .conftest import emit


@pytest.mark.benchmark(group="figure5")
def test_figure5_request_size_distribution(benchmark, harness, results_dir):
    result = benchmark.pedantic(figure5, args=(harness,), rounds=1, iterations=1)
    emit(results_dir, "figure05_request_size_distribution", result.to_table())

    rows = {(row[0], row[1]): row for row in result.rows}
    for symbol in harness.config.symbols:
        naive = rows[(symbol, "naive")]
        merged = rows[(symbol, "merged")]
        aligned = rows[(symbol, "merged_aligned")]
        # Naive BFS is essentially all 32-byte requests (§5.3.1).
        assert naive[2] > 0.98
        # Merging raises the 128-byte fraction substantially...
        assert merged[5] > 0.25
        # ...and aligning raises it further (most on ML, least on GU).
        assert aligned[5] > merged[5]
    # ML, with its ~222 average degree, has the highest 128B share of all.
    ml_aligned = rows[("ML", "merged_aligned")][5]
    assert all(ml_aligned >= rows[(s, "merged_aligned")][5] for s in harness.config.symbols)
    # GU benefits least from alignment (uniform low degrees, §5.3.1).
    gains = {
        s: rows[(s, "merged_aligned")][5] - rows[(s, "merged")][5]
        for s in harness.config.symbols
    }
    assert gains["GU"] == min(gains.values())
