"""Benchmark package regenerating the paper's figures and tables.

Being a real package lets benchmark modules use ``from .conftest import emit``
regardless of pytest's import mode.  Run with ``python -m pytest benchmarks``.
"""
