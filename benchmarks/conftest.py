"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper's
evaluation on the 1/2000-scale datasets.  The experiment harness is session
scoped and caches completed runs, so figures that slice the same BFS
executions (5, 7, 8, 9, 10) only pay for them once; the pytest-benchmark
timings therefore measure "time to produce this figure given what has already
been computed", while the reproduced numbers themselves are written to
``benchmarks/results/*.txt`` and printed to stdout.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.harness import ExperimentConfig, ExperimentHarness

#: Number of random source vertices per graph (the paper uses 64; two keeps
#: the full benchmark suite in the minutes range).
BENCH_SOURCES = 2


@pytest.fixture(scope="session")
def harness() -> ExperimentHarness:
    return ExperimentHarness(config=ExperimentConfig(num_sources=BENCH_SOURCES))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


def emit(results_dir: Path, name: str, text: str) -> None:
    """Write a reproduced table to disk and echo it to stdout."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
