"""Figure 4: PCIe / DRAM bandwidth of the toy zero-copy access patterns."""

import pytest

from repro.bench.figures import figure4
from repro.config import default_system

from .conftest import emit


@pytest.mark.benchmark(group="figure4")
def test_figure4_toy_access_patterns(benchmark, results_dir):
    result = benchmark.pedantic(figure4, rounds=1, iterations=1)
    emit(results_dir, "figure04_toy_access_patterns", result.to_table())

    bandwidth = {row[0]: row[1] for row in result.rows}
    peak = default_system().pcie.block_transfer_gbps
    # Strided access cannot come close to the link peak (paper: 4.74 GB/s).
    assert bandwidth["strided"] < 0.6 * peak
    # Merged + aligned saturates the measured cudaMemcpy peak (paper: 12.23).
    assert bandwidth["merged_aligned"] == pytest.approx(peak, rel=0.05)
    # Misalignment costs bandwidth relative to the aligned kernel.
    assert bandwidth["merged_misaligned"] <= bandwidth["merged_aligned"]
    # The UVM reference sits around 9 GB/s (paper: 9.11-9.26).
    assert bandwidth["uvm"] == pytest.approx(9.0, abs=1.0)
