"""Figure 6: cumulative distribution of edges by vertex degree."""

import pytest

from repro.bench.figures import figure6

from .conftest import emit


@pytest.mark.benchmark(group="figure6")
def test_figure6_degree_cdf(benchmark, harness, results_dir):
    result = benchmark.pedantic(figure6, args=(harness,), rounds=1, iterations=1)
    emit(results_dir, "figure06_degree_cdf", result.to_table())

    rows = {row[0]: row for row in result.rows}
    # GU: effectively all edges belong to vertices of degree 16-48 (paper).
    assert rows["GU"][3] > 0.9  # deg <= 48 covers nearly everything
    assert rows["GU"][1] < 0.2  # almost nothing below degree 16
    # ML: nearly no edges belong to small-degree vertices.
    assert rows["ML"][6] < 0.2  # even deg <= 96 covers very little
    # Heavy-tailed graphs keep a sizeable share of edges beyond degree 96.
    assert rows["GK"][6] < 0.9
