"""Ablation: projected benefit of neighbor-list compression (§6).

The discussion section argues that because EMOGI is bottlenecked by the
interconnect while most GPU threads idle, storing each neighbor list
delta+varint compressed in host memory and decompressing on the fly could
translate the compression ratio almost directly into speedup.  This ablation
measures the achievable ratio on every evaluation graph and projects the
resulting EMOGI BFS time.
"""

import pytest

from repro.bench.report import format_table
from repro.graph.compression import compress_graph, project_compressed_traversal
from repro.graph.datasets import DATASET_SYMBOLS, load_dataset, pick_sources
from repro.traversal.api import bfs
from repro.types import AccessStrategy

from .conftest import emit


def sweep_compression():
    rows = []
    for symbol in DATASET_SYMBOLS:
        graph = load_dataset(symbol)
        summary = compress_graph(graph)
        source = int(pick_sources(graph, 1, seed=29)[0])
        baseline = bfs(graph, source, strategy=AccessStrategy.MERGED_ALIGNED)
        projected = project_compressed_traversal(
            baseline.metrics.breakdown,
            summary,
            edges_processed=baseline.metrics.traffic.edges_processed,
        )
        rows.append(
            [
                symbol,
                round(summary.bytes_per_edge, 2),
                round(summary.ratio, 3),
                round(baseline.seconds * 1e3, 3),
                round(projected.total() * 1e3, 3),
                round(baseline.seconds / projected.total(), 3),
            ]
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_compression(benchmark, results_dir):
    rows = benchmark.pedantic(sweep_compression, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_compression",
        format_table(
            [
                "graph",
                "compressed_bytes_per_edge",
                "compression_ratio",
                "emogi_ms",
                "emogi_compressed_ms",
                "projected_speedup",
            ],
            rows,
            title="Ablation: projected EMOGI speedup from delta+varint compression (§6)",
        ),
    )

    for row in rows:
        symbol, bytes_per_edge, ratio, base_ms, projected_ms, speedup = row
        # Delta+varint always beats the raw 8-byte representation on these graphs.
        assert bytes_per_edge < 8.0
        assert ratio < 1.0
        # Because the traversal is interconnect-bound, compression translates
        # into a real projected speedup, but never more than 1/ratio.
        assert 1.0 < speedup <= 1.0 / ratio + 0.01
