"""Figure 10: I/O read amplification of UVM versus EMOGI during BFS."""

import pytest

from repro.bench.figures import figure10

from .conftest import emit


@pytest.mark.benchmark(group="figure10")
def test_figure10_io_amplification(benchmark, harness, results_dir):
    result = benchmark.pedantic(figure10, args=(harness,), rounds=1, iterations=1)
    emit(results_dir, "figure10_io_amplification", result.to_table())

    amplification = {row[0]: (row[1], row[2]) for row in result.rows}

    for symbol, (uvm, emogi) in amplification.items():
        # EMOGI never exceeds the paper's stated 1.31x bound.
        assert emogi < 1.31
        # UVM reads at least roughly as much as EMOGI everywhere (on SK both
        # are essentially 1.0x because the graph nearly fits in device memory).
        assert uvm >= emogi * 0.9

    # Graphs much larger than GPU memory thrash badly under UVM...
    assert amplification["GK"][0] > 2.0
    assert amplification["GU"][0] > 2.0
    # ...while SK, which almost fits in the 16GB-class memory, barely amplifies
    # (paper: 1.14x) and ML's long neighbor lists keep it moderate (paper: 2.28x).
    assert amplification["SK"][0] < 1.3
    assert amplification["ML"][0] < amplification["GK"][0]
