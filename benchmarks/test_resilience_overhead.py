"""Resilience overhead gate: fault injection armed-but-idle vs off.

The resilience substrate (ISSUE-7) is consulted on the traversal hot path:
``iteration_checkpoint`` runs at every frontier boundary, probing the active
fault plan and the cooperative cancellation token.  The contract is that an
*armed but idle* plan — specs registered, none firing — costs less than 5%
of traversal throughput, so chaos drills can run against production-shaped
configs without distorting what they measure.

Mirrors ``test_obs_overhead.py``: interleaved min-of-N repetitions (the
minimum is the least noise-contaminated estimate on shared CI machines), a
small absolute slack against sub-millisecond wobble, and the measured
numbers land in ``benchmarks/results/resilience_overhead.txt``.
"""

from __future__ import annotations

import time

from repro.bench.traversal_bench import build_bench_graph
from repro.service import FaultPlan, faults
from repro.service.resilience import Cancellation, cancellation_scope
from repro.traversal.multisource import run_batch
from repro.types import Application

from .conftest import emit

BENCH_VERTICES = 8000
BENCH_EDGES = 120000
BENCH_SOURCES = 32
REPETITIONS = 5
#: Resilience-armed must stay within 5% of resilience-off (plus 2ms slack).
OVERHEAD_LIMIT = 0.05
ABSOLUTE_SLACK_SECONDS = 0.002

#: Armed but idle: the nth-call trigger sits far beyond any checkpoint count
#: this bench reaches, so every probe walks the spec list and declines.
IDLE_SPEC = "seed=1;engine.sweep:transient:n=1000000000"


def _time_batch(graph, sources) -> float:
    token = Cancellation(budget_seconds=3600.0)
    started = time.perf_counter()
    with cancellation_scope(token):
        outcome = run_batch(Application.BFS, graph, sources=sources)
    elapsed = time.perf_counter() - started
    assert outcome.batch_metrics  # the run actually did the work
    return elapsed


def test_resilience_overhead_within_five_percent(results_dir):
    graph = build_bench_graph(BENCH_VERTICES, BENCH_EDGES)
    sources = tuple(range(BENCH_SOURCES))
    plan = FaultPlan.from_spec(IDLE_SPEC)

    try:
        # Warm both arms: first-touch allocations must not bias either one.
        faults.activate(plan)
        _time_batch(graph, sources)
        faults.deactivate(plan)
        _time_batch(graph, sources)

        armed, off = [], []
        for _ in range(REPETITIONS):
            faults.activate(plan)
            armed.append(_time_batch(graph, sources))
            faults.deactivate(plan)
            off.append(_time_batch(graph, sources))
    finally:
        faults.deactivate()

    assert plan.total_fired() == 0, "the idle plan must never actually fire"
    best_on, best_off = min(armed), min(off)
    overhead = best_on / best_off - 1.0
    emit(
        results_dir,
        "resilience_overhead",
        "\n".join(
            [
                "Resilience overhead (bench-traversal BFS batch, "
                f"{BENCH_VERTICES} vertices / {BENCH_EDGES} edges / "
                f"{BENCH_SOURCES} sources, min of {REPETITIONS}):",
                f"  faults armed (idle): {best_on * 1e3:8.2f} ms",
                f"  faults off         : {best_off * 1e3:8.2f} ms",
                f"  overhead           : {overhead:+.2%} "
                f"(limit {OVERHEAD_LIMIT:.0%})",
            ]
        ),
    )
    assert best_on <= best_off * (1.0 + OVERHEAD_LIMIT) + ABSOLUTE_SLACK_SECONDS, (
        f"armed-but-idle best {best_on:.4f}s exceeds faults-off best "
        f"{best_off:.4f}s by more than {OVERHEAD_LIMIT:.0%}"
    )
