"""Ablation: 4-byte versus 8-byte edge-list elements.

Table 3 re-runs EMOGI with 4-byte edges for the Subway comparison; this
ablation quantifies the effect on its own.  Halving the element size halves
the bytes that must cross the link, so EMOGI — which is bandwidth-bound —
speeds up almost proportionally, while a 128-byte request now carries 32
neighbors instead of 16 (§4.1).
"""

import pytest

from repro.bench.report import format_table
from repro.graph.datasets import load_dataset, pick_sources
from repro.traversal.api import bfs
from repro.types import AccessStrategy

from .conftest import emit

SYMBOLS = ("GK", "FS")


def sweep_element_sizes():
    rows = []
    for symbol in SYMBOLS:
        times = {}
        for element_bytes in (8, 4):
            graph = load_dataset(symbol, element_bytes=element_bytes)
            source = int(pick_sources(graph, 1, seed=17)[0])
            result = bfs(graph, source, strategy=AccessStrategy.MERGED_ALIGNED)
            times[element_bytes] = result
            rows.append(
                [
                    symbol,
                    element_bytes,
                    round(result.seconds * 1e3, 3),
                    round(result.metrics.host_bytes_read / 1e6, 2),
                    round(result.metrics.achieved_bandwidth_gbps, 2),
                ]
            )
        rows.append(
            [
                symbol,
                "4B vs 8B speedup",
                round(times[8].seconds / times[4].seconds, 3),
                "",
                "",
            ]
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_element_size(benchmark, results_dir):
    rows = benchmark.pedantic(sweep_element_sizes, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_element_size",
        format_table(
            ["graph", "element_bytes", "time_ms", "host_MB_read", "pcie_gbps"],
            rows,
            title="Ablation: edge element size for Merged+Aligned BFS",
        ),
    )

    speedups = {row[0]: row[2] for row in rows if row[1] == "4B vs 8B speedup"}
    for symbol, speedup in speedups.items():
        # Bandwidth-bound: halving the bytes buys a 1.5-2x improvement.
        assert 1.3 < speedup < 2.2, f"{symbol}: unexpected 4-byte speedup {speedup}"
