"""Durable store overhead gate: write-through on vs store off.

The store's contract is that durability rides *off* the request hot path:
producers pay one bounded-queue ``put_nowait`` per result and the flush
thread does the pickling and SQLite work.  The gate pins both halves of
that contract separately, because on a single-core runner they are not
the same claim:

* **Hot path** — the timed serving window (submit through last result)
  with a store attached must stay within 5% of store-off throughput.
  The flush cadence is set longer than the burst so the coalesced batch
  drains *after* the window: what's measured is exactly what a request
  pays — fingerprint-keyed lookups and per-result enqueues.
* **Drain** — the deferred batch is then flushed explicitly and timed.
  Durability's real CPU (pickling + one batched transaction) is bounded
  against the compute it shadows instead of hidden: on a multi-core box
  it overlaps serving, on a single-core box it is the throughput tax.

Mirrors ``test_resilience_overhead.py``: interleaved min-of-N repetitions
(the minimum is the least noise-contaminated estimate on shared CI
machines), results land in ``benchmarks/results/store_overhead.txt``.
"""

from __future__ import annotations

import time

from repro.config import ServiceConfig
from repro.graph.generators import uniform_random_graph
from repro.service import Service, TraversalRequest

from .conftest import emit

#: Edge-heavy on purpose (average degree 120, the paper's regime): engine
#: time scales with edges while the pickled payload scales with vertices,
#: so the gate measures write-through against realistic compute instead
#: of against toy sweeps that finish faster than their results pickle.
BENCH_VERTICES = 8000
BENCH_EDGES = 960000
BENCH_REQUESTS = 32
#: Min-of-10: single passes wobble ±20% on shared machines (scheduling,
#: frequency drift), an order of magnitude above the effect measured, so
#: the minimum needs a deep pool of passes to converge for both arms.
REPETITIONS = 10
#: Longer than the serving window on purpose: the flusher coalesces the
#: burst into one batch that drains *after* the timed section, so the
#: hot-path arm measures the request path and the drain measurement gets
#: the whole batch — neither number depends on where a mid-window wakeup
#: happens to land.
BENCH_FLUSH_INTERVAL = 0.5
#: Hot path must stay within 5% of store-off (plus 2ms slack).
OVERHEAD_LIMIT = 0.05
ABSOLUTE_SLACK_SECONDS = 0.002
#: Draining the burst's whole write-through batch (pickle + one batched
#: WAL transaction) must cost well under the compute it shadows.
DRAIN_LIMIT = 0.25


def _time_run(graph, store_path) -> "tuple[float, float]":
    """One serving pass over distinct sources; ``(window, drain)`` seconds.

    A fresh service (and store) per pass so neither arm amortizes setup;
    distinct sources per request so the result cache never short-circuits
    the engine and every request actually exercises the write-through.
    """
    config = ServiceConfig(
        max_workers=2,
        store_path=str(store_path) if store_path is not None else None,
        store_flush_interval=BENCH_FLUSH_INTERVAL,
    )
    with Service(config=config) as service:
        service.registry.register_graph(graph)
        # One warm-up request before timing, in *both* arms: graphs load
        # lazily on first use, and the load event (content fingerprint
        # over the whole CSR, catalog upsert) is a rare per-load cost,
        # not part of the steady-state write-through claim this gate
        # pins.  The store arm then settles the catalog batch so nothing
        # from the load is left for the timed window.
        warm = service.submit(
            TraversalRequest("bfs", graph.name, source=BENCH_REQUESTS)
        )
        service.result(warm, timeout=120)
        if service.store is not None:
            service.store.flush()
        started = time.perf_counter()
        jobs = [
            service.submit(
                TraversalRequest("bfs", graph.name, source=source)
            )
            for source in range(BENCH_REQUESTS)
        ]
        for job in jobs:
            service.result(job, timeout=120)
        elapsed = time.perf_counter() - started
        drain = 0.0
        if service.store is not None:
            drain_started = time.perf_counter()
            service.store.flush()
            drain = time.perf_counter() - drain_started
    return elapsed, drain


def test_store_write_through_within_five_percent(results_dir, tmp_path):
    graph = uniform_random_graph(
        BENCH_VERTICES, BENCH_EDGES, seed=3, name="store-bench"
    )

    # Warm both arms: first-touch allocations must not bias either one.
    _time_run(graph, tmp_path / "warm.db")
    _time_run(graph, None)

    on, off, drains = [], [], []
    for repetition in range(REPETITIONS):
        elapsed, drain = _time_run(graph, tmp_path / f"rep{repetition}.db")
        on.append(elapsed)
        drains.append(drain)
        off.append(_time_run(graph, None)[0])

    best_on, best_off, best_drain = min(on), min(off), min(drains)
    overhead = best_on / best_off - 1.0
    drain_fraction = best_drain / best_off
    emit(
        results_dir,
        "store_overhead",
        "\n".join(
            [
                "Durable store overhead (serving BFS, "
                f"{BENCH_VERTICES} vertices / {BENCH_EDGES} edges / "
                f"{BENCH_REQUESTS} requests, min of {REPETITIONS}):",
                f"  store on (hot path)     : {best_on * 1e3:8.2f} ms",
                f"  store off               : {best_off * 1e3:8.2f} ms",
                f"  overhead                : {overhead:+.2%} "
                f"(limit {OVERHEAD_LIMIT:.0%})",
                f"  write-through drain     : {best_drain * 1e3:8.2f} ms "
                f"= {drain_fraction:.1%} of window "
                f"(limit {DRAIN_LIMIT:.0%})",
                "  on  passes: " + " ".join(f"{t * 1e3:6.1f}" for t in on),
                "  off passes: " + " ".join(f"{t * 1e3:6.1f}" for t in off),
                "  drains    : "
                + " ".join(f"{t * 1e3:6.1f}" for t in drains),
            ]
        ),
    )
    assert best_on <= best_off * (1.0 + OVERHEAD_LIMIT) + ABSOLUTE_SLACK_SECONDS, (
        f"hot-path best {best_on:.4f}s exceeds store-off best "
        f"{best_off:.4f}s by more than {OVERHEAD_LIMIT:.0%}"
    )
    assert best_drain <= best_off * DRAIN_LIMIT, (
        f"write-through drain {best_drain:.4f}s exceeds "
        f"{DRAIN_LIMIT:.0%} of the {best_off:.4f}s serving window"
    )
