"""Figure 12: scaling from PCIe 3.0 to PCIe 4.0 for UVM and EMOGI."""

import pytest

from repro.bench.figures import PAPER_FIG12_SCALING, figure12

from .conftest import emit


@pytest.mark.benchmark(group="figure12")
def test_figure12_pcie4_scaling(benchmark, harness, results_dir):
    result = benchmark.pedantic(figure12, args=(harness,), rounds=1, iterations=1)
    emit(results_dir, "figure12_pcie4_scaling", result.to_table())

    scaling_row = result.rows[-1]
    uvm_scaling, emogi_scaling = scaling_row[4], scaling_row[5]

    # EMOGI converts most of the 2x link improvement into speedup; UVM cannot,
    # because its page-fault handling is CPU-bound (paper: 1.9x vs 1.53x).
    assert emogi_scaling > uvm_scaling
    assert emogi_scaling > 1.6
    assert uvm_scaling < 1.75
    assert uvm_scaling == pytest.approx(PAPER_FIG12_SCALING["uvm"], abs=0.25)
    assert emogi_scaling == pytest.approx(PAPER_FIG12_SCALING["emogi"], abs=0.3)

    # Per-configuration sanity: EMOGI on PCIe 4.0 is the fastest column.
    for row in result.rows[:-1]:
        _, _, uvm3, emogi3, uvm4, emogi4 = row
        assert emogi4 >= emogi3 > uvm3
        assert emogi4 >= uvm4
