"""Serving-layer throughput: requests/sec through the repro.service stack.

Unlike the figure benchmarks (which reproduce paper numbers), this one
measures the serving subsystem itself: a burst of mixed BFS/SSSP/CC requests
with realistic repetition is pushed through the service from concurrent
clients, and the report records end-to-end requests/sec, the dedup rate, and
the cache hit rate of an immediate replay.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.config import ServiceConfig
from repro.service import JobStatus, Service, TraversalRequest
from repro.types import AccessStrategy, Application

from .conftest import emit

#: Graphs served; two dataset analogs is enough to exercise registry sharing.
SERVED_DATASETS = ("GK", "GU")
#: Extra down-scaling so the benchmark stays in the seconds range.
SERVICE_SCALE = 40000
SOURCES_PER_GRAPH = 8
CLIENT_THREADS = 8


def build_workload() -> list[TraversalRequest]:
    requests = []
    for symbol in SERVED_DATASETS:
        for source in range(SOURCES_PER_GRAPH):
            requests.append(TraversalRequest(Application.BFS, symbol, source=source))
            requests.append(
                TraversalRequest(
                    Application.SSSP,
                    symbol,
                    source=source,
                    strategy=AccessStrategy.MERGED,
                )
            )
        requests.append(TraversalRequest(Application.CC, symbol))
    # repeat a third of the traffic, as real request streams do
    return requests + requests[::3]


def serve_burst() -> tuple[Service, list, float]:
    service = Service.with_datasets(
        SERVED_DATASETS, config=ServiceConfig(max_workers=4), scale=SERVICE_SCALE
    )
    workload = build_workload()
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as clients:
        jobs = list(clients.map(service.submit, workload))
    assert service.wait_all(timeout=300)
    elapsed = time.perf_counter() - started
    return service, jobs, elapsed


@pytest.mark.benchmark(group="service")
def test_service_throughput(benchmark, results_dir):
    service, jobs, elapsed = benchmark.pedantic(serve_burst, rounds=1, iterations=1)

    assert all(job.status is JobStatus.DONE for job in jobs)
    burst = service.stats()
    requests_per_second = len(jobs) / elapsed

    # replay the same workload: everything must be served without the engine
    workload = build_workload()
    replay_started = time.perf_counter()
    service.submit_many(workload)
    assert service.wait_all(timeout=300)
    replay_elapsed = time.perf_counter() - replay_started
    replay = service.stats()
    replay_rps = len(workload) / replay_elapsed
    service.close()

    lines = [
        "Service throughput (mixed BFS/SSSP/CC burst over "
        f"{len(SERVED_DATASETS)} graphs, {CLIENT_THREADS} client threads)",
        "=" * 68,
        f"burst : {len(jobs)} requests in {elapsed:.3f}s "
        f"= {requests_per_second:.1f} requests/s",
        f"        {burst.executions} engine executions, "
        f"{burst.deduplicated} deduplicated ({burst.dedup_rate:.0%}), "
        f"amortization {burst.amortization:.2f} jobs/batch",
        f"replay: {len(workload)} requests in {replay_elapsed:.3f}s "
        f"= {replay_rps:.1f} requests/s (cache hit rate "
        f"{replay.cache.hit_rate:.0%}, "
        f"{replay.executions - burst.executions} new executions)",
    ]
    emit(results_dir, "service_throughput", "\n".join(lines))

    assert requests_per_second > 0
    assert burst.failed == 0
    # no duplicate submission re-executed, and the replay ran nothing new
    assert burst.executions == len(set(build_workload()))
    assert replay.executions == burst.executions
    assert replay_rps > requests_per_second
