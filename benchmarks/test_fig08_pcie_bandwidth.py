"""Figure 8: achieved PCIe bandwidth per implementation while running BFS."""

import pytest

from repro.bench.figures import figure8

from .conftest import emit


@pytest.mark.benchmark(group="figure8")
def test_figure8_pcie_bandwidth(benchmark, harness, results_dir):
    result = benchmark.pedantic(figure8, args=(harness,), rounds=1, iterations=1)
    emit(results_dir, "figure08_pcie_bandwidth", result.to_table())

    peak = result.notes["memcpy_peak_gbps"]
    for row in result.rows:
        symbol, uvm, naive, merged, aligned = row
        # The paper's ordering: Naive ~4.7 < UVM ~9 < Merged ~11 < Aligned ~11.5-12.
        assert naive < uvm < merged
        assert merged <= aligned * 1.05
        # UVM sits around 9 GB/s, capped by fault handling.
        assert uvm == pytest.approx(9.0, abs=1.0)
        # The fully optimized kernel approaches (but does not exceed) the peak.
        assert aligned <= peak + 0.1
        assert aligned > 0.85 * peak
