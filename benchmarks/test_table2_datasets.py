"""Table 2: the evaluation graphs and their scaled analogs."""

import pytest

from repro.bench.figures import table2
from repro.config import DATASET_SCALE, default_system

from .conftest import emit


@pytest.mark.benchmark(group="table2")
def test_table2_datasets(benchmark, harness, results_dir):
    result = benchmark.pedantic(table2, args=(harness,), rounds=1, iterations=1)
    emit(results_dir, "table2_datasets", result.to_table())

    gpu_memory = default_system().gpu.memory_bytes
    for row in result.rows:
        symbol = row[0]
        paper_vertices, paper_edges = row[2], row[3]
        scaled_vertices, scaled_edges = row[6], row[7]
        average_degree = row[9]
        # The scaling factor is respected for both vertices and edges.
        assert scaled_vertices == pytest.approx(paper_vertices / DATASET_SCALE, rel=0.05)
        assert scaled_edges == pytest.approx(paper_edges / DATASET_SCALE, rel=0.3)
        # Average degree matches the original within a reasonable tolerance.
        assert average_degree == pytest.approx(paper_edges / paper_vertices, rel=0.3)

    # The defining property of the evaluation: every graph except SK has an
    # edge list larger than the (scaled) GPU memory.
    sizes = {row[0]: row[8] * 1e6 for row in result.rows}  # scaled_E_MB column
    for symbol, size in sizes.items():
        if symbol == "SK":
            assert size < 1.05 * gpu_memory
        else:
            assert size > gpu_memory
