"""Observability overhead gate: tracing on vs off on the traversal bench.

The ISSUE-6 contract is that the always-on kernel counters plus the
``REPRO_TRACE``-gated per-iteration detail cost less than 5% of traversal
throughput.  This module times the bench-traversal BFS batch protocol with
``REPRO_TRACE=1`` and ``REPRO_TRACE=0`` in interleaved min-of-N repetitions
(min-of-N because CI machines are noisy and the minimum is the least
contaminated estimate of true cost) and gates the ratio.

A small absolute slack keeps a sub-millisecond timing wobble on a fast run
from flaking the relative gate; the measured numbers land in
``benchmarks/results/obs_overhead.txt`` for the trend record.
"""

from __future__ import annotations

import time

from repro.bench.traversal_bench import build_bench_graph
from repro.obs.trace import ENV_SWITCH
from repro.traversal.multisource import run_batch
from repro.types import Application

from .conftest import emit

BENCH_VERTICES = 8000
BENCH_EDGES = 120000
BENCH_SOURCES = 32
REPETITIONS = 5
#: Tracing-on must stay within 5% of tracing-off (plus 2ms absolute slack).
OVERHEAD_LIMIT = 0.05
ABSOLUTE_SLACK_SECONDS = 0.002


def _time_batch(graph, sources) -> float:
    started = time.perf_counter()
    outcome = run_batch(Application.BFS, graph, sources=sources)
    elapsed = time.perf_counter() - started
    assert outcome.batch_metrics  # the run actually did the work
    return elapsed


def test_tracing_overhead_within_five_percent(results_dir, monkeypatch):
    graph = build_bench_graph(BENCH_VERTICES, BENCH_EDGES)
    sources = tuple(range(BENCH_SOURCES))

    # Warm both paths once: first-touch allocations must not bias either arm.
    for value in ("1", "0"):
        monkeypatch.setenv(ENV_SWITCH, value)
        _time_batch(graph, sources)

    traced, untraced = [], []
    for _ in range(REPETITIONS):
        monkeypatch.setenv(ENV_SWITCH, "1")
        traced.append(_time_batch(graph, sources))
        monkeypatch.setenv(ENV_SWITCH, "0")
        untraced.append(_time_batch(graph, sources))

    best_on, best_off = min(traced), min(untraced)
    overhead = best_on / best_off - 1.0
    emit(
        results_dir,
        "obs_overhead",
        "\n".join(
            [
                "Observability overhead (bench-traversal BFS batch, "
                f"{BENCH_VERTICES} vertices / {BENCH_EDGES} edges / "
                f"{BENCH_SOURCES} sources, min of {REPETITIONS}):",
                f"  tracing on : {best_on * 1e3:8.2f} ms",
                f"  tracing off: {best_off * 1e3:8.2f} ms",
                f"  overhead   : {overhead:+.2%} (limit {OVERHEAD_LIMIT:.0%})",
            ]
        ),
    )
    assert best_on <= best_off * (1.0 + OVERHEAD_LIMIT) + ABSOLUTE_SLACK_SECONDS, (
        f"tracing-on best {best_on:.4f}s exceeds tracing-off best "
        f"{best_off:.4f}s by more than {OVERHEAD_LIMIT:.0%}"
    )
