"""Ablation: UVM sensitivity to the GPU memory capacity.

The paper explains the SK outlier (only 1.21x over UVM, 1.14x amplification)
by the graph almost fitting in the 16GB V100.  This ablation sweeps the
simulated device-memory capacity for one graph and shows the crossover: once
the edge list fits, UVM stops thrashing and catches up with (and passes)
zero-copy, which still pays the link on every access.
"""

import pytest

from repro.bench.report import format_table
from repro.config import default_system
from repro.graph.datasets import load_dataset, pick_sources
from repro.traversal.api import bfs
from repro.types import AccessStrategy

from .conftest import emit

CAPACITY_FRACTIONS = (0.25, 0.5, 0.75, 1.25)


def sweep_gpu_memory(symbol="GU"):
    graph = load_dataset(symbol)
    source = int(pick_sources(graph, 1, seed=19)[0])
    base = default_system()
    rows = []
    for fraction in CAPACITY_FRACTIONS:
        capacity = int(graph.edge_list_bytes * fraction) + 4 * 1024 * 1024
        system = base.with_gpu_memory(capacity)
        uvm = bfs(graph, source, strategy=AccessStrategy.UVM, system=system)
        emogi = bfs(graph, source, strategy=AccessStrategy.MERGED_ALIGNED, system=system)
        rows.append(
            [
                fraction,
                round(uvm.metrics.io_amplification, 3),
                round(uvm.seconds * 1e3, 3),
                round(emogi.seconds * 1e3, 3),
                round(uvm.seconds / emogi.seconds, 3),
            ]
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_gpu_memory(benchmark, results_dir):
    rows = benchmark.pedantic(sweep_gpu_memory, rounds=1, iterations=1)
    emit(
        results_dir,
        "ablation_gpu_memory",
        format_table(
            ["capacity_vs_edge_list", "uvm_amplification", "uvm_ms", "emogi_ms", "emogi_speedup"],
            rows,
            title="Ablation: UVM sensitivity to GPU memory capacity (BFS on GU)",
        ),
    )

    by_fraction = {row[0]: row for row in rows}
    # Amplification decreases monotonically as more of the graph fits.
    amplifications = [by_fraction[f][1] for f in CAPACITY_FRACTIONS]
    assert all(b <= a + 1e-6 for a, b in zip(amplifications, amplifications[1:]))
    # Heavily oversubscribed memory: EMOGI wins clearly.
    assert by_fraction[0.25][4] > 1.5
    # Once the edge list fits, UVM catches up (amplification -> 1) and EMOGI's
    # advantage disappears or reverses.
    assert by_fraction[1.25][1] == pytest.approx(1.0, abs=0.05)
    assert by_fraction[1.25][4] < by_fraction[0.25][4]
