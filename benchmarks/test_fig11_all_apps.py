"""Figure 11: EMOGI speedup over UVM across SSSP, BFS and CC."""

import pytest

from repro.bench.figures import PAPER_FIG11_AVERAGE_SPEEDUP, figure11

from .conftest import emit


@pytest.mark.benchmark(group="figure11")
def test_figure11_all_applications(benchmark, harness, results_dir):
    result = benchmark.pedantic(figure11, args=(harness,), rounds=1, iterations=1)
    emit(results_dir, "figure11_all_apps", result.to_table())

    rows = [row for row in result.rows if row[1] != "Avg"]
    average = result.row_for("all")[2]

    # EMOGI wins for every application and dataset.
    for application, symbol, speedup in rows:
        assert speedup > 1.0, f"{application}/{symbol} should beat UVM"

    # Overall average in the ballpark of the paper's 2.92x.
    assert average == pytest.approx(PAPER_FIG11_AVERAGE_SPEEDUP, rel=0.45)

    # CC shows the smallest average speedup of the three applications (§5.4).
    def app_mean(name):
        values = [row[2] for row in rows if row[0] == name]
        return sum(values) / len(values)

    assert app_mean("cc") < app_mean("bfs")
    assert app_mean("cc") < app_mean("sssp")
