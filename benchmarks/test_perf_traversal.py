"""Perf trajectory: batched traversal vs per-source / per-config runs.

Unlike the figure benchmarks (which reproduce the paper's numbers), this
module tracks the *implementation's* wall-clock throughput over time: it runs
the 64-source ``run_average`` protocol (BFS, SSSP) and the multi-lane
streaming protocol (CC, PageRank) serially and batched, verifies the two are
bit-identical, and writes ``BENCH_traversal.json`` at the repo root so CI can
archive the trend.

The assertion thresholds are deliberately loose (CI machines are noisy); the
headline numbers live in the JSON artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.traversal_bench import (
    bench_traversal,
    build_bench_graph,
    format_report,
    write_report,
)
from repro.traversal.relax import default_method
from repro.types import AccessStrategy

#: Repo-root location of the JSON artifact (next to ROADMAP.md).
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_traversal.json"

#: Reduced shape so the whole module stays in tier-1-friendly territory
#: (a few seconds); ``repro.cli bench-traversal`` runs the full default shape.
BENCH_VERTICES = 12000
BENCH_EDGES = 180000
BENCH_SOURCES = 64
BENCH_LANES = 8


def test_batched_traversal_beats_serial(results_dir):
    graph = build_bench_graph(BENCH_VERTICES, BENCH_EDGES)
    report = bench_traversal(
        graph=graph,
        num_sources=BENCH_SOURCES,
        strategies=(AccessStrategy.MERGED_ALIGNED, AccessStrategy.UVM),
        applications=("bfs", "sssp", "cc", "pagerank"),
        num_lanes=BENCH_LANES,
    )
    write_report(report, BENCH_PATH)
    (results_dir / "bench_traversal.txt").write_text(format_report(report) + "\n")
    print("\n" + format_report(report))

    # The artifact this run just wrote must round-trip as valid JSON.
    parsed = json.loads(BENCH_PATH.read_text())
    assert parsed["benchmark"] == "traversal-batching"
    assert {"graph", "runs", "summary", "relax_backend"} <= set(parsed)
    for run in parsed["runs"]:
        assert run["serial_seconds"] > 0
        assert run["batched_seconds"] > 0

    assert report["summary"]["all_values_match"]

    bfs_runs = [run for run in report["runs"] if run["application"] == "bfs"]
    sssp_runs = [run for run in report["runs"] if run["application"] == "sssp"]
    streaming_runs = [run for run in report["runs"] if run["mode"] == "streaming"]
    assert streaming_runs, "streaming scenarios missing from the report"

    # BFS carries the long-standing ~4.8x headline; gate loosely so a noisy
    # CI machine cannot flake the suite while still catching real regressions.
    assert all(run["speedup"] > 1.5 for run in bfs_runs)
    # The lane-parallel relaxation kernel lifts SSSP to ~5x with the native
    # backend (the ISSUE 5 target is >=3x); without a C compiler the numpy
    # kernel only amortizes the engine sweeps, so demand no regression
    # beyond noise there instead.
    sssp_floor = 1.5 if default_method() == "native" else 0.5
    assert all(run["speedup"] > sssp_floor for run in sssp_runs)
    # Streaming batches share one algorithm pass across all lanes; even on a
    # noisy machine they must not be slower than the solo runs.
    assert all(run["speedup"] > 1.0 for run in streaming_runs)
    assert all(run["metrics_match"] for run in streaming_runs)
