"""Figure 9: BFS speedup of the zero-copy variants over the UVM baseline."""

import pytest

from repro.bench.figures import PAPER_FIG9_AVERAGE_SPEEDUP, figure9
from repro.types import AccessStrategy

from .conftest import emit


@pytest.mark.benchmark(group="figure9")
def test_figure9_bfs_speedup(benchmark, harness, results_dir):
    result = benchmark.pedantic(figure9, args=(harness,), rounds=1, iterations=1)
    emit(results_dir, "figure09_bfs_speedup", result.to_table())

    average = result.row_for("Avg")
    naive_avg, merged_avg, aligned_avg = average[1], average[2], average[3]

    # Shape: Naive loses to UVM on average, the optimized kernels win big.
    paper = PAPER_FIG9_AVERAGE_SPEEDUP
    assert naive_avg < 1.0
    assert merged_avg > 2.0
    assert aligned_avg > merged_avg
    # Rough magnitude agreement with the paper (0.73x / 3.24x / 3.56x).
    assert naive_avg == pytest.approx(paper[AccessStrategy.NAIVE], abs=0.35)
    assert aligned_avg == pytest.approx(paper[AccessStrategy.MERGED_ALIGNED], rel=0.45)

    # Per-graph: SK (which almost fits in GPU memory) shows the smallest gain.
    per_graph = {row[0]: row[3] for row in result.rows if row[0] != "Avg"}
    assert per_graph["SK"] == min(per_graph.values())
    for symbol, speedup in per_graph.items():
        if symbol != "SK":
            assert speedup > 1.0
