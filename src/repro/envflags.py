"""One truthy/falsy contract for every ``REPRO_*`` environment switch.

Before this module existed every kill switch parsed the environment its own
way: :mod:`repro.traversal._native` accepted ``0/false/off/no`` as falsy (and
anything else as truthy), :mod:`repro.obs.trace` kept its own copy of the same
tuple, and new switches were one typo away from a third dialect.  All
``REPRO_*`` reads now route through the helpers here, and the
``raw-envflag`` lint rule (``REPRO104``, see :mod:`repro.analysis`) rejects
any direct ``os.environ`` / ``os.getenv`` access to a ``REPRO_*`` name
anywhere else in the tree.

Contract
--------
* Truthy values: ``1 / true / on / yes`` (case-insensitive, surrounding
  whitespace ignored).
* Falsy values: ``0 / false / off / no``.
* Unset or empty ⇒ the caller's default.
* Anything else ⇒ the caller's default as well.  Switches are operational
  kill levers: a garbled value must never flip a production service into an
  unintended mode, so unknown spellings degrade to the documented default
  rather than guessing.  (Value-carrying variables use :func:`env_str` /
  :func:`env_choice`, where :func:`env_choice` *does* reject unknown values
  loudly — a typo'd ``REPRO_NATIVE_SANITIZE=asna`` should fail the build
  that asked for a sanitizer, not silently skip it.)
"""

from __future__ import annotations

import os

from .errors import ConfigurationError

#: Spellings accepted as "on".
TRUTHY = frozenset({"1", "true", "on", "yes"})

#: Spellings accepted as "off".
FALSY = frozenset({"0", "false", "off", "no"})


def env_flag(name: str, default: bool = True) -> bool:
    """Boolean switch from the environment under the shared contract."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if not value:
        return default
    if value in TRUTHY:
        return True
    if value in FALSY:
        return False
    return default


def env_str(name: str, default: str | None = None) -> str | None:
    """Free-form string value; unset or whitespace-only ⇒ ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return raw.strip()


def env_choice(
    name: str, choices: tuple[str, ...], default: str | None = None
) -> str | None:
    """One of ``choices`` (case-insensitive), ``default`` when unset.

    Unlike :func:`env_flag`, an unknown value raises
    :class:`~repro.errors.ConfigurationError`: enumerated modes are always
    explicit opt-ins (build modes, backend selectors), where silently
    ignoring a typo would un-ask for exactly what the operator asked for.
    """
    raw = env_str(name)
    if raw is None:
        return default
    value = raw.lower()
    if value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {', '.join(choices)}; got {raw!r}"
        )
    return value
