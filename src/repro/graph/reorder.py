"""Vertex reordering transforms (substrate for the HALO baseline).

HALO [21] improves UVM graph traversal by reordering the CSR so vertices that
are traversed together are stored together, increasing the spatial locality of
4KB page migrations.  The exact HALO ordering is not public; we provide the
two standard locality-enhancing orderings its paper builds on — a BFS
(Cuthill-McKee-like) order and a hub-clustering degree order — plus the
machinery to relabel a CSR graph under any permutation.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from ..types import EDGE_DTYPE, VERTEX_DTYPE
from .builder import from_edge_array
from .csr import CSRGraph


def apply_permutation(graph: CSRGraph, new_id_of: np.ndarray) -> CSRGraph:
    """Relabel vertices: vertex ``v`` becomes ``new_id_of[v]``.

    The result is the same graph (isomorphic) with neighbor lists stored in
    the new vertex order, which changes its physical layout in the edge list
    — exactly what locality-oriented preprocessing manipulates.
    """
    new_id_of = np.asarray(new_id_of, dtype=VERTEX_DTYPE)
    if new_id_of.size != graph.num_vertices:
        raise GraphFormatError("permutation must have one entry per vertex")
    if np.sort(new_id_of).tolist() != list(range(graph.num_vertices)):
        raise GraphFormatError("permutation must be a bijection over vertex IDs")
    sources = new_id_of[graph.edge_sources()]
    destinations = new_id_of[graph.edges].astype(EDGE_DTYPE)
    reordered = from_edge_array(
        sources,
        destinations,
        num_vertices=graph.num_vertices,
        weights=graph.weights,
        directed=True,  # already materialized in both directions if undirected
        element_bytes=graph.element_bytes,
        name=f"{graph.name}-reordered",
    )
    # Preserve the original directedness flag; the edge set is unchanged.
    return CSRGraph(
        offsets=reordered.offsets,
        edges=reordered.edges,
        weights=reordered.weights,
        directed=graph.directed,
        element_bytes=graph.element_bytes,
        name=f"{graph.name}-reordered",
        meta=dict(graph.meta),
    )


def degree_order(graph: CSRGraph, descending: bool = True) -> np.ndarray:
    """Permutation placing high-degree (hub) vertices first.

    Returns ``new_id_of`` suitable for :func:`apply_permutation`.
    """
    degrees = graph.degrees()
    order = np.argsort(-degrees if descending else degrees, kind="stable")
    new_id_of = np.empty(graph.num_vertices, dtype=VERTEX_DTYPE)
    new_id_of[order] = np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
    return new_id_of


def bfs_order(graph: CSRGraph, source: int | None = None) -> np.ndarray:
    """Permutation assigning IDs in breadth-first visit order.

    Vertices unreachable from the chosen source keep their relative order and
    are appended after all reachable ones.  This is the classic locality
    reordering (reverse Cuthill-McKee without the reversal).
    """
    num_vertices = graph.num_vertices
    if num_vertices == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    if source is None:
        source = int(np.argmax(graph.degrees()))
    visited = np.zeros(num_vertices, dtype=bool)
    order: list[int] = []
    frontier = [source]
    visited[source] = True
    while frontier:
        order.extend(frontier)
        next_frontier: list[int] = []
        for vertex in frontier:
            for neighbor in graph.neighbors(vertex):
                neighbor = int(neighbor)
                if not visited[neighbor]:
                    visited[neighbor] = True
                    next_frontier.append(neighbor)
        frontier = next_frontier
    remaining = np.flatnonzero(~visited)
    order.extend(int(v) for v in remaining)
    new_id_of = np.empty(num_vertices, dtype=VERTEX_DTYPE)
    new_id_of[np.array(order, dtype=np.int64)] = np.arange(num_vertices, dtype=VERTEX_DTYPE)
    return new_id_of


def halo_order(graph: CSRGraph, source: int | None = None) -> np.ndarray:
    """The locality ordering used by the HALO-style baseline.

    HALO clusters frequently-traversed (hub) vertices so their neighbor lists
    share pages; we approximate it with a descending-degree ordering, which
    improves UVM page locality substantially without being as unrealistically
    perfect as a full BFS relabelling of the scaled-down graph would be.
    ``source`` is accepted for interface compatibility and ignored.
    """
    del source
    return degree_order(graph, descending=True)
