"""Active-subgraph compaction (substrate for the Subway baseline).

Subway [45] avoids UVM entirely: before every iteration it builds a compacted
subgraph containing only the *active* vertices' neighbor lists, copies that
subgraph to the GPU with an explicit block transfer, and runs the kernel on
local memory.  The functions here produce exactly that compacted CSR together
with the byte counts the cost model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arrays import ragged_gather_indices
from ..errors import GraphFormatError
from ..types import VERTEX_DTYPE
from .csr import CSRGraph


@dataclass(frozen=True)
class ActiveSubgraph:
    """A compacted subgraph of the active vertices' neighbor lists.

    ``local_offsets`` indexes the compacted edge list per *active* vertex (in
    the order given by ``active_vertices``); destinations keep their original
    global IDs, as Subway does (value arrays stay GPU-resident and global).
    """

    active_vertices: np.ndarray
    local_offsets: np.ndarray
    edges: np.ndarray
    weights: np.ndarray | None
    element_bytes: int

    @property
    def num_active(self) -> int:
        return self.active_vertices.size

    @property
    def num_edges(self) -> int:
        return self.edges.size

    @property
    def edge_bytes(self) -> int:
        """Bytes of compacted edge list that must be transferred to the GPU."""
        return self.num_edges * self.element_bytes

    @property
    def offset_bytes(self) -> int:
        return self.local_offsets.size * self.element_bytes

    @property
    def weight_bytes(self) -> int:
        return 0 if self.weights is None else self.num_edges * 4

    @property
    def transfer_bytes(self) -> int:
        """Total bytes shipped over the interconnect for this iteration."""
        return self.edge_bytes + self.offset_bytes + self.weight_bytes


def extract_active_subgraph(
    graph: CSRGraph, active_vertices: np.ndarray, include_weights: bool = False
) -> ActiveSubgraph:
    """Compact the neighbor lists of ``active_vertices`` into a new edge list."""
    active_vertices = np.asarray(active_vertices, dtype=VERTEX_DTYPE)
    if active_vertices.size and (
        active_vertices.min() < 0 or active_vertices.max() >= graph.num_vertices
    ):
        raise GraphFormatError("active vertex IDs out of range")
    starts = graph.offsets[active_vertices]
    ends = graph.offsets[active_vertices + 1]
    lengths = ends - starts
    local_offsets = np.zeros(active_vertices.size + 1, dtype=VERTEX_DTYPE)
    np.cumsum(lengths, out=local_offsets[1:])
    gather_index = ragged_gather_indices(starts, lengths)
    edges = graph.edges[gather_index]
    weights = None
    if include_weights and graph.weights is not None:
        weights = graph.weights[gather_index]
    return ActiveSubgraph(
        active_vertices=active_vertices,
        local_offsets=local_offsets,
        edges=edges,
        weights=weights,
        element_bytes=graph.element_bytes,
    )


