"""Graph statistics used by the paper's motivation and Figure 6.

The paper motivates zero-copy with the observation that, across 1122 graphs,
the average vertex degree is ~71 elements — enough spatial locality for
128-byte requests but far short of the 512-1024 elements needed to make a 4KB
UVM page migration efficient (§1, §4.1).  Figure 6 plots, for each evaluation
graph, the cumulative fraction of *edges* that belong to vertices of at most a
given degree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of a graph's degree distribution."""

    num_vertices: int
    num_edges: int
    average_degree: float
    median_degree: float
    max_degree: int
    min_degree: int
    std_degree: float

    @property
    def fits_cacheline(self) -> float:
        """Average number of 128-byte lines spanned by one neighbor list."""
        return max(1.0, self.average_degree * 8 / 128.0)


def degree_stats(graph: CSRGraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for a graph."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return DegreeStats(0, 0, 0.0, 0.0, 0, 0, 0.0)
    return DegreeStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=float(degrees.mean()),
        median_degree=float(np.median(degrees)),
        max_degree=int(degrees.max()),
        min_degree=int(degrees.min()),
        std_degree=float(degrees.std()),
    )


def degree_histogram(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """``(degree values, vertex counts)`` for every degree present in the graph."""
    degrees = graph.degrees()
    values, counts = np.unique(degrees, return_counts=True)
    return values, counts


def edge_cdf_by_degree(
    graph: CSRGraph, max_degree: int | None = None, num_points: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative fraction of edges owned by vertices of degree <= d (Figure 6).

    Returns ``(degree_axis, cdf)`` where ``cdf[i]`` is the fraction of all
    edge-list entries whose source vertex has degree at most
    ``degree_axis[i]``.  ``max_degree`` truncates the x axis (the paper cuts
    it at 96); ``num_points`` optionally resamples the axis to a fixed length.
    """
    degrees = graph.degrees()
    if graph.num_edges == 0:
        return np.array([0]), np.array([0.0])
    values, counts = np.unique(degrees, return_counts=True)
    edges_per_degree = values * counts
    cdf = np.cumsum(edges_per_degree) / graph.num_edges
    if max_degree is not None:
        keep = values <= max_degree
        values, cdf = values[keep], cdf[keep]
    if num_points is not None and values.size:
        axis = np.linspace(0, values.max(), num_points)
        resampled = np.interp(axis, values, cdf, left=0.0)
        return axis, resampled
    return values.astype(np.int64), cdf


def fraction_of_edges_in_degree_range(graph: CSRGraph, low: int, high: int) -> float:
    """Fraction of edges whose source vertex degree lies in ``[low, high]``."""
    degrees = graph.degrees()
    if graph.num_edges == 0:
        return 0.0
    mask = (degrees >= low) & (degrees <= high)
    return float((degrees[mask]).sum() / graph.num_edges)


def neighbor_list_alignment_fraction(graph: CSRGraph, boundary_bytes: int = 128) -> float:
    """Fraction of neighbor lists whose first element is boundary-aligned.

    §5.3.1 notes that with 8-byte elements only ~6.25% of neighbor lists start
    exactly on a 128-byte boundary, which is why the alignment optimization
    matters.
    """
    if graph.num_vertices == 0:
        return 0.0
    starts_bytes = graph.offsets[:-1] * graph.element_bytes
    aligned = starts_bytes % boundary_bytes == 0
    nonempty = graph.degrees() > 0
    if nonempty.sum() == 0:
        return 0.0
    return float(aligned[nonempty].sum() / nonempty.sum())


def expected_sectors_per_neighbor_list(graph: CSRGraph, sector_bytes: int = 32) -> float:
    """Average number of 32-byte sectors spanned by one neighbor list."""
    if graph.num_vertices == 0:
        return 0.0
    starts = graph.offsets[:-1] * graph.element_bytes
    ends = graph.offsets[1:] * graph.element_bytes
    nonempty = ends > starts
    if not np.any(nonempty):
        return 0.0
    first = starts[nonempty] // sector_bytes
    last = (ends[nonempty] - 1) // sector_bytes
    return float((last - first + 1).mean())
