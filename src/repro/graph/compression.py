"""Neighbor-list compression (the §6 extension).

The paper's discussion section points out that EMOGI is interconnect-bound and
that the idle GPU threads could decompress neighbor lists fetched from host
memory, trading abundant compute for scarce PCIe bandwidth — provided the CSR
structure is preserved.  This module implements the standard scheme used by
graph frameworks (WebGraph, Ligra+, GAP): each neighbor list is delta-encoded
(neighbors are stored sorted, so consecutive differences are small) and the
deltas are written as LEB128 varints.

Two levels of functionality are provided:

* exact byte-level encode/decode of a single neighbor list (used by tests and
  small graphs), and
* vectorized *size* computation for whole graphs (used by the analysis and the
  compression ablation benchmark, where only the byte counts matter).

``project_compressed_traversal`` then estimates how an EMOGI traversal would
perform if the edge list were stored compressed: link time shrinks by the
compression ratio while the GPU pays a per-edge decompression cost that
overlaps with the transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig, default_system
from ..errors import GraphFormatError
from ..timing import TimeBreakdown
from .csr import CSRGraph

#: Decompression throughput of the otherwise-idle GPU threads (edges/s).
DEFAULT_DECOMPRESS_EDGES_PER_SECOND = 50e9


# --------------------------------------------------------------------------- #
# Varint (LEB128) primitives
# --------------------------------------------------------------------------- #
def varint_encode(value: int) -> bytes:
    """Encode one non-negative integer as a LEB128 varint."""
    if value < 0:
        raise GraphFormatError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def varint_decode(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one varint starting at ``offset``; returns (value, next_offset)."""
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise GraphFormatError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7


def varint_size(values: np.ndarray) -> np.ndarray:
    """Vectorized byte length of the varint encoding of each value."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise GraphFormatError("varints encode non-negative integers only")
    bits = np.zeros(values.shape, dtype=np.int64)
    nonzero = values > 0
    bits[nonzero] = np.floor(np.log2(values[nonzero])).astype(np.int64) + 1
    return np.maximum(1, -(-bits // 7))


# --------------------------------------------------------------------------- #
# Neighbor-list encoding
# --------------------------------------------------------------------------- #
def encode_neighbor_list(neighbors: np.ndarray) -> bytes:
    """Delta + varint encode one (sorted) neighbor list."""
    neighbors = np.sort(np.asarray(neighbors, dtype=np.int64))
    if neighbors.size and neighbors.min() < 0:
        raise GraphFormatError("neighbor IDs cannot be negative")
    out = bytearray()
    previous = 0
    for index, neighbor in enumerate(neighbors.tolist()):
        delta = neighbor if index == 0 else neighbor - previous
        out.extend(varint_encode(delta))
        previous = neighbor
    return bytes(out)


def decode_neighbor_list(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` neighbors previously written by :func:`encode_neighbor_list`."""
    values = np.empty(count, dtype=np.int64)
    offset = 0
    previous = 0
    for index in range(count):
        delta, offset = varint_decode(data, offset)
        previous = delta if index == 0 else previous + delta
        values[index] = previous
    if offset != len(data):
        raise GraphFormatError("trailing bytes after the encoded neighbor list")
    return values


def compressed_list_sizes(graph: CSRGraph) -> np.ndarray:
    """Compressed byte size of every vertex's neighbor list (vectorized).

    Assumes neighbor lists are stored sorted (the builder's default), so the
    first element is absolute and the rest are consecutive deltas.
    """
    if graph.num_edges == 0:
        return np.zeros(graph.num_vertices, dtype=np.int64)
    edges = graph.edges
    sources = graph.edge_sources()
    deltas = np.empty(graph.num_edges, dtype=np.int64)
    deltas[0] = edges[0]
    deltas[1:] = edges[1:] - edges[:-1]
    # The first element of each list is stored absolutely, not as a delta.
    first_positions = graph.offsets[:-1][graph.degrees() > 0]
    deltas[first_positions] = edges[first_positions]
    if np.any(deltas < 0):
        raise GraphFormatError(
            "neighbor lists must be sorted before computing compressed sizes"
        )
    sizes = varint_size(deltas)
    per_vertex = np.zeros(graph.num_vertices, dtype=np.int64)
    np.add.at(per_vertex, sources, sizes)
    return per_vertex


@dataclass(frozen=True)
class CompressionSummary:
    """Aggregate outcome of delta+varint compressing a graph's edge list."""

    original_bytes: int
    compressed_bytes: int
    num_edges: int

    @property
    def ratio(self) -> float:
        """Compressed size over original size (lower is better)."""
        if self.original_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.original_bytes

    @property
    def bytes_per_edge(self) -> float:
        if self.num_edges == 0:
            return 0.0
        return self.compressed_bytes / self.num_edges

    @property
    def savings_fraction(self) -> float:
        return 1.0 - self.ratio


def compress_graph(graph: CSRGraph) -> CompressionSummary:
    """Summarize delta+varint compression of the whole edge list."""
    per_vertex = compressed_list_sizes(graph)
    return CompressionSummary(
        original_bytes=graph.edge_list_bytes,
        compressed_bytes=int(per_vertex.sum()),
        num_edges=graph.num_edges,
    )


# --------------------------------------------------------------------------- #
# Projection onto an EMOGI traversal
# --------------------------------------------------------------------------- #
def project_compressed_traversal(
    breakdown: TimeBreakdown,
    summary: CompressionSummary,
    edges_processed: int,
    system: SystemConfig | None = None,
    decompress_edges_per_second: float = DEFAULT_DECOMPRESS_EDGES_PER_SECOND,
) -> TimeBreakdown:
    """Estimate the time of an EMOGI run if the edge list were compressed.

    The interconnect and DRAM components shrink by the compression ratio
    (fewer bytes cross the link); the GPU additionally decompresses every
    fetched edge, which overlaps with the transfer exactly like the original
    compute does (§6 argues the idle threads can absorb this).
    """
    del system  # reserved for future per-platform decompression rates
    if decompress_edges_per_second <= 0:
        raise GraphFormatError("decompress_edges_per_second must be positive")
    projected = TimeBreakdown(
        interconnect_seconds=breakdown.interconnect_seconds * summary.ratio,
        dram_seconds=breakdown.dram_seconds * summary.ratio,
        compute_seconds=breakdown.compute_seconds
        + edges_processed / decompress_edges_per_second,
        fault_handling_seconds=breakdown.fault_handling_seconds,
        host_preprocess_seconds=breakdown.host_preprocess_seconds,
        kernel_launch_seconds=breakdown.kernel_launch_seconds,
        extra=dict(breakdown.extra),
    )
    return projected
