"""Graph substrate: CSR representation, generators, datasets and analysis.

The paper stores every input graph in compressed sparse row (CSR) format —
one vertex-list (offset) array and one edge-list array (§2.1, Figure 1).  The
:class:`~repro.graph.csr.CSRGraph` class is the single graph type used by the
memory simulator, the traversal kernels and the baselines.
"""

from .builder import from_edge_array, from_neighbor_lists, symmetrize
from .compression import CompressionSummary, compress_graph
from .csr import CSRGraph
from .datasets import DATASET_SYMBOLS, DatasetSpec, dataset_specs, load_dataset
from .generators import (
    dense_biomedical_graph,
    powerlaw_graph,
    rmat_graph,
    uniform_random_graph,
    web_graph,
)

__all__ = [
    "CSRGraph",
    "from_edge_array",
    "from_neighbor_lists",
    "symmetrize",
    "compress_graph",
    "CompressionSummary",
    "rmat_graph",
    "uniform_random_graph",
    "powerlaw_graph",
    "web_graph",
    "dense_biomedical_graph",
    "DatasetSpec",
    "DATASET_SYMBOLS",
    "dataset_specs",
    "load_dataset",
]
