"""Scaled analogs of the paper's six evaluation graphs (Table 2).

The originals are 1.9-6.7 billion-edge graphs; each analog here preserves the
original's vertex/edge *ratio* (average degree), directedness and degree
shape, with edge counts scaled down by :data:`repro.config.DATASET_SCALE`
(2000x by default).  The simulated GPU memory is scaled by the same factor in
:mod:`repro.config`, so "how much of this graph fits in device memory" matches
the paper graph-for-graph — e.g. SK still almost fits, GK/GU are ~2x memory,
and ML is ~3x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..config import DATASET_SCALE
from ..errors import DatasetError
from .csr import CSRGraph
from .generators import (
    dense_biomedical_graph,
    powerlaw_graph,
    random_weights,
    rmat_graph,
    uniform_random_graph,
    web_graph,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one evaluation graph from Table 2 of the paper."""

    symbol: str
    full_name: str
    #: Vertex / edge counts of the *original* graph.
    paper_num_vertices: int
    paper_num_edges: int
    #: Edge-list / weight-list sizes reported in the paper (GB).
    paper_edge_gb: float
    paper_weight_gb: float
    directed: bool
    generator: Callable[..., CSRGraph]
    generator_kwargs: dict
    seed: int

    def scaled_counts(self, scale: float = DATASET_SCALE) -> tuple[int, int]:
        """Scaled (num_vertices, num_edges) preserving the average degree."""
        num_vertices = max(64, int(round(self.paper_num_vertices / scale)))
        num_edges = max(256, int(round(self.paper_num_edges / scale)))
        return num_vertices, num_edges

    @property
    def paper_average_degree(self) -> float:
        return self.paper_num_edges / self.paper_num_vertices


_SPECS: dict[str, DatasetSpec] = {
    "GK": DatasetSpec(
        symbol="GK",
        full_name="GAP-kron",
        paper_num_vertices=134_200_000,
        paper_num_edges=4_220_000_000,
        paper_edge_gb=31.5,
        paper_weight_gb=15.7,
        directed=False,
        generator=rmat_graph,
        generator_kwargs={},
        seed=101,
    ),
    "GU": DatasetSpec(
        symbol="GU",
        full_name="GAP-urand",
        paper_num_vertices=134_200_000,
        paper_num_edges=4_290_000_000,
        paper_edge_gb=32.0,
        paper_weight_gb=16.0,
        directed=False,
        generator=uniform_random_graph,
        generator_kwargs={"degree_spread": 0.5},
        seed=102,
    ),
    "FS": DatasetSpec(
        symbol="FS",
        full_name="Friendster",
        paper_num_vertices=65_600_000,
        paper_num_edges=3_610_000_000,
        paper_edge_gb=26.9,
        paper_weight_gb=13.5,
        directed=False,
        generator=powerlaw_graph,
        generator_kwargs={"exponent": 2.3},
        seed=103,
    ),
    "ML": DatasetSpec(
        symbol="ML",
        full_name="MOLIERE_2016",
        paper_num_vertices=30_200_000,
        paper_num_edges=6_670_000_000,
        paper_edge_gb=49.7,
        paper_weight_gb=24.8,
        directed=False,
        generator=dense_biomedical_graph,
        generator_kwargs={"sigma": 0.5},
        seed=104,
    ),
    "SK": DatasetSpec(
        symbol="SK",
        full_name="sk-2005",
        paper_num_vertices=50_600_000,
        paper_num_edges=1_950_000_000,
        paper_edge_gb=14.5,
        paper_weight_gb=7.3,
        directed=True,
        generator=web_graph,
        generator_kwargs={
            "exponent": 1.9,
            "locality": 0.45,
            "locality_scale": 400.0,
            "permute_ids": True,
        },
        seed=105,
    ),
    "UK5": DatasetSpec(
        symbol="UK5",
        full_name="uk-2007-05",
        paper_num_vertices=105_900_000,
        paper_num_edges=3_740_000_000,
        paper_edge_gb=27.8,
        paper_weight_gb=13.9,
        directed=True,
        generator=web_graph,
        generator_kwargs={
            "exponent": 2.0,
            "locality": 0.35,
            "locality_scale": 800.0,
            "permute_ids": True,
        },
        seed=106,
    ),
}

#: Dataset symbols in the order the paper's figures list them.
DATASET_SYMBOLS = ("GK", "GU", "FS", "ML", "SK", "UK5")

#: Undirected datasets only — CC is evaluated only on these (§5.4).
UNDIRECTED_SYMBOLS = tuple(s for s in DATASET_SYMBOLS if not _SPECS[s].directed)

_CACHE: dict[tuple, CSRGraph] = {}


def dataset_specs() -> dict[str, DatasetSpec]:
    """All dataset specifications keyed by their Table 2 symbol."""
    return dict(_SPECS)


def get_spec(symbol: str) -> DatasetSpec:
    try:
        return _SPECS[symbol.upper()]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {symbol!r}; available: {', '.join(DATASET_SYMBOLS)}"
        ) from exc


def load_dataset(
    symbol: str,
    element_bytes: int = 8,
    scale: float = DATASET_SCALE,
    with_weights: bool = True,
    use_cache: bool = True,
) -> CSRGraph:
    """Generate (or fetch from the in-process cache) one evaluation graph.

    Parameters
    ----------
    symbol:
        One of ``GK``, ``GU``, ``FS``, ``ML``, ``SK``, ``UK5``.
    element_bytes:
        Simulated size of one edge-list element (8 by default; 4 reproduces
        the Subway comparison which only supports 4-byte edges).
    scale:
        Down-scaling factor applied to the paper's vertex/edge counts.
    with_weights:
        Attach uniformly random integer weights in ``[8, 72]`` (§5.2).
    """
    spec = get_spec(symbol)
    key = (spec.symbol, element_bytes, float(scale), bool(with_weights))
    if use_cache and key in _CACHE:
        return _CACHE[key]

    num_vertices, num_edges = spec.scaled_counts(scale)
    # Generators produce directed edge arrays; undirected graphs are
    # symmetrized inside from_edge_array, which roughly doubles the stored
    # entries.  Halve the requested count so the final entry count matches.
    requested_edges = num_edges if spec.directed else max(128, num_edges // 2)
    graph = spec.generator(
        num_vertices,
        requested_edges,
        seed=spec.seed,
        element_bytes=element_bytes,
        name=spec.symbol,
        **spec.generator_kwargs,
    )
    if not spec.directed:
        from .builder import symmetrize

        graph = symmetrize(graph).renamed(spec.symbol)
    if with_weights:
        weights = random_weights(graph.num_edges, seed=spec.seed + 7000)
        graph = graph.with_weights(weights)
    graph = graph.renamed(spec.symbol)
    graph.meta.update(
        {
            "symbol": spec.symbol,
            "full_name": spec.full_name,
            "directed": spec.directed,
            "scale": float(scale),
            "paper_num_vertices": spec.paper_num_vertices,
            "paper_num_edges": spec.paper_num_edges,
        }
    )
    if use_cache:
        _CACHE[key] = graph
    return graph


def load_all_datasets(
    element_bytes: int = 8,
    scale: float = DATASET_SCALE,
    symbols: tuple[str, ...] = DATASET_SYMBOLS,
) -> dict[str, CSRGraph]:
    """Generate every evaluation graph (used by the benchmark harness)."""
    return {symbol: load_dataset(symbol, element_bytes, scale) for symbol in symbols}


def clear_cache() -> None:
    """Drop all cached datasets (mainly useful in tests)."""
    _CACHE.clear()


def pick_sources(graph: CSRGraph, count: int, seed: int = 42) -> np.ndarray:
    """Pick random source vertices that have at least one outgoing edge (§5.2)."""
    degrees = graph.degrees()
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        raise DatasetError(f"graph {graph.name!r} has no vertex with outgoing edges")
    rng = np.random.default_rng(seed)
    count = min(count, candidates.size)
    return rng.choice(candidates, size=count, replace=False)
