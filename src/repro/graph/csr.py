"""Compressed sparse row (CSR) graph representation.

A :class:`CSRGraph` mirrors the layout the paper assumes (§2.1, Figure 1):

* ``offsets`` — the *vertex list*: ``offsets[v]`` is the index in the edge
  list where vertex ``v``'s neighbor list begins, ``offsets[v + 1]`` where it
  ends.  ``len(offsets) == num_vertices + 1``.
* ``edges`` — the *edge list*: all neighbor lists stored back to back.
* ``weights`` — optional per-edge weights (4-byte values in the paper).

``element_bytes`` records how many bytes one edge-list element occupies in the
simulated memory (8 by default, 4 for the Subway comparison in Table 3); it
only affects the simulated memory footprint and access addresses, never the
numerical values stored here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from ..errors import GraphFormatError
from ..types import EDGE_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE


@dataclass(frozen=True)
class CSRGraph:
    """An immutable CSR graph.

    Instances are normally built with the helpers in
    :mod:`repro.graph.builder` or the generators in
    :mod:`repro.graph.generators`; the constructor validates the structure.
    """

    offsets: np.ndarray
    edges: np.ndarray
    weights: np.ndarray | None = None
    directed: bool = False
    element_bytes: int = 8
    name: str = "graph"
    #: Free-form metadata (dataset symbol, generator parameters, ...).
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=VERTEX_DTYPE)
        edges = np.ascontiguousarray(self.edges, dtype=EDGE_DTYPE)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "edges", edges)
        if self.weights is not None:
            weights = np.ascontiguousarray(self.weights, dtype=WEIGHT_DTYPE)
            object.__setattr__(self, "weights", weights)
        self.validate()

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`GraphFormatError` if the CSR arrays are inconsistent."""
        if self.offsets.ndim != 1 or self.edges.ndim != 1:
            raise GraphFormatError("offsets and edges must be 1-D arrays")
        if self.offsets.size == 0:
            raise GraphFormatError("offsets must contain at least one entry")
        if self.offsets[0] != 0:
            raise GraphFormatError("offsets[0] must be 0")
        if self.offsets[-1] != self.edges.size:
            raise GraphFormatError(
                f"offsets[-1] ({int(self.offsets[-1])}) must equal the edge count "
                f"({self.edges.size})"
            )
        if np.any(np.diff(self.offsets) < 0):
            raise GraphFormatError("offsets must be non-decreasing")
        if self.edges.size and (self.edges.min() < 0 or self.edges.max() >= self.num_vertices):
            raise GraphFormatError("edge destinations must be valid vertex IDs")
        if self.weights is not None and self.weights.size != self.edges.size:
            raise GraphFormatError("weights must have one entry per edge")
        if self.element_bytes not in (4, 8):
            raise GraphFormatError("element_bytes must be 4 or 8")

    @property
    def num_vertices(self) -> int:
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of edge-list entries (each direction counts once)."""
        return self.edges.size

    @property
    def has_weights(self) -> bool:
        return self.weights is not None

    # ------------------------------------------------------------------ #
    # Degrees and neighbor lists
    # ------------------------------------------------------------------ #
    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.offsets)

    def degree(self, vertex: int) -> int:
        self._check_vertex(vertex)
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def max_degree(self) -> int:
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max())

    def neighbor_range(self, vertex: int) -> tuple[int, int]:
        """Half-open ``[start, end)`` index range of a vertex's neighbor list."""
        self._check_vertex(vertex)
        return int(self.offsets[vertex]), int(self.offsets[vertex + 1])

    def neighbors(self, vertex: int) -> np.ndarray:
        """View of a vertex's neighbor list in the edge list."""
        start, end = self.neighbor_range(vertex)
        return self.edges[start:end]

    def neighbor_weights(self, vertex: int) -> np.ndarray:
        """View of the weights of a vertex's outgoing edges."""
        if self.weights is None:
            raise GraphFormatError(f"graph {self.name!r} has no weights")
        start, end = self.neighbor_range(vertex)
        return self.weights[start:end]

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(source, destination)`` pairs (slow; for small graphs)."""
        degrees = self.degrees()
        sources = np.repeat(np.arange(self.num_vertices, dtype=VERTEX_DTYPE), degrees)
        for src, dst in zip(sources, self.edges):
            yield int(src), int(dst)

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every edge-list entry (parallel to ``edges``)."""
        return np.repeat(np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.degrees())

    # ------------------------------------------------------------------ #
    # Simulated memory footprint
    # ------------------------------------------------------------------ #
    @property
    def edge_list_bytes(self) -> int:
        """Bytes occupied by the edge list in the simulated memory."""
        return self.num_edges * self.element_bytes

    @property
    def vertex_list_bytes(self) -> int:
        """Bytes occupied by the vertex (offset) list in the simulated memory."""
        return self.offsets.size * self.element_bytes

    @property
    def weight_list_bytes(self) -> int:
        """Bytes occupied by the weight list (4 bytes per edge, §5.2)."""
        if self.weights is None:
            return 0
        return self.num_edges * 4

    @property
    def total_bytes(self) -> int:
        return self.edge_list_bytes + self.vertex_list_bytes + self.weight_list_bytes

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def with_element_bytes(self, element_bytes: int) -> "CSRGraph":
        """Same graph, different simulated edge-element size (4 or 8 bytes)."""
        return replace(self, element_bytes=element_bytes)

    def with_weights(self, weights: np.ndarray) -> "CSRGraph":
        """Attach a weight array (one entry per edge-list element)."""
        return replace(self, weights=np.asarray(weights, dtype=WEIGHT_DTYPE))

    def without_weights(self) -> "CSRGraph":
        return replace(self, weights=None)

    def renamed(self, name: str) -> "CSRGraph":
        return replace(self, name=name)

    def reverse(self) -> "CSRGraph":
        """The transpose graph (edges reversed).  Weights follow their edge."""
        sources = self.edge_sources()
        order = np.argsort(self.edges, kind="stable")
        new_sources = self.edges[order]
        new_dests = sources[order]
        counts = np.bincount(new_sources, minlength=self.num_vertices)
        offsets = np.zeros(self.num_vertices + 1, dtype=VERTEX_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        weights = self.weights[order] if self.weights is not None else None
        return CSRGraph(
            offsets=offsets,
            edges=new_dests,
            weights=weights,
            directed=self.directed,
            element_bytes=self.element_bytes,
            name=f"{self.name}-reversed",
            meta=dict(self.meta),
        )

    def is_symmetric(self) -> bool:
        """True if every edge has its reverse (i.e. the graph is undirected)."""
        forward = set(zip(self.edge_sources().tolist(), self.edges.tolist()))
        return all((dst, src) in forward for src, dst in forward)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.num_vertices:
            raise GraphFormatError(
                f"vertex {vertex} out of range for graph with {self.num_vertices} vertices"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, directed={self.directed}, "
            f"element_bytes={self.element_bytes})"
        )
