"""Serialization of CSR graphs to .npz archives and plain edge-list text."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import GraphFormatError
from ..types import WEIGHT_DTYPE
from .builder import from_edge_array
from .csr import CSRGraph

_FORMAT_VERSION = 1


def save_npz(graph: CSRGraph, path: str | Path) -> Path:
    """Write a graph to a compressed ``.npz`` archive and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": np.array([_FORMAT_VERSION]),
        "offsets": graph.offsets,
        "edges": graph.edges,
        "directed": np.array([graph.directed]),
        "element_bytes": np.array([graph.element_bytes]),
        "name": np.array([graph.name]),
    }
    if graph.weights is not None:
        payload["weights"] = graph.weights
    np.savez_compressed(path, **payload)
    return path


def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    path = Path(path)
    if not path.exists():
        raise GraphFormatError(f"graph file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise GraphFormatError(f"unsupported graph file version: {version}")
        weights = data["weights"] if "weights" in data else None
        return CSRGraph(
            offsets=data["offsets"],
            edges=data["edges"],
            weights=weights,
            directed=bool(data["directed"][0]),
            element_bytes=int(data["element_bytes"][0]),
            name=str(data["name"][0]),
        )


def write_edge_list(graph: CSRGraph, path: str | Path, include_weights: bool = True) -> Path:
    """Write the graph as ``src dst [weight]`` text lines (one per edge entry)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    sources = graph.edge_sources()
    with path.open("w", encoding="utf-8") as handle:
        if include_weights and graph.weights is not None:
            for src, dst, weight in zip(sources, graph.edges, graph.weights):
                handle.write(f"{int(src)} {int(dst)} {float(weight):g}\n")
        else:
            for src, dst in zip(sources, graph.edges):
                handle.write(f"{int(src)} {int(dst)}\n")
    return path


def read_edge_list(
    path: str | Path,
    directed: bool = True,
    element_bytes: int = 8,
    name: str | None = None,
) -> CSRGraph:
    """Read a ``src dst [weight]`` text file into a CSR graph."""
    path = Path(path)
    if not path.exists():
        raise GraphFormatError(f"edge list file not found: {path}")
    sources: list[int] = []
    destinations: list[int] = []
    weights: list[float] = []
    has_weights = False
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{line_number}: expected 'src dst [weight]'")
            sources.append(int(parts[0]))
            destinations.append(int(parts[1]))
            if len(parts) >= 3:
                has_weights = True
                weights.append(float(parts[2]))
            else:
                weights.append(1.0)
    weight_array = np.array(weights, dtype=WEIGHT_DTYPE) if has_weights else None
    return from_edge_array(
        np.array(sources),
        np.array(destinations),
        weights=weight_array,
        directed=directed,
        element_bytes=element_bytes,
        name=name or path.stem,
    )
