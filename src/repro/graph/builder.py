"""Helpers for constructing :class:`~repro.graph.csr.CSRGraph` instances."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import GraphFormatError
from ..types import EDGE_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE
from .csr import CSRGraph


def from_edge_array(
    sources: np.ndarray,
    destinations: np.ndarray,
    num_vertices: int | None = None,
    weights: np.ndarray | None = None,
    directed: bool = True,
    element_bytes: int = 8,
    name: str = "graph",
    remove_self_loops: bool = False,
    deduplicate: bool = False,
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Build a CSR graph from parallel source/destination arrays.

    When ``directed`` is False the edge set is symmetrized first (both
    directions are stored, matching how the undirected evaluation graphs are
    laid out in the paper's CSR files).
    """
    sources = np.asarray(sources, dtype=VERTEX_DTYPE).ravel()
    destinations = np.asarray(destinations, dtype=EDGE_DTYPE).ravel()
    if sources.size != destinations.size:
        raise GraphFormatError("sources and destinations must have the same length")
    if weights is not None:
        weights = np.asarray(weights, dtype=WEIGHT_DTYPE).ravel()
        if weights.size != sources.size:
            raise GraphFormatError("weights must have one entry per edge")

    if sources.size and (sources.min() < 0 or destinations.min() < 0):
        raise GraphFormatError("vertex IDs cannot be negative")

    if num_vertices is None:
        if sources.size:
            num_vertices = int(max(sources.max(), destinations.max())) + 1
        else:
            num_vertices = 0
    elif sources.size and max(int(sources.max()), int(destinations.max())) >= num_vertices:
        raise GraphFormatError("edge endpoints exceed num_vertices")

    if not directed:
        sources, destinations, weights = _symmetrize_arrays(sources, destinations, weights)

    if remove_self_loops and sources.size:
        keep = sources != destinations
        sources, destinations = sources[keep], destinations[keep]
        if weights is not None:
            weights = weights[keep]

    if deduplicate and sources.size:
        keys = sources * np.int64(num_vertices) + destinations
        _, unique_idx = np.unique(keys, return_index=True)
        unique_idx.sort()
        sources, destinations = sources[unique_idx], destinations[unique_idx]
        if weights is not None:
            weights = weights[unique_idx]

    offsets, edges, weights = _pack_csr(
        sources, destinations, weights, num_vertices, sort_neighbors=sort_neighbors
    )
    return CSRGraph(
        offsets=offsets,
        edges=edges,
        weights=weights,
        directed=directed,
        element_bytes=element_bytes,
        name=name,
    )


def from_neighbor_lists(
    neighbor_lists: Sequence[Iterable[int]],
    weights: Sequence[Iterable[float]] | None = None,
    directed: bool = True,
    element_bytes: int = 8,
    name: str = "graph",
) -> CSRGraph:
    """Build a CSR graph from an explicit adjacency-list representation."""
    num_vertices = len(neighbor_lists)
    lists = [np.asarray(list(lst), dtype=EDGE_DTYPE) for lst in neighbor_lists]
    degrees = np.array([lst.size for lst in lists], dtype=VERTEX_DTYPE)
    offsets = np.zeros(num_vertices + 1, dtype=VERTEX_DTYPE)
    np.cumsum(degrees, out=offsets[1:])
    edges = (
        np.concatenate(lists) if lists else np.empty(0, dtype=EDGE_DTYPE)
    )
    weight_array = None
    if weights is not None:
        if len(weights) != num_vertices:
            raise GraphFormatError("weights must provide one list per vertex")
        weight_lists = [np.asarray(list(w), dtype=WEIGHT_DTYPE) for w in weights]
        for vertex, (lst, wlst) in enumerate(zip(lists, weight_lists)):
            if lst.size != wlst.size:
                raise GraphFormatError(f"vertex {vertex}: weight list length mismatch")
        weight_array = (
            np.concatenate(weight_lists) if weight_lists else np.empty(0, dtype=WEIGHT_DTYPE)
        )
    return CSRGraph(
        offsets=offsets,
        edges=edges,
        weights=weight_array,
        directed=directed,
        element_bytes=element_bytes,
        name=name,
    )


def symmetrize(graph: CSRGraph) -> CSRGraph:
    """Return the undirected version of a graph (each edge stored both ways)."""
    sources = graph.edge_sources()
    dests = graph.edges
    weights = graph.weights
    sym_src, sym_dst, sym_w = _symmetrize_arrays(sources, dests, weights)
    offsets, edges, packed_weights = _pack_csr(
        sym_src, sym_dst, sym_w, graph.num_vertices, sort_neighbors=True
    )
    return CSRGraph(
        offsets=offsets,
        edges=edges,
        weights=packed_weights,
        directed=False,
        element_bytes=graph.element_bytes,
        name=f"{graph.name}-sym",
        meta=dict(graph.meta),
    )


def _symmetrize_arrays(
    sources: np.ndarray,
    destinations: np.ndarray,
    weights: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Duplicate every edge in both directions, dropping exact duplicates."""
    all_src = np.concatenate([sources, destinations])
    all_dst = np.concatenate([destinations, sources])
    all_w = np.concatenate([weights, weights]) if weights is not None else None
    if all_src.size == 0:
        return all_src, all_dst, all_w
    num_vertices = int(max(all_src.max(), all_dst.max())) + 1
    keys = all_src * np.int64(num_vertices) + all_dst
    _, unique_idx = np.unique(keys, return_index=True)
    unique_idx.sort()
    all_src, all_dst = all_src[unique_idx], all_dst[unique_idx]
    if all_w is not None:
        all_w = all_w[unique_idx]
    return all_src, all_dst, all_w


def _pack_csr(
    sources: np.ndarray,
    destinations: np.ndarray,
    weights: np.ndarray | None,
    num_vertices: int,
    sort_neighbors: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Sort edges by source (and optionally destination) and build offsets."""
    if sort_neighbors:
        order = np.lexsort((destinations, sources))
    else:
        order = np.argsort(sources, kind="stable")
    sources = sources[order]
    destinations = destinations[order]
    if weights is not None:
        weights = weights[order]
    counts = np.bincount(sources, minlength=num_vertices) if sources.size else np.zeros(
        num_vertices, dtype=VERTEX_DTYPE
    )
    offsets = np.zeros(num_vertices + 1, dtype=VERTEX_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    return offsets, destinations.astype(EDGE_DTYPE), weights
