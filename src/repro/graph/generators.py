"""Synthetic graph generators used to build the scaled evaluation datasets.

The paper evaluates on six real graphs (Table 2) whose raw files are hundreds
of gigabytes.  We substitute synthetic analogs whose *degree structure* — the
property that drives every EMOGI result — matches each original:

* ``rmat_graph``             — Kronecker/RMAT, heavy-tailed degrees (GAP-kron).
* ``uniform_random_graph``   — narrow uniform degrees (GAP-urand; Figure 6
  notes GU's edges all belong to vertices of degree 16-48).
* ``powerlaw_graph``         — social-network power-law degrees (Friendster).
* ``dense_biomedical_graph`` — very high average degree (~222), moderate skew
  (MOLIERE_2016).
* ``web_graph``              — web crawls (sk-2005, uk-2007-05): power-law
  degrees plus strong neighbor-ID locality from the lexicographic URL order.

All generators are deterministic given a seed and return a valid
:class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from ..types import EDGE_DTYPE, VERTEX_DTYPE
from .builder import from_edge_array
from .csr import CSRGraph

#: Default RMAT partition probabilities (Graph500 / GAP-kron values).
RMAT_DEFAULT = (0.57, 0.19, 0.19, 0.05)


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_weights(
    num_edges: int, seed: int | None = None, low: int = 8, high: int = 72
) -> np.ndarray:
    """Integer edge weights drawn uniformly from ``[low, high]`` (§5.2)."""
    rng = _rng(seed)
    return rng.integers(low, high + 1, size=num_edges).astype(np.float32)


def uniform_random_graph(
    num_vertices: int,
    num_edges: int,
    seed: int | None = None,
    degree_spread: float = 0.5,
    element_bytes: int = 8,
    name: str = "uniform",
) -> CSRGraph:
    """Erdős–Rényi-like graph with a narrow, uniform degree distribution.

    Each vertex receives an out-degree drawn uniformly from
    ``mean * (1 ± degree_spread)`` and its neighbors are chosen uniformly at
    random, mimicking GAP-urand.
    """
    _check_positive(num_vertices, num_edges)
    rng = _rng(seed)
    mean_degree = num_edges / num_vertices
    low = max(1, int(mean_degree * (1.0 - degree_spread)))
    high = max(low + 1, int(mean_degree * (1.0 + degree_spread)) + 1)
    degrees = rng.integers(low, high, size=num_vertices)
    degrees = _rescale_degrees(degrees, num_edges)
    sources = np.repeat(np.arange(num_vertices, dtype=VERTEX_DTYPE), degrees)
    destinations = rng.integers(0, num_vertices, size=sources.size, dtype=EDGE_DTYPE)
    return from_edge_array(
        sources,
        destinations,
        num_vertices=num_vertices,
        directed=True,
        element_bytes=element_bytes,
        name=name,
        remove_self_loops=False,
    )


def rmat_graph(
    num_vertices: int,
    num_edges: int,
    seed: int | None = None,
    probabilities: tuple[float, float, float, float] = RMAT_DEFAULT,
    element_bytes: int = 8,
    name: str = "rmat",
) -> CSRGraph:
    """Recursive-matrix (Kronecker) graph with heavy-tailed degrees.

    This is the standard Graph500 generator used to build GAP-kron; edge
    endpoints are chosen by recursively descending a 2x2 probability matrix.
    ``num_vertices`` is rounded up to the next power of two internally and the
    resulting IDs are mapped back into ``[0, num_vertices)``.
    """
    _check_positive(num_vertices, num_edges)
    a, b, c, d = probabilities
    if not np.isclose(a + b + c + d, 1.0):
        raise GraphFormatError("RMAT probabilities must sum to 1")
    rng = _rng(seed)
    scale = max(1, int(np.ceil(np.log2(num_vertices))))
    sources = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    destinations = np.zeros(num_edges, dtype=EDGE_DTYPE)
    for level in range(scale):
        draws = rng.random(num_edges)
        src_bit = (draws >= a + b).astype(VERTEX_DTYPE)
        # Given the source bit, decide the destination bit.
        top = np.where(draws < a + b, draws / (a + b), 0.0)
        bottom = np.where(draws >= a + b, (draws - (a + b)) / (c + d), 0.0)
        dst_bit = np.where(
            src_bit == 0,
            (top >= a / (a + b)).astype(VERTEX_DTYPE),
            (bottom >= c / (c + d)).astype(VERTEX_DTYPE),
        )
        sources = (sources << 1) | src_bit
        destinations = (destinations << 1) | dst_bit
    sources = sources % num_vertices
    destinations = destinations % num_vertices
    # Permute vertex IDs so degree is not correlated with ID (as GAP does).
    permutation = rng.permutation(num_vertices).astype(VERTEX_DTYPE)
    sources = permutation[sources]
    destinations = permutation[destinations]
    return from_edge_array(
        sources,
        destinations,
        num_vertices=num_vertices,
        directed=True,
        element_bytes=element_bytes,
        name=name,
    )


def powerlaw_graph(
    num_vertices: int,
    num_edges: int,
    seed: int | None = None,
    exponent: float = 2.1,
    element_bytes: int = 8,
    name: str = "powerlaw",
) -> CSRGraph:
    """Graph with power-law degrees (social-network analog, e.g. Friendster).

    Vertex attractiveness is drawn from a Pareto distribution with the given
    exponent; both edge endpoints are sampled proportionally to it.
    """
    _check_positive(num_vertices, num_edges)
    rng = _rng(seed)
    attractiveness = rng.pareto(exponent - 1.0, size=num_vertices) + 1.0
    probabilities = attractiveness / attractiveness.sum()
    sources = rng.choice(num_vertices, size=num_edges, p=probabilities).astype(VERTEX_DTYPE)
    destinations = rng.choice(num_vertices, size=num_edges, p=probabilities).astype(EDGE_DTYPE)
    return from_edge_array(
        sources,
        destinations,
        num_vertices=num_vertices,
        directed=True,
        element_bytes=element_bytes,
        name=name,
    )


def dense_biomedical_graph(
    num_vertices: int,
    num_edges: int,
    seed: int | None = None,
    sigma: float = 0.6,
    element_bytes: int = 8,
    name: str = "biomedical",
) -> CSRGraph:
    """High average-degree graph analog of MOLIERE_2016 (~222 edges/vertex).

    Degrees are log-normally distributed around the (high) mean so nearly all
    edges belong to long neighbor lists — the property Figure 6 highlights for
    ML ("nearly no edges associated with small degree vertices").
    """
    _check_positive(num_vertices, num_edges)
    rng = _rng(seed)
    mean_degree = num_edges / num_vertices
    mu = np.log(mean_degree) - 0.5 * sigma**2
    degrees = np.maximum(1, rng.lognormal(mu, sigma, size=num_vertices).astype(np.int64))
    degrees = _rescale_degrees(degrees, num_edges)
    sources = np.repeat(np.arange(num_vertices, dtype=VERTEX_DTYPE), degrees)
    destinations = rng.integers(0, num_vertices, size=sources.size, dtype=EDGE_DTYPE)
    return from_edge_array(
        sources,
        destinations,
        num_vertices=num_vertices,
        directed=True,
        element_bytes=element_bytes,
        name=name,
    )


def web_graph(
    num_vertices: int,
    num_edges: int,
    seed: int | None = None,
    exponent: float = 2.0,
    locality: float = 0.8,
    locality_scale: float = 200.0,
    permute_ids: bool = False,
    hub_cap_fraction: float = 0.002,
    element_bytes: int = 8,
    name: str = "web",
) -> CSRGraph:
    """Web-crawl analog (sk-2005, uk-2007-05): power-law degrees + ID locality.

    A fraction ``locality`` of each vertex's edges point to nearby vertex IDs
    (URLs on the same host sort together), the rest are global.  With
    ``permute_ids`` the vertex IDs are relabelled randomly afterwards, which
    keeps the degree structure but removes the artificial correlation between
    a vertex's ID and its BFS level that the small scaled-down analog would
    otherwise exhibit (real crawls spread each CSR page's neighbor lists over
    many traversal levels).  ``hub_cap_fraction`` bounds the expected share of
    edges any single vertex can attract, so the scaled-down graph does not
    collapse into one mega-hub owning most of the edge list.
    """
    _check_positive(num_vertices, num_edges)
    rng = _rng(seed)
    attractiveness = rng.pareto(exponent - 1.0, size=num_vertices) + 1.0
    if hub_cap_fraction and 0.0 < hub_cap_fraction < 1.0:
        cap = hub_cap_fraction * attractiveness.sum()
        attractiveness = np.minimum(attractiveness, cap)
    probabilities = attractiveness / attractiveness.sum()
    sources = rng.choice(num_vertices, size=num_edges, p=probabilities).astype(VERTEX_DTYPE)
    local_mask = rng.random(num_edges) < locality
    local_offsets = rng.laplace(0.0, locality_scale, size=num_edges).astype(np.int64)
    local_destinations = np.clip(sources + local_offsets, 0, num_vertices - 1)
    global_destinations = rng.choice(
        num_vertices, size=num_edges, p=probabilities
    ).astype(EDGE_DTYPE)
    destinations = np.where(local_mask, local_destinations, global_destinations)
    destinations = destinations.astype(EDGE_DTYPE)
    if permute_ids:
        permutation = rng.permutation(num_vertices).astype(VERTEX_DTYPE)
        sources = permutation[sources]
        destinations = permutation[destinations].astype(EDGE_DTYPE)
    return from_edge_array(
        sources,
        destinations,
        num_vertices=num_vertices,
        directed=True,
        element_bytes=element_bytes,
        name=name,
    )


def _rescale_degrees(degrees: np.ndarray, target_edges: int) -> np.ndarray:
    """Scale an integer degree sequence so it sums exactly to ``target_edges``."""
    degrees = np.maximum(degrees.astype(np.int64), 0)
    total = int(degrees.sum())
    if total == 0:
        degrees = np.ones_like(degrees)
        total = int(degrees.sum())
    scaled = np.floor(degrees * (target_edges / total)).astype(np.int64)
    scaled = np.maximum(scaled, 1)
    deficit = target_edges - int(scaled.sum())
    if deficit > 0:
        # Give the remaining edges to the highest-degree vertices.
        order = np.argsort(degrees)[::-1]
        bump = order[: deficit % len(scaled)]
        scaled[bump] += 1
        scaled += deficit // len(scaled)
    elif deficit < 0:
        order = np.argsort(scaled)[::-1]
        index = 0
        remaining = -deficit
        while remaining > 0:
            vertex = order[index % len(order)]
            if scaled[vertex] > 1:
                scaled[vertex] -= 1
                remaining -= 1
            index += 1
    return scaled


def _check_positive(num_vertices: int, num_edges: int) -> None:
    if num_vertices <= 0:
        raise GraphFormatError("num_vertices must be positive")
    if num_edges <= 0:
        raise GraphFormatError("num_edges must be positive")
