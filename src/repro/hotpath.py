"""Marker for allocation-discipline-checked hot-kernel functions.

Functions decorated with :func:`hot_path` are the per-iteration kernels whose
speedups erode silently when numpy temporaries creep back in (the
lane-parallel relaxation sweep, the MS-BFS word runners, the frontier
gathers).  The decorator does nothing at runtime — it only tags the function
so the ``hot-path-alloc`` lint rule (``REPRO101``, see :mod:`repro.analysis`)
rejects allocation calls (``np.zeros`` / ``np.empty`` / ``np.concatenate`` /
``np.unique`` …) and list-building loops inside it.

Bounded, deliberate allocations are suppressed per line with a justified
``# repro: noqa[REPRO101] — <why the allocation is bounded>`` comment.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable)


def hot_path(function: _F) -> _F:
    """Tag ``function`` as a hot kernel for the allocation lint rule."""
    function.__repro_hot_path__ = True
    return function
