"""Exception hierarchy for the EMOGI reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the broad failure categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A system / experiment configuration value is invalid or inconsistent."""


class GraphFormatError(ReproError):
    """A graph is structurally invalid (bad CSR offsets, negative IDs, ...)."""


class AllocationError(ReproError):
    """An allocation request cannot be satisfied by the simulated memory."""


class SimulationError(ReproError):
    """The memory/traversal simulation reached an inconsistent state."""


class DatasetError(ReproError):
    """A named evaluation dataset is unknown or could not be generated."""


class ServiceError(ReproError):
    """A serving-layer (:mod:`repro.service`) operation failed."""


class AdmissionError(ServiceError):
    """A submission was rejected by admission control.

    Raised by :meth:`repro.service.Service.submit` when the pending queue is
    at its configured limit or the request's tenant has exhausted its quota.
    The offending ``tenant`` (possibly ``None`` for anonymous traffic) is
    attached so multi-tenant clients can tell a full server from their own
    quota without parsing the message.
    """

    def __init__(self, message: str, tenant: str | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant


class InfeasibleDeadlineError(AdmissionError):
    """A deadline-carrying submission cannot possibly finish in time.

    Raised at :meth:`repro.service.Service.submit` when the cost model
    estimates that the backlog ahead of the request plus its own execution
    already exceeds the requested latency budget.  Rejecting on arrival beats
    letting the request expire in the queue: the client learns immediately
    and no queue slot is wasted on work that cannot be useful.
    """


class DeadlineExceededError(ServiceError):
    """A job's deadline passed while it was still waiting in the queue.

    The scheduler fails expired jobs *before* execution so a request that can
    no longer be useful never occupies an engine.
    """


class UnknownGraphError(ServiceError):
    """A traversal request names a graph the registry does not know."""


class JobNotFoundError(ServiceError):
    """A job identifier does not correspond to any submitted job."""


class JobFailedError(ServiceError):
    """A submitted traversal job failed while executing.

    The original exception is attached as ``__cause__`` and the failing job's
    identifier is available as :attr:`job_id`.
    """

    def __init__(self, message: str, job_id: str | None = None) -> None:
        super().__init__(message)
        self.job_id = job_id
