"""Exception hierarchy for the EMOGI reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the broad failure categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A system / experiment configuration value is invalid or inconsistent."""


class GraphFormatError(ReproError):
    """A graph is structurally invalid (bad CSR offsets, negative IDs, ...)."""


class AllocationError(ReproError):
    """An allocation request cannot be satisfied by the simulated memory."""


class SimulationError(ReproError):
    """The memory/traversal simulation reached an inconsistent state."""


class DatasetError(ReproError):
    """A named evaluation dataset is unknown or could not be generated."""


class ServiceError(ReproError):
    """A serving-layer (:mod:`repro.service`) operation failed."""


class AdmissionError(ServiceError):
    """A submission was rejected by admission control.

    Raised by :meth:`repro.service.Service.submit` when the pending queue is
    at its configured limit or the request's tenant has exhausted its quota.
    The offending ``tenant`` (possibly ``None`` for anonymous traffic) is
    attached so multi-tenant clients can tell a full server from their own
    quota without parsing the message.
    """

    def __init__(self, message: str, tenant: str | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant


class InfeasibleDeadlineError(AdmissionError):
    """A deadline-carrying submission cannot possibly finish in time.

    Raised at :meth:`repro.service.Service.submit` when the cost model
    estimates that the backlog ahead of the request plus its own execution
    already exceeds the requested latency budget.  Rejecting on arrival beats
    letting the request expire in the queue: the client learns immediately
    and no queue slot is wasted on work that cannot be useful.
    """


class DeadlineExceededError(ServiceError):
    """A job's deadline passed while it was still waiting in the queue.

    The scheduler fails expired jobs *before* execution so a request that can
    no longer be useful never occupies an engine.
    """


class UnknownGraphError(ServiceError):
    """A traversal request names a graph the registry does not know."""


class JobNotFoundError(ServiceError):
    """A job identifier does not correspond to any submitted job."""


class JobFailedError(ServiceError):
    """A submitted traversal job failed while executing.

    The original exception is attached as ``__cause__`` and the failing job's
    identifier is available as :attr:`job_id`.
    """

    def __init__(self, message: str, job_id: str | None = None) -> None:
        super().__init__(message)
        self.job_id = job_id


class ServiceClosedError(ServiceError):
    """Work was submitted to (or was still queued in) a closed service.

    Raised by :meth:`repro.service.Service.submit` and
    :meth:`repro.service.workers.WorkerPool.submit` after shutdown, and set
    as the terminal result of jobs still queued when
    ``Service.close(cancel_pending=True)`` drops them — so callers blocked in
    ``Service.result()`` wake with a definite outcome instead of timing out.
    """


class RetryableError(ServiceError):
    """A transient serving failure that is safe to retry.

    The drain path retries these with exponential backoff + jitter (see
    :mod:`repro.service.resilience`), bounded by ``ServiceConfig.retry_limit``
    and clipped to the request's deadline.  Raise a plain ``ServiceError`` for
    failures where a retry cannot help.
    """


class FaultInjectedError(ServiceError):
    """Base of errors raised by the fault-injection substrate.

    Carries the armed :attr:`site` (e.g. ``"registry.load"``) so tests and
    the chaos harness can assert exactly which injection fired.
    """

    def __init__(self, message: str, site: str | None = None) -> None:
        super().__init__(message)
        self.site = site


class TransientFaultError(FaultInjectedError, RetryableError):
    """An injected fault that models a recoverable glitch (retryable)."""


class PermanentFaultError(FaultInjectedError):
    """An injected fault that models a hard failure (never retried)."""


class SweepTimeoutError(ServiceError):
    """A traversal sweep overran its budget and was cooperatively cancelled.

    Engines poll a :class:`repro.service.resilience.Cancellation` token at
    iteration boundaries; when the watchdog budget (absolute or cost-model
    derived) lapses, the sweep raises this instead of running unbounded.
    """


class StoreError(ServiceError):
    """The durable serving store (:mod:`repro.service.store`) failed.

    The service never surfaces these to requests: store trouble trips the
    store's circuit breaker and degrades serving to in-memory-only behavior
    (reads miss, writes drop).  Raised to *callers* only from the operator
    helpers (``repro store info`` / ``vacuum``) and invalid-usage paths.
    """


class NativeBackendError(ReproError):
    """The runtime-compiled native kernel failed to build, load, or run.

    The serving tier's circuit breaker counts these; after enough consecutive
    failures it degrades to the bit-identical numpy relaxation backend.
    """
