"""Exception hierarchy for the EMOGI reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the broad failure categories below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A system / experiment configuration value is invalid or inconsistent."""


class GraphFormatError(ReproError):
    """A graph is structurally invalid (bad CSR offsets, negative IDs, ...)."""


class AllocationError(ReproError):
    """An allocation request cannot be satisfied by the simulated memory."""


class SimulationError(ReproError):
    """The memory/traversal simulation reached an inconsistent state."""


class DatasetError(ReproError):
    """A named evaluation dataset is unknown or could not be generated."""
