"""Benchmark harness: regenerates every table and figure of the evaluation.

Each ``figure*`` / ``table*`` function in :mod:`repro.bench.figures` runs the
experiment behind one piece of Section 5 of the paper and returns a
:class:`~repro.bench.figures.FigureResult` whose rows mirror what the paper
plots; the pytest-benchmark modules under ``benchmarks/`` call these functions
and print the resulting tables.
"""

from .harness import ExperimentConfig, ExperimentHarness
from .report import format_table
from . import figures

__all__ = ["ExperimentConfig", "ExperimentHarness", "format_table", "figures"]
