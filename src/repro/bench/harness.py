"""Experiment harness shared by all figure/table reproductions.

The harness owns the evaluation graphs, the random source vertices (§5.2
picks 64 per graph; the default here is smaller so the full suite runs in
seconds) and a cache of completed runs, since several figures slice the same
BFS executions in different ways (request sizes, request counts, bandwidth,
speedup, amplification).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import DATASET_SCALE, SystemConfig, default_system
from ..graph.csr import CSRGraph
from ..graph.datasets import DATASET_SYMBOLS, load_dataset, pick_sources
from ..traversal.api import run_average
from ..traversal.results import AggregateResult
from ..types import AccessStrategy, Application


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs controlling how the evaluation is scaled down."""

    symbols: tuple[str, ...] = DATASET_SYMBOLS
    num_sources: int = 4
    scale: float = DATASET_SCALE
    element_bytes: int = 8
    seed: int = 42

    def small(self) -> "ExperimentConfig":
        """A further-reduced configuration for quick smoke tests."""
        return ExperimentConfig(
            symbols=self.symbols,
            num_sources=1,
            scale=self.scale * 10,
            element_bytes=self.element_bytes,
            seed=self.seed,
        )


@dataclass
class ExperimentHarness:
    """Loads graphs, picks sources, runs configurations, caches results."""

    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    system: SystemConfig = field(default_factory=default_system)
    _graphs: dict[tuple[str, int], CSRGraph] = field(default_factory=dict)
    _sources: dict[str, np.ndarray] = field(default_factory=dict)
    _runs: dict[tuple, AggregateResult] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Inputs
    # ------------------------------------------------------------------ #
    def graph(self, symbol: str, element_bytes: int | None = None) -> CSRGraph:
        element_bytes = element_bytes or self.config.element_bytes
        key = (symbol, element_bytes)
        if key not in self._graphs:
            self._graphs[key] = load_dataset(
                symbol, element_bytes=element_bytes, scale=self.config.scale
            )
        return self._graphs[key]

    def sources(self, symbol: str) -> np.ndarray:
        if symbol not in self._sources:
            self._sources[symbol] = pick_sources(
                self.graph(symbol), self.config.num_sources, seed=self.config.seed
            )
        return self._sources[symbol]

    # ------------------------------------------------------------------ #
    # Runs
    # ------------------------------------------------------------------ #
    def run(
        self,
        application: Application | str,
        symbol: str,
        strategy: AccessStrategy,
        system: SystemConfig | None = None,
        element_bytes: int | None = None,
    ) -> AggregateResult:
        """Run (or fetch from cache) one app/graph/strategy configuration."""
        application = Application(application)
        system = system or self.system
        element_bytes = element_bytes or self.config.element_bytes
        key = (application, symbol, strategy, system.name, element_bytes)
        if key not in self._runs:
            graph = self.graph(symbol, element_bytes=element_bytes)
            sources = self.sources(symbol)
            # The paper's evaluation measures fully independent per-source
            # runs (§5.2), so figure reproduction keeps the serial protocol;
            # the batched engine is benchmarked by repro.bench.traversal_bench.
            self._runs[key] = run_average(
                application, graph, sources, strategy=strategy, system=system,
                batched=False,
            )
        return self._runs[key]

    def speedup_over_uvm(
        self,
        application: Application | str,
        symbol: str,
        strategy: AccessStrategy,
        system: SystemConfig | None = None,
    ) -> float:
        """Normalized performance of ``strategy`` relative to the UVM baseline."""
        baseline = self.run(application, symbol, AccessStrategy.UVM, system=system)
        candidate = self.run(application, symbol, strategy, system=system)
        return candidate.speedup_over(baseline)

    def clear(self) -> None:
        self._graphs.clear()
        self._sources.clear()
        self._runs.clear()
