"""Plain-text rendering of benchmark results.

The original paper presents its evaluation as bar charts; in a headless
reproduction the same data is easier to consume as aligned ASCII tables, so
every figure/table function renders through :func:`format_table`.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table."""
    formatted_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [
            str(cell).ljust(widths[index]) for index, cell in enumerate(cells)
        ]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append(separator)
    lines.extend(render_row(row) for row in formatted_rows)
    return "\n".join(lines)


def format_key_values(pairs: dict[str, object], title: str | None = None) -> str:
    """Render a dictionary of scalar results as aligned ``key: value`` lines."""
    width = max((len(key) for key in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{key.ljust(width)} : {_format_cell(value)}" for key, value in pairs.items())
    return "\n".join(lines)
