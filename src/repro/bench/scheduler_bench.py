"""Scheduling-policy benchmark: deadlines under a skewed open-loop burst.

This is the perf harness behind ``repro.cli bench-scheduler`` and
``benchmarks/test_perf_scheduler.py``.  It builds a deliberately skewed
serving workload — a deep backlog of bulk batch groups with no deadlines,
then a late trickle of small urgent requests with tight deadlines — fires it
open-loop at one :class:`~repro.service.Service` per scheduling policy, and
reports per-policy deadline hit rates, latency percentiles and batching
amortization as JSON (``BENCH_scheduler.json``).

The urgent deadline is *calibrated* on the machine running the benchmark:
long enough for EDF to preempt the backlog (one in-flight group plus the
urgent group itself), far too short for FIFO to drain the bulk work first.
A second mini-benchmark fills a bounded queue to show admission control
shedding load instead of growing the backlog without bound.

The **resilience section** records the cost of the fault-injection substrate
when it is armed but idle: a plan whose trigger can never fire, timed against
no plan at all on one bulk batch group, interleaved min-of-N.  The serving
contract is that chaos drills run against production-shaped configs without
distorting what they measure, so the armed arm must stay within 5%.

The **multi-tenant scenario** contrasts FIFO with cost-model-driven
weighted-fair queueing: an aggressive tenant floods the queue with bulk batch
groups, then a polite tenant submits a handful of small groups.  Under FIFO
the polite tenant waits out the entire burst (its p95 collapses to the full
drain time); under ``wfq`` each group is charged its estimated cost against
its tenant's share, so the polite tenant's groups jump the burst and its p95
holds.  The same scenario fires one infeasible-deadline probe: with
``reject_infeasible`` the cost model refuses it at submit
(``rejected_infeasible``), where FIFO-without-admission lets it expire in the
queue.

The **restart scenario** measures what the durable store buys across a
process boundary: a cold service on a fresh store serves a request burst
(every request executes), then a second service opens the *same* store and
replays the burst.  First-request latency and cache hit rate for both runs
land in the report, so the warm-restart win is a recorded number rather
than a claim.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from ..config import SCHEDULING_POLICIES, ServiceConfig
from ..errors import AdmissionError, InfeasibleDeadlineError
from ..graph.csr import CSRGraph
from ..graph.generators import random_weights, rmat_graph
from ..service import faults
from ..service.faults import FaultPlan
from ..service.registry import GraphRegistry
from ..service.resilience import Cancellation, cancellation_scope
from ..service.requests import TraversalRequest
from ..service.service import Service
from ..service.stats import LatencyStats
from ..traversal.multisource import run_batch
from ..types import AccessStrategy, Application

DEFAULT_VERTICES = 4000
DEFAULT_EDGES = 60000
#: Sources per bulk batch group; alternating widths so largest-batch-first
#: has something to choose between.
DEFAULT_GROUP_SOURCES = (8, 4)
#: Urgent requests arriving behind the backlog, each with a tight deadline.
DEFAULT_URGENT = 6
#: (application, strategy) combos spanning the bulk groups; with two graphs
#: this yields 2 x len(combos) distinct batch groups.
_BULK_COMBOS = (
    (Application.BFS, AccessStrategy.MERGED_ALIGNED),
    (Application.BFS, AccessStrategy.UVM),
    (Application.SSSP, AccessStrategy.MERGED_ALIGNED),
    (Application.SSSP, AccessStrategy.UVM),
)


def build_bench_graphs(
    num_vertices: int = DEFAULT_VERTICES, num_edges: int = DEFAULT_EDGES, seed: int = 7
) -> tuple[CSRGraph, CSRGraph, CSRGraph]:
    """Two bulk graphs plus a small graph for the urgent traffic."""
    graphs = []
    for index, name in enumerate(("sched-bulk-a", "sched-bulk-b")):
        graph = rmat_graph(num_vertices, num_edges, seed=seed + index, name=name)
        graphs.append(graph.with_weights(random_weights(graph.num_edges, seed=seed + index)))
    urgent = rmat_graph(
        max(200, num_vertices // 4), max(2000, num_edges // 4),
        seed=seed + 9, name="sched-urgent",
    )
    graphs.append(urgent.with_weights(random_weights(urgent.num_edges, seed=seed + 9)))
    return tuple(graphs)


def _calibrate(graphs, group_sources: int) -> dict:
    """Time one bulk BFS group, one bulk SSSP group and the urgent group.

    These direct ``run_batch`` timings anchor the urgent deadline to the
    machine actually running the benchmark, so the FIFO-misses/EDF-meets
    contrast is not at the mercy of CI hardware speed.
    """
    bulk, _, urgent = graphs
    timings = {}
    for label, application, graph in (
        ("bulk_bfs_group_seconds", Application.BFS, bulk),
        ("bulk_sssp_group_seconds", Application.SSSP, bulk),
        ("urgent_group_seconds", Application.BFS, urgent),
    ):
        sources = list(range(group_sources))
        started = time.perf_counter()
        run_batch(application, graph, sources, strategy=AccessStrategy.MERGED_ALIGNED)
        timings[label] = time.perf_counter() - started
    return timings


def build_workload(
    graphs,
    group_sources=DEFAULT_GROUP_SOURCES,
    num_urgent: int = DEFAULT_URGENT,
    urgent_deadline: float = 1.0,
) -> tuple[list[TraversalRequest], list[TraversalRequest]]:
    """The skewed burst: bulk groups without deadlines, urgent ones with."""
    bulk_graphs, urgent_graph = graphs[:2], graphs[2]
    bulk: list[TraversalRequest] = []
    for graph_index, graph in enumerate(bulk_graphs):
        for combo_index, (application, strategy) in enumerate(_BULK_COMBOS):
            width = group_sources[(graph_index + combo_index) % len(group_sources)]
            bulk.extend(
                TraversalRequest(
                    application, graph.name, source=source,
                    strategy=strategy, tenant="bulk",
                )
                for source in range(width)
            )
    urgent = [
        TraversalRequest(
            Application.BFS, urgent_graph.name, source=source,
            deadline=urgent_deadline, tenant="urgent",
        )
        for source in range(num_urgent)
    ]
    return bulk, urgent


def _run_policy(policy: str, graphs, bulk, urgent, timeout: float) -> dict:
    registry = GraphRegistry()
    for graph in graphs:
        registry.register_graph(graph)
    service = Service(
        registry=registry, config=ServiceConfig(max_workers=1, policy=policy)
    )
    started = time.perf_counter()
    for request in bulk:
        service.submit(request)
    urgent_jobs = [service.submit(request) for request in urgent]
    finished = service.wait_all(timeout=timeout)
    wall = time.perf_counter() - started
    service.close()
    stats = service.stats()
    urgent_met = sum(1 for job in urgent_jobs if job.met_deadline)
    urgent_latencies = sorted(
        job.total_seconds for job in urgent_jobs if job.total_seconds is not None
    )
    return {
        "policy": policy,
        "finished_in_time": finished,
        "wall_seconds": wall,
        "completed": stats.completed,
        "failed": stats.failed,
        "expired": stats.expired,
        "deadlines_met": stats.deadlines_met,
        "deadlines_missed": stats.deadlines_missed,
        "urgent_met": urgent_met,
        "urgent_missed": len(urgent_jobs) - urgent_met,
        "urgent_worst_latency_ms": 1e3 * urgent_latencies[-1] if urgent_latencies else None,
        "amortization": stats.amortization,
        "latency_p50_ms": 1e3 * stats.latency.p50_seconds,
        "latency_p95_ms": 1e3 * stats.latency.p95_seconds,
        "queue_wait_p95_ms": 1e3 * stats.queue_wait.p95_seconds,
    }


#: Sources per aggressive bulk group in the multi-tenant scenario.
DEFAULT_AGGRESSIVE_SOURCES = 8
#: Sources per polite group (the polite tenant asks for little).
DEFAULT_POLITE_SOURCES = 2
#: Fair-queueing shares of the multi-tenant scenario: the polite tenant is
#: favored 4:1, the usual interactive-over-batch split.
DEFAULT_TENANT_WEIGHTS = {"polite": 4.0, "aggressive": 1.0}




def _run_multi_tenant_policy(
    policy: str, graphs, aggressive, polite, probe, timeout: float
) -> dict:
    """One policy run of the two-tenant contrast plus the infeasible probe.

    The probe rides along differently per policy: the ``wfq`` run enables
    cost-model admission (``reject_infeasible``) so the hopeless deadline is
    refused at submit, while the ``fifo`` run admits it and lets it expire in
    the queue — the exact failure mode admission control removes.
    """
    registry = GraphRegistry()
    for graph in graphs:
        registry.register_graph(graph)
    service = Service(
        registry=registry,
        config=ServiceConfig(
            max_workers=1,
            policy=policy,
            tenant_weights=DEFAULT_TENANT_WEIGHTS,
            reject_infeasible=(policy == "wfq"),
        ),
    )
    started = time.perf_counter()
    jobs_by_tenant: dict[str, list] = {"aggressive": [], "polite": []}
    for request in aggressive:
        jobs_by_tenant["aggressive"].append(service.submit(request))
    for request in polite:
        jobs_by_tenant["polite"].append(service.submit(request))
    probe_rejected = False
    probe_job = None
    try:
        probe_job = service.submit(probe)
    except InfeasibleDeadlineError:
        probe_rejected = True
    finished = service.wait_all(timeout=timeout)
    wall = time.perf_counter() - started
    service.close()
    stats = service.stats()
    tenants = {}
    for tenant, jobs in jobs_by_tenant.items():
        # One percentile definition for the whole repo: the ceil-based
        # nearest rank of LatencyStats, not a hand-rolled copy of it.
        latency = LatencyStats.from_samples(
            job.total_seconds for job in jobs if job.total_seconds is not None
        )
        tenants[tenant] = {
            "jobs": len(jobs),
            "p50_ms": 1e3 * latency.p50_seconds if latency.count else None,
            "p95_ms": 1e3 * latency.p95_seconds if latency.count else None,
            "worst_ms": 1e3 * latency.max_seconds if latency.count else None,
        }
    return {
        "policy": policy,
        "finished_in_time": finished,
        "wall_seconds": wall,
        "completed": stats.completed,
        "throughput_rps": stats.completed / wall if wall > 0 else 0.0,
        "tenants": tenants,
        "probe_rejected_at_submit": probe_rejected,
        "probe_expired_in_queue": probe_job is not None
        and stats.expired > 0,
        "rejected_infeasible": stats.rejected_infeasible,
        "expired": stats.expired,
        "cost_model_families": stats.cost_model.families,
        "cost_model_mean_abs_error_ms": 1e3 * stats.cost_model.mean_abs_error_seconds,
    }


def bench_multi_tenant(
    graphs,
    aggressive_sources: int = DEFAULT_AGGRESSIVE_SOURCES,
    polite_sources: int = DEFAULT_POLITE_SOURCES,
    timeout: float = 300.0,
) -> dict:
    """Aggressive-vs-polite tenant contrast under fifo and wfq.

    The aggressive tenant floods every bulk combo on both bulk graphs before
    the polite tenant's small groups arrive, so arrival order is maximally
    unfair; the report shows whether the policy repairs it.
    """
    bulk_graphs, small = graphs[:2], graphs[2]
    # Warm the engine code paths once so the first timed run (fifo) does not
    # pay one-off numpy/JIT-cache costs the second run skips — the
    # throughput comparison must measure scheduling, not warmup order.
    for graph in graphs:
        run_batch(
            Application.BFS, graph, [0], strategy=AccessStrategy.MERGED_ALIGNED
        )
    aggressive = [
        TraversalRequest(
            application, graph.name, source=source,
            strategy=strategy, tenant="aggressive",
        )
        for graph in bulk_graphs
        for application, strategy in _BULK_COMBOS
        for source in range(aggressive_sources)
    ]
    polite = [
        TraversalRequest(
            application, small.name, source=source,
            strategy=strategy, tenant="polite",
        )
        for application, strategy in _BULK_COMBOS
        for source in range(polite_sources)
    ]
    # A deadline no backlog this deep can meet: the admission-enabled run
    # must reject it at submit, the FIFO run lets it expire in the queue.
    probe = TraversalRequest(
        Application.BFS, small.name, source=small.num_vertices - 1,
        strategy=AccessStrategy.NAIVE, deadline=1e-3, tenant="probe",
    )
    runs = [
        _run_multi_tenant_policy(policy, graphs, aggressive, polite, probe, timeout)
        for policy in ("fifo", "wfq")
    ]
    by_policy = {run["policy"]: run for run in runs}
    fifo, wfq = by_policy["fifo"], by_policy["wfq"]
    fifo_p95 = fifo["tenants"]["polite"]["p95_ms"]
    wfq_p95 = wfq["tenants"]["polite"]["p95_ms"]
    throughput_ratio = (
        wfq["throughput_rps"] / fifo["throughput_rps"]
        if fifo["throughput_rps"]
        else None
    )
    return {
        "workload": {
            "aggressive_jobs": len(aggressive),
            "aggressive_groups": 2 * len(_BULK_COMBOS),
            "polite_jobs": len(polite),
            "polite_groups": len(_BULK_COMBOS),
            "tenant_weights": dict(DEFAULT_TENANT_WEIGHTS),
            "probe_deadline_seconds": probe.deadline,
        },
        "policies": runs,
        "summary": {
            "fifo_polite_p95_ms": fifo_p95,
            "wfq_polite_p95_ms": wfq_p95,
            "wfq_holds_polite_p95": (
                wfq_p95 < fifo_p95
                if fifo_p95 is not None and wfq_p95 is not None
                else None
            ),
            "throughput_ratio_wfq_over_fifo": throughput_ratio,
            "throughput_within_10pct": (
                abs(throughput_ratio - 1.0) <= 0.10
                if throughput_ratio is not None
                else None
            ),
            "probe_rejected_under_wfq": wfq["probe_rejected_at_submit"]
            and wfq["rejected_infeasible"] == 1,
            "probe_expired_under_fifo": fifo["probe_expired_in_queue"],
        },
    }


#: Sources per fusible BFS/SSSP batch group in the planner scenario; three
#: strategy groups of this width bin-pack comfortably into one 64-lane word.
DEFAULT_PLANNER_SOURCES = 6
#: Strategy spread of the planner scenario: three same-graph groups per
#: application, each a distinct platform configuration the planner may fuse.
_PLANNER_STRATEGIES = (
    AccessStrategy.MERGED_ALIGNED,
    AccessStrategy.UVM,
    AccessStrategy.NAIVE,
)


def _planner_workload(graph, sources: int) -> list[TraversalRequest]:
    """A mixed-application, same-graph backlog with fusion headroom.

    BFS and SSSP groups across three strategies (packed-plan candidates),
    plus CC and PageRank configuration groups (streaming-plan candidates).
    """
    requests: list[TraversalRequest] = []
    for application in (Application.BFS, Application.SSSP):
        for strategy in _PLANNER_STRATEGIES:
            requests.extend(
                TraversalRequest(application, graph.name, source=source, strategy=strategy)
                for source in range(sources)
            )
    for strategy in _PLANNER_STRATEGIES:
        requests.append(TraversalRequest(Application.CC, graph.name, strategy=strategy))
    for strategy in _PLANNER_STRATEGIES[:2]:
        requests.append(
            TraversalRequest(Application.PAGERANK, graph.name, strategy=strategy)
        )
    return requests


def _run_planner_mode(enabled: bool, graphs, requests, timeout: float) -> dict:
    registry = GraphRegistry()
    for graph in graphs:
        registry.register_graph(graph)
    service = Service(
        registry=registry,
        config=ServiceConfig(max_workers=1, planner=enabled),
    )
    started = time.perf_counter()
    for request in requests:
        service.submit(request)
    finished = service.wait_all(timeout=timeout)
    wall = time.perf_counter() - started
    decisions = service.plan_decisions()
    service.close()
    stats = service.stats()
    fused = [entry for entry in decisions if entry["groups"] > 1]
    return {
        "planner": enabled,
        "finished_in_time": finished,
        "wall_seconds": wall,
        "completed": stats.completed,
        "failed": stats.failed,
        "throughput_rps": stats.completed / wall if wall > 0 else 0.0,
        "amortization": stats.amortization,
        "plans_logged": len(decisions),
        "fused_plans": len(fused),
        "fused_kinds": sorted({entry["kind"] for entry in fused}),
        "fused_lanes": sum(entry["lanes"] for entry in fused),
        "plan_decisions": decisions,
    }


def bench_planner(
    graphs,
    sources: int = DEFAULT_PLANNER_SOURCES,
    repetitions: int = 2,
    timeout: float = 300.0,
) -> dict:
    """Mixed-application fusible workload: fusion planner on vs off.

    Interleaved best-of-N per mode so runner noise cannot decide the
    contrast; the planner-on arm's plan-decision log (every drain's chosen
    shape, estimate and actual seconds) rides along for the archived trend.
    """
    graph = graphs[0]
    # Warm the engine code paths once so the first timed arm pays no one-off
    # numpy cache costs the second arm skips.
    run_batch(Application.BFS, graph, [0], strategy=AccessStrategy.MERGED_ALIGNED)
    requests = _planner_workload(graph, sources)
    best: dict[bool, dict] = {}
    for _ in range(repetitions):
        for enabled in (False, True):
            run = _run_planner_mode(enabled, graphs, requests, timeout)
            if (
                enabled not in best
                or run["throughput_rps"] > best[enabled]["throughput_rps"]
            ):
                best[enabled] = run
    on, off = best[True], best[False]
    ratio = (
        on["throughput_rps"] / off["throughput_rps"]
        if off["throughput_rps"]
        else None
    )
    return {
        "workload": {
            "jobs": len(requests),
            "group_sources": sources,
            "strategies": [strategy.value for strategy in _PLANNER_STRATEGIES],
            "repetitions": repetitions,
        },
        "modes": [on, off],
        "summary": {
            "planner_on_throughput_rps": on["throughput_rps"],
            "planner_off_throughput_rps": off["throughput_rps"],
            "throughput_ratio_on_over_off": ratio,
            "planner_not_slower": ratio >= 1.0 if ratio is not None else None,
            "fused_plans": on["fused_plans"],
            "fused_kinds": on["fused_kinds"],
        },
    }


def bench_admission(graph: CSRGraph, queue_limit: int = 4, burst: int = 32) -> dict:
    """Fill a bounded queue and count how much of the burst is shed."""
    registry = GraphRegistry()
    registry.register_graph(graph)
    service = Service(
        registry=registry,
        config=ServiceConfig(max_workers=1, queue_limit=queue_limit),
    )
    rejected = 0
    for source in range(burst):
        try:
            service.submit(TraversalRequest(Application.BFS, graph.name, source=source))
        except AdmissionError:
            rejected += 1
    service.wait_all(timeout=120)
    service.close()
    stats = service.stats()
    return {
        "queue_limit": queue_limit,
        "burst": burst,
        "admitted": burst - rejected,
        "rejected": rejected,
        "rejected_in_stats": stats.rejected,
        "completed": stats.completed,
    }


#: Armed-but-idle plan: the nth-call trigger sits far beyond any checkpoint
#: count the bench reaches, so every probe walks the spec list and declines.
IDLE_FAULT_SPEC = "seed=1;engine.sweep:transient:n=1000000000"
#: Armed-but-idle must stay within 5% of faults-off (plus 2ms slack).
RESILIENCE_OVERHEAD_LIMIT = 0.05
RESILIENCE_SLACK_SECONDS = 0.002


def bench_resilience(
    graph: CSRGraph, group_sources: int = 8, repetitions: int = 3
) -> dict:
    """Armed-but-idle fault-plan overhead on one bulk batch group.

    Interleaved min-of-N with a cancellation token in scope, so the timed
    path is exactly what a sweep under an armed (but quiet) chaos plan pays:
    one plan probe plus one token check per frontier iteration.
    """
    plan = FaultPlan.from_spec(IDLE_FAULT_SPEC)
    sources = list(range(group_sources))

    def timed(armed: bool) -> float:
        token = Cancellation(budget_seconds=3600.0)
        if armed:
            faults.activate(plan)
        try:
            started = time.perf_counter()
            with cancellation_scope(token):
                run_batch(
                    Application.BFS, graph, sources,
                    strategy=AccessStrategy.MERGED_ALIGNED,
                )
            return time.perf_counter() - started
        finally:
            faults.deactivate(plan)

    # Warm both arms once so first-touch allocations bias neither.
    timed(True)
    timed(False)
    armed_times, off_times = [], []
    for _ in range(repetitions):
        armed_times.append(timed(True))
        off_times.append(timed(False))
    best_on, best_off = min(armed_times), min(off_times)
    return {
        "spec": IDLE_FAULT_SPEC,
        "repetitions": repetitions,
        "group_sources": group_sources,
        "armed_idle_ms": 1e3 * best_on,
        "off_ms": 1e3 * best_off,
        "overhead_pct": 100.0 * (best_on / best_off - 1.0),
        "within_limit": best_on
        <= best_off * (1.0 + RESILIENCE_OVERHEAD_LIMIT) + RESILIENCE_SLACK_SECONDS,
        "faults_fired": plan.total_fired(),
    }


#: Requests per restart phase; enough for a meaningful hit rate, small
#: enough that the scenario stays a footnote of the bench's wall time.
DEFAULT_RESTART_REQUESTS = 8


def _run_restart_phase(graph, store_path, num_requests: int, timeout: float) -> dict:
    """One serving pass against a durable store; cold or warm is decided
    entirely by whether ``store_path`` already holds this graph's results."""
    registry = GraphRegistry()
    registry.register_graph(graph)
    service = Service(
        registry=registry,
        config=ServiceConfig(max_workers=1, store_path=str(store_path)),
    )
    started = time.perf_counter()
    first = service.submit(TraversalRequest(Application.BFS, graph.name, source=0))
    service.result(first, timeout=timeout)
    first_request_seconds = time.perf_counter() - started
    jobs = [
        service.submit(TraversalRequest(Application.BFS, graph.name, source=source))
        for source in range(1, num_requests)
    ]
    for job in jobs:
        service.result(job, timeout=timeout)
    wall = time.perf_counter() - started
    service.close()
    stats = service.stats()
    return {
        "first_request_ms": 1e3 * first_request_seconds,
        "wall_seconds": wall,
        "completed": stats.completed,
        "executions": stats.executions,
        "store_hits": stats.store_hits,
        "store_backfilled": stats.store_backfilled,
        "hit_rate": stats.store_hits / num_requests if num_requests else 0.0,
        "store_state": stats.store_state,
    }


def bench_restart(
    graph: CSRGraph,
    num_requests: int = DEFAULT_RESTART_REQUESTS,
    timeout: float = 120.0,
) -> dict:
    """Warm-vs-cold restart on one durable store.

    The cold phase starts from an empty database, so every request executes
    and writes through; ``Service.close()`` drains and checkpoints.  The warm
    phase is a fresh process-shaped restart — new registry, new service, same
    file — whose requests should be answered from the persistent result
    cache without touching the engine.
    """
    with tempfile.TemporaryDirectory(prefix="bench-restart-") as scratch:
        store_path = Path(scratch) / "restart.db"
        cold = _run_restart_phase(graph, store_path, num_requests, timeout)
        warm = _run_restart_phase(graph, store_path, num_requests, timeout)
    speedup = (
        cold["first_request_ms"] / warm["first_request_ms"]
        if warm["first_request_ms"]
        else None
    )
    return {
        "requests": num_requests,
        "cold": cold,
        "warm": warm,
        "summary": {
            "cold_first_request_ms": cold["first_request_ms"],
            "warm_first_request_ms": warm["first_request_ms"],
            "first_request_speedup": speedup,
            "cold_hit_rate": cold["hit_rate"],
            "warm_hit_rate": warm["hit_rate"],
            "warm_served_without_execution": warm["executions"] == 0,
        },
    }


def bench_scheduler(
    graphs=None,
    policies=SCHEDULING_POLICIES,
    group_sources=DEFAULT_GROUP_SOURCES,
    num_urgent: int = DEFAULT_URGENT,
    timeout: float = 300.0,
) -> dict:
    """Run the skewed workload under every policy and return the report."""
    graphs = graphs if graphs is not None else build_bench_graphs()
    calibration = _calibrate(graphs, max(group_sources))
    # EDF must survive one in-flight bulk group (the scheduler is
    # non-preemptive) plus the urgent group itself; FIFO must not be able to
    # drain half the backlog first.  1.5x the slowest single group sits well
    # between those two regimes for any realistic group count.
    slowest_group = max(
        calibration["bulk_bfs_group_seconds"], calibration["bulk_sssp_group_seconds"]
    )
    urgent_deadline = 1.5 * (slowest_group + calibration["urgent_group_seconds"])
    bulk, urgent = build_workload(
        graphs,
        group_sources=group_sources,
        num_urgent=num_urgent,
        urgent_deadline=urgent_deadline,
    )
    runs = [
        _run_policy(policy, graphs, bulk, urgent, timeout) for policy in policies
    ]
    multi_tenant = bench_multi_tenant(graphs, timeout=timeout)
    by_policy = {run["policy"]: run for run in runs}
    # The headline contrast only exists when both policies actually ran; a
    # deliberate subset must not fabricate a comparison against urgent_met=0.
    fifo_run = by_policy.get("fifo")
    edf_run = by_policy.get("edf")
    fifo_met = fifo_run["urgent_met"] if fifo_run is not None else None
    edf_met = edf_run["urgent_met"] if edf_run is not None else None
    return {
        "benchmark": "service-scheduling",
        "platform": {"python": platform.python_version(), "numpy": np.__version__},
        "workload": {
            "bulk_jobs": len(bulk),
            "bulk_groups": 2 * len(_BULK_COMBOS),
            "urgent_jobs": len(urgent),
            "urgent_deadline_seconds": urgent_deadline,
            "calibration": calibration,
        },
        "policies": runs,
        "admission": bench_admission(graphs[2]),
        "multi_tenant": multi_tenant,
        "planner": bench_planner(graphs, timeout=timeout),
        "resilience": bench_resilience(graphs[0]),
        "restart": bench_restart(graphs[2]),
        "summary": {
            "fifo_urgent_met": fifo_met,
            "edf_urgent_met": edf_met,
            "edf_meets_deadlines_fifo_misses": (
                edf_met > fifo_met
                if fifo_met is not None and edf_met is not None
                else None
            ),
            "wfq_holds_polite_p95": multi_tenant["summary"]["wfq_holds_polite_p95"],
        },
    }


def plan_decision_lines(report: dict) -> list[str]:
    """The planner-on arm's plan-decision log as JSONL lines.

    One line per drain decision (kind, shape, lane counts, estimated vs
    actual seconds) — the artifact CI archives next to the report so a
    regression in planning quality is diagnosable from the run that hit it.
    """
    planner = report.get("planner")
    if planner is None:
        return []
    lines = []
    for mode in planner["modes"]:
        if not mode["planner"]:
            continue
        lines.extend(
            json.dumps(entry, sort_keys=True) for entry in mode["plan_decisions"]
        )
    return lines


def headline_ok(report: dict) -> bool | None:
    """Did EDF hold the line on this report?

    True when EDF met every urgent deadline (nothing left to beat) or met
    deadlines FIFO missed; False when it did neither; None when the
    fifo/edf contrast was not part of the run.  The single definition used
    by both the CLI exit code and the perf smoke test.
    """
    summary = report["summary"]
    edf_met = summary["edf_urgent_met"]
    if edf_met is not None and edf_met == report["workload"]["urgent_jobs"]:
        return True
    return summary["edf_meets_deadlines_fifo_misses"]


def write_report(report: dict, path: str | Path) -> Path:
    """Write the benchmark report as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def format_report(report: dict) -> str:
    """Render the report as an aligned plain-text table."""
    header = (
        f"{'policy':8s} {'urgent met':>10s} {'expired':>8s} {'amort':>6s} "
        f"{'p50':>9s} {'p95':>9s} {'wall':>8s}"
    )
    workload = report["workload"]
    lines = [
        f"bench-scheduler: {workload['bulk_jobs']} bulk jobs in "
        f"{workload['bulk_groups']} groups + {workload['urgent_jobs']} urgent "
        f"(deadline {workload['urgent_deadline_seconds'] * 1e3:.0f} ms)",
        header,
        "-" * len(header),
    ]
    for run in report["policies"]:
        lines.append(
            f"{run['policy']:8s} {run['urgent_met']:>7d}/{run['urgent_met'] + run['urgent_missed']:<2d} "
            f"{run['expired']:>8d} {run['amortization']:>5.2f} "
            f"{run['latency_p50_ms']:>7.1f}ms {run['latency_p95_ms']:>7.1f}ms "
            f"{run['wall_seconds']:>7.2f}s"
        )
    admission = report["admission"]
    summary = report["summary"]
    lines.append(
        f"admission: {admission['rejected']}/{admission['burst']} shed at "
        f"queue_limit={admission['queue_limit']}"
    )
    verdict = summary["edf_meets_deadlines_fifo_misses"]
    if verdict is None:
        lines.append("EDF-vs-FIFO contrast: n/a (both policies were not run)")
    else:
        lines.append(
            "EDF meets deadlines FIFO misses: "
            f"{'yes' if verdict else 'NO'} "
            f"(fifo {summary['fifo_urgent_met']}, edf {summary['edf_urgent_met']})"
        )
    multi = report.get("multi_tenant")
    if multi is not None:
        mt_summary = multi["summary"]
        workload = multi["workload"]

        def ms(value):
            # A degraded run (timeout, zero finished polite jobs) reports
            # None; render it instead of crashing the whole report.
            return "n/a" if value is None else f"{value:.1f} ms"

        ratio = mt_summary["throughput_ratio_wfq_over_fifo"]
        lines.append(
            f"multi-tenant: {workload['aggressive_jobs']} aggressive jobs vs "
            f"{workload['polite_jobs']} polite; polite p95 "
            f"fifo {ms(mt_summary['fifo_polite_p95_ms'])} -> "
            f"wfq {ms(mt_summary['wfq_polite_p95_ms'])} "
            f"({'held' if mt_summary['wfq_holds_polite_p95'] else 'NOT held'}), "
            f"throughput ratio {'n/a' if ratio is None else f'{ratio:.2f}'}"
        )
        lines.append(
            "infeasible probe: "
            f"wfq rejected at submit: "
            f"{'yes' if mt_summary['probe_rejected_under_wfq'] else 'NO'}; "
            f"fifo expired in queue: "
            f"{'yes' if mt_summary['probe_expired_under_fifo'] else 'NO'}"
        )
    planner = report.get("planner")
    if planner is not None:
        planner_summary = planner["summary"]
        ratio = planner_summary["throughput_ratio_on_over_off"]
        lines.append(
            f"planner: {planner['workload']['jobs']} mixed-app jobs, "
            f"{planner_summary['fused_plans']} fused plans "
            f"({', '.join(planner_summary['fused_kinds']) or 'none'}); "
            f"throughput on/off "
            f"{'n/a' if ratio is None else f'{ratio:.2f}'} "
            f"({'not slower' if planner_summary['planner_not_slower'] else 'SLOWER'})"
        )
    resilience = report.get("resilience")
    if resilience is not None:
        lines.append(
            "resilience: armed-but-idle faults "
            f"{resilience['armed_idle_ms']:.1f} ms vs off "
            f"{resilience['off_ms']:.1f} ms "
            f"({resilience['overhead_pct']:+.1f}%, "
            f"{'within' if resilience['within_limit'] else 'OVER'} "
            f"{100 * RESILIENCE_OVERHEAD_LIMIT:.0f}% limit)"
        )
    restart = report.get("restart")
    if restart is not None:
        restart_summary = restart["summary"]
        lines.append(
            f"restart: first request cold "
            f"{restart_summary['cold_first_request_ms']:.1f} ms -> warm "
            f"{restart_summary['warm_first_request_ms']:.1f} ms, "
            f"warm hit rate {100 * restart_summary['warm_hit_rate']:.0f}% "
            f"({'served from store' if restart_summary['warm_served_without_execution'] else 'RE-EXECUTED'})"
        )
    return "\n".join(lines)
