"""Throughput benchmark: batched multi-source traversal vs per-source runs.

This is the perf-trajectory harness behind ``repro.cli bench-traversal`` and
``benchmarks/test_perf_traversal.py``: it times the 64-source ``run_average``
protocol both ways — one independent engine per source (the seed behaviour)
and one shared engine sweeping all sources per batch — verifies the two
produce bit-identical per-source values, and reports wall-clock requests/sec
plus the batched-over-serial speedup as JSON (``BENCH_traversal.json``).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from ..config import SystemConfig
from ..graph.csr import CSRGraph
from ..graph.generators import random_weights, rmat_graph
from ..traversal.api import run_average
from ..types import AccessStrategy, Application

#: Default benchmark shape: the largest graph the test suite generates.
DEFAULT_VERTICES = 20000
DEFAULT_EDGES = 300000
DEFAULT_SOURCES = 64
DEFAULT_STRATEGIES = (AccessStrategy.MERGED_ALIGNED, AccessStrategy.UVM)
DEFAULT_APPLICATIONS = (Application.BFS, Application.SSSP)


def build_bench_graph(
    num_vertices: int = DEFAULT_VERTICES,
    num_edges: int = DEFAULT_EDGES,
    seed: int = 7,
) -> CSRGraph:
    """The benchmark's scale-free input graph (weighted, for SSSP)."""
    graph = rmat_graph(num_vertices, num_edges, seed=seed, name="bench-rmat")
    return graph.with_weights(random_weights(graph.num_edges, seed=seed + 1))


def bench_traversal(
    graph: CSRGraph | None = None,
    num_sources: int = DEFAULT_SOURCES,
    strategies=DEFAULT_STRATEGIES,
    applications=DEFAULT_APPLICATIONS,
    system: SystemConfig | None = None,
    seed: int = 42,
) -> dict:
    """Time serial vs batched ``run_average`` and return the report dict."""
    graph = graph if graph is not None else build_bench_graph()
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, graph.num_vertices, num_sources).tolist()

    runs = []
    for application in applications:
        application = Application(application)
        for strategy in strategies:
            strategy = AccessStrategy(strategy)
            started = time.perf_counter()
            serial = run_average(
                application, graph, sources, strategy=strategy, system=system,
                batched=False,
            )
            serial_seconds = time.perf_counter() - started

            started = time.perf_counter()
            batched = run_average(
                application, graph, sources, strategy=strategy, system=system,
                batched=True,
            )
            batched_seconds = time.perf_counter() - started

            values_match = all(
                np.array_equal(a.values, b.values)
                for a, b in zip(serial.runs, batched.runs)
            )
            iterations = max(run.metrics.iterations for run in batched.runs)
            runs.append(
                {
                    "application": application.value,
                    "strategy": strategy.value,
                    "num_sources": num_sources,
                    "serial_seconds": serial_seconds,
                    "batched_seconds": batched_seconds,
                    "speedup": serial_seconds / batched_seconds
                    if batched_seconds > 0
                    else float("inf"),
                    "serial_sources_per_sec": num_sources / serial_seconds
                    if serial_seconds > 0
                    else float("inf"),
                    "batched_sources_per_sec": num_sources / batched_seconds
                    if batched_seconds > 0
                    else float("inf"),
                    "batched_iterations": iterations,
                    "serial_ms_per_iteration": 1000.0
                    * serial_seconds
                    / max(1, sum(run.metrics.iterations for run in serial.runs)),
                    "batched_ms_per_iteration": 1000.0 * batched_seconds / max(1, iterations),
                    "values_match": values_match,
                }
            )

    return {
        "benchmark": "traversal-batching",
        "graph": {
            "name": graph.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "runs": runs,
        "summary": {
            "min_speedup": min(run["speedup"] for run in runs),
            "max_speedup": max(run["speedup"] for run in runs),
            "all_values_match": all(run["values_match"] for run in runs),
        },
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write the benchmark report as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def format_report(report: dict) -> str:
    """Render the report as an aligned plain-text table."""
    header = (
        f"{'app':6s} {'strategy':16s} {'serial':>9s} {'batched':>9s} "
        f"{'speedup':>8s} {'src/s':>8s} {'match':>6s}"
    )
    lines = [
        f"bench-traversal on {report['graph']['name']} "
        f"(|V|={report['graph']['num_vertices']}, |E|={report['graph']['num_edges']}, "
        f"{report['runs'][0]['num_sources']} sources)",
        header,
        "-" * len(header),
    ]
    for run in report["runs"]:
        lines.append(
            f"{run['application']:6s} {run['strategy']:16s} "
            f"{run['serial_seconds']:8.3f}s {run['batched_seconds']:8.3f}s "
            f"{run['speedup']:7.2f}x {run['batched_sources_per_sec']:8.1f} "
            f"{'yes' if run['values_match'] else 'NO':>6s}"
        )
    summary = report["summary"]
    lines.append(
        f"speedup range: {summary['min_speedup']:.2f}x - {summary['max_speedup']:.2f}x; "
        f"values {'bit-identical' if summary['all_values_match'] else 'MISMATCHED'}"
    )
    return "\n".join(lines)
