"""Throughput benchmark: batched traversal vs per-source / per-config runs.

This is the perf-trajectory harness behind ``repro.cli bench-traversal`` and
``benchmarks/test_perf_traversal.py``.  It covers both batching axes:

* **Multi-source** (BFS, SSSP): the 64-source ``run_average`` protocol timed
  both ways — one independent engine per source (the seed behaviour) and one
  shared engine sweeping all sources per word through the lane-parallel
  relaxation kernel — with per-source values verified bit-identical.
* **Streaming** (CC, PageRank): one run per (strategy, system) platform lane
  timed both ways — independent solo runs vs one shared algorithm pass
  replayed into every lane's engine (``run_streaming_batch``) — with
  per-lane values *and* simulated metrics verified identical.

Results are reported as wall-clock seconds, requests/sec and the
batched-over-serial speedup, written to ``BENCH_traversal.json``.
"""

from __future__ import annotations

import json
import platform
import time
from itertools import product
from pathlib import Path

import numpy as np

from ..config import SystemConfig, ampere_pcie4, default_system
from ..graph.csr import CSRGraph
from ..graph.generators import random_weights, rmat_graph
from ..traversal.api import run_average
from ..traversal.cc import run_cc
from ..traversal.pagerank import run_pagerank
from ..traversal.relax import backend_status, default_method
from ..traversal.streaming import StreamingLane, run_streaming_batch
from ..types import AccessStrategy, Application

#: Default benchmark shape: the largest graph the test suite generates.
DEFAULT_VERTICES = 20000
DEFAULT_EDGES = 300000
DEFAULT_SOURCES = 64
DEFAULT_LANES = 8
DEFAULT_STRATEGIES = (AccessStrategy.MERGED_ALIGNED, AccessStrategy.UVM)
DEFAULT_APPLICATIONS = (Application.BFS, Application.SSSP, "cc", "pagerank")

#: Applications batched across sources vs across platform lanes.
MULTISOURCE_APPS = ("bfs", "sssp")
STREAMING_APPS = ("cc", "pagerank")


def build_bench_graph(
    num_vertices: int = DEFAULT_VERTICES,
    num_edges: int = DEFAULT_EDGES,
    seed: int = 7,
) -> CSRGraph:
    """The benchmark's scale-free input graph (weighted, for SSSP)."""
    graph = rmat_graph(num_vertices, num_edges, seed=seed, name="bench-rmat")
    return graph.with_weights(random_weights(graph.num_edges, seed=seed + 1))


def streaming_lanes(num_lanes: int, strategies=None) -> list[StreamingLane]:
    """``num_lanes`` distinct (strategy, system) platform lanes.

    Cycles the cartesian product of the given strategies (default: all four)
    with the two stock platforms, so every lane differs in strategy and/or
    simulated system — the shape the service's streaming fusion drains.
    """
    if num_lanes < 1:
        raise ValueError("need at least one streaming lane")
    if strategies is None:
        strategies = tuple(AccessStrategy)
    systems: list[SystemConfig] = [default_system(), ampere_pcie4()]
    distinct = [
        StreamingLane(strategy, system)
        for system, strategy in product(systems, strategies)
    ]
    return [distinct[i % len(distinct)] for i in range(num_lanes)]


def _application_name(application) -> str:
    if isinstance(application, Application):
        return application.value
    return str(application)


def _bench_multisource(graph, application, strategy, sources, system) -> dict:
    started = time.perf_counter()
    serial = run_average(
        application, graph, sources, strategy=strategy, system=system, batched=False
    )
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = run_average(
        application, graph, sources, strategy=strategy, system=system, batched=True
    )
    batched_seconds = time.perf_counter() - started

    values_match = all(
        np.array_equal(a.values, b.values)
        for a, b in zip(serial.runs, batched.runs)
    )
    iterations = max(run.metrics.iterations for run in batched.runs)
    num_sources = len(sources)
    return {
        "mode": "multisource",
        "application": application.value,
        "strategy": strategy.value,
        "num_sources": num_sources,
        "serial_seconds": serial_seconds,
        "batched_seconds": batched_seconds,
        "speedup": serial_seconds / batched_seconds
        if batched_seconds > 0
        else float("inf"),
        "serial_sources_per_sec": num_sources / serial_seconds
        if serial_seconds > 0
        else float("inf"),
        "batched_sources_per_sec": num_sources / batched_seconds
        if batched_seconds > 0
        else float("inf"),
        "batched_iterations": iterations,
        "serial_ms_per_iteration": 1000.0
        * serial_seconds
        / max(1, sum(run.metrics.iterations for run in serial.runs)),
        "batched_ms_per_iteration": 1000.0 * batched_seconds / max(1, iterations),
        "values_match": values_match,
    }


def _bench_streaming(graph, application: str, lanes) -> dict:
    solo_runner = run_cc if application == "cc" else run_pagerank

    started = time.perf_counter()
    serial_results = [
        solo_runner(graph, strategy=lane.strategy, system=lane.system)
        for lane in lanes
    ]
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = run_streaming_batch(application, graph, lanes)
    batched_seconds = time.perf_counter() - started

    values_match = all(
        np.array_equal(solo.values, lane_result.values)
        for solo, lane_result in zip(serial_results, batched.results)
    )
    metrics_match = all(
        solo.metrics.seconds == lane_result.metrics.seconds
        for solo, lane_result in zip(serial_results, batched.results)
    )
    num_lanes = len(lanes)
    return {
        "mode": "streaming",
        "application": application,
        "strategy": "multi-lane",
        "num_lanes": num_lanes,
        "lanes": [
            {
                "strategy": lane.strategy.value,
                "system": lane.system.name if lane.system is not None else "default",
            }
            for lane in lanes
        ],
        "serial_seconds": serial_seconds,
        "batched_seconds": batched_seconds,
        "speedup": serial_seconds / batched_seconds
        if batched_seconds > 0
        else float("inf"),
        "serial_lanes_per_sec": num_lanes / serial_seconds
        if serial_seconds > 0
        else float("inf"),
        "batched_lanes_per_sec": num_lanes / batched_seconds
        if batched_seconds > 0
        else float("inf"),
        "values_match": values_match,
        "metrics_match": metrics_match,
    }


def bench_traversal(
    graph: CSRGraph | None = None,
    num_sources: int = DEFAULT_SOURCES,
    strategies=DEFAULT_STRATEGIES,
    applications=DEFAULT_APPLICATIONS,
    num_lanes: int = DEFAULT_LANES,
    system: SystemConfig | None = None,
    seed: int = 42,
) -> dict:
    """Time serial vs batched execution and return the report dict.

    ``applications`` may mix the multi-source apps (``bfs``, ``sssp`` — one
    scenario per strategy, batched across ``num_sources`` sources) and the
    streaming apps (``cc``, ``pagerank`` — one scenario each, batched across
    ``num_lanes`` platform lanes).
    """
    graph = graph if graph is not None else build_bench_graph()
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, graph.num_vertices, num_sources).tolist()
    strategies = [AccessStrategy(strategy) for strategy in strategies]

    runs = []
    for application in applications:
        name = _application_name(application)
        if name in MULTISOURCE_APPS:
            for strategy in strategies:
                runs.append(
                    _bench_multisource(
                        graph, Application(name), strategy, sources, system
                    )
                )
        elif name in STREAMING_APPS:
            lanes = streaming_lanes(num_lanes, strategies=strategies)
            runs.append(_bench_streaming(graph, name, lanes))
        else:
            raise ValueError(f"unknown benchmark application {name!r}")

    return {
        "benchmark": "traversal-batching",
        "graph": {
            "name": graph.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "relax_backend": {
            "method": default_method(),
            "native": backend_status(),
        },
        "runs": runs,
        "summary": {
            "min_speedup": min(run["speedup"] for run in runs),
            "max_speedup": max(run["speedup"] for run in runs),
            "all_values_match": all(run["values_match"] for run in runs),
        },
    }


def write_report(report: dict, path: str | Path) -> Path:
    """Write the benchmark report as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def format_report(report: dict) -> str:
    """Render the report as an aligned plain-text table."""
    header = (
        f"{'app':8s} {'strategy':16s} {'width':>6s} {'serial':>9s} {'batched':>9s} "
        f"{'speedup':>8s} {'req/s':>8s} {'match':>6s}"
    )
    lines = [
        f"bench-traversal on {report['graph']['name']} "
        f"(|V|={report['graph']['num_vertices']}, |E|={report['graph']['num_edges']}, "
        f"relax={report['relax_backend']['method']})",
        header,
        "-" * len(header),
    ]
    for run in report["runs"]:
        if run["mode"] == "multisource":
            width = run["num_sources"]
            throughput = run["batched_sources_per_sec"]
        else:
            width = run["num_lanes"]
            throughput = run["batched_lanes_per_sec"]
        lines.append(
            f"{run['application']:8s} {run['strategy']:16s} {width:6d} "
            f"{run['serial_seconds']:8.3f}s {run['batched_seconds']:8.3f}s "
            f"{run['speedup']:7.2f}x {throughput:8.1f} "
            f"{'yes' if run['values_match'] else 'NO':>6s}"
        )
    summary = report["summary"]
    lines.append(
        f"speedup range: {summary['min_speedup']:.2f}x - {summary['max_speedup']:.2f}x; "
        f"values {'bit-identical' if summary['all_values_match'] else 'MISMATCHED'}"
    )
    return "\n".join(lines)
