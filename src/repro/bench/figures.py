"""One entry point per table/figure of the paper's evaluation (Section 5).

Every function returns a :class:`FigureResult` whose ``rows`` carry the same
series the paper plots, so the pytest-benchmark modules (and EXPERIMENTS.md)
can compare the reproduced *shape* against the paper's reported numbers.  The
paper's headline values are embedded as module constants for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from ..config import (
    SystemConfig,
    ampere_pcie3,
    ampere_pcie4,
    default_system,
    titan_xp_pcie3,
)
from ..graph.analysis import edge_cdf_by_degree
from ..graph.datasets import DATASET_SYMBOLS, UNDIRECTED_SYMBOLS, dataset_specs
from ..baselines.halo import run_halo
from ..baselines.subway import run_subway
from ..memsim.coalescer import REQUEST_SIZES
from ..traversal.api import run_average
from ..traversal.toy import AccessPattern, run_array_copy, run_uvm_array_scan
from ..types import AccessStrategy, Application
from .harness import ExperimentHarness
from .report import format_table

#: Zero-copy strategies compared in Figures 5/7 (UVM has no request histogram).
ZERO_COPY_STRATEGIES = (
    AccessStrategy.NAIVE,
    AccessStrategy.MERGED,
    AccessStrategy.MERGED_ALIGNED,
)

#: Paper headline numbers, kept for side-by-side reporting in EXPERIMENTS.md.
PAPER_FIG4_BANDWIDTH_GBPS = {
    "strided": 4.74,
    "merged_aligned": 12.23,
    "merged_misaligned": 12.36,
    "uvm": 9.11,
    "memcpy_peak": 12.3,
}
PAPER_FIG9_AVERAGE_SPEEDUP = {
    AccessStrategy.NAIVE: 0.73,
    AccessStrategy.MERGED: 3.24,
    AccessStrategy.MERGED_ALIGNED: 3.56,
}
PAPER_FIG10_AMPLIFICATION = {
    "GK": (4.0, 1.2),
    "GU": (5.0, 1.1),
    "FS": (5.16, 1.2),
    "ML": (2.28, 1.3),
    "SK": (1.14, 1.1),
    "UK5": (3.5, 1.2),
}
PAPER_FIG11_AVERAGE_SPEEDUP = 2.92
PAPER_FIG12_SCALING = {"uvm": 1.53, "emogi": 1.9}
PAPER_TABLE3_SPEEDUP_RANGE = (1.34, 4.73)


@dataclass
class FigureResult:
    """Rows reproducing one figure/table plus free-form notes."""

    figure_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: dict[str, object] = field(default_factory=dict)

    def to_table(self) -> str:
        table = format_table(self.headers, self.rows, title=f"{self.figure_id}: {self.title}")
        if self.notes:
            note_lines = "\n".join(f"  {key}: {value}" for key, value in self.notes.items())
            table = f"{table}\nnotes:\n{note_lines}"
        return table

    def column(self, header: str) -> list[object]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_for(self, key: object) -> list[object]:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row keyed by {key!r}")


# --------------------------------------------------------------------------- #
# Figure 4 — toy array-copy bandwidths
# --------------------------------------------------------------------------- #
def figure4(system: SystemConfig | None = None) -> FigureResult:
    """PCIe / DRAM bandwidth of the three toy access patterns plus UVM."""
    system = system or default_system()
    rows: list[list[object]] = []
    for pattern in (
        AccessPattern.STRIDED,
        AccessPattern.MERGED_ALIGNED,
        AccessPattern.MERGED_MISALIGNED,
    ):
        result = run_array_copy(pattern, system=system)
        rows.append(
            [
                pattern.value,
                result.pcie_bandwidth_gbps,
                result.dram_bandwidth_gbps,
                result.bytes_transferred,
            ]
        )
    uvm = run_uvm_array_scan(system=system)
    rows.append(["uvm", uvm.pcie_bandwidth_gbps, uvm.dram_bandwidth_gbps, uvm.bytes_transferred])
    return FigureResult(
        figure_id="Figure 4",
        title="Average PCIe and DRAM bandwidth of zero-copy access patterns",
        headers=["pattern", "pcie_gbps", "dram_gbps", "bytes_transferred"],
        rows=rows,
        notes={
            "memcpy_peak_gbps": system.pcie.block_transfer_gbps,
            "paper": PAPER_FIG4_BANDWIDTH_GBPS,
        },
    )


# --------------------------------------------------------------------------- #
# Figure 5 — PCIe read-request size distribution (BFS)
# --------------------------------------------------------------------------- #
def figure5(harness: ExperimentHarness) -> FigureResult:
    """Distribution of zero-copy request sizes for BFS on every graph."""
    rows: list[list[object]] = []
    for symbol in harness.config.symbols:
        for strategy in ZERO_COPY_STRATEGIES:
            aggregate = harness.run(Application.BFS, symbol, strategy)
            distribution = aggregate.mean_request_size_distribution()
            rows.append(
                [symbol, strategy.value]
                + [round(distribution[size], 4) for size in REQUEST_SIZES]
            )
    return FigureResult(
        figure_id="Figure 5",
        title="PCIe read request size distribution in BFS",
        headers=["graph", "strategy", "32B", "64B", "96B", "128B"],
        rows=rows,
    )


# --------------------------------------------------------------------------- #
# Figure 6 — CDF of edges by vertex degree
# --------------------------------------------------------------------------- #
def figure6(harness: ExperimentHarness, degrees: tuple[int, ...] = (16, 32, 48, 64, 80, 96)) -> FigureResult:
    """Cumulative fraction of edges owned by vertices of at most each degree."""
    rows: list[list[object]] = []
    for symbol in harness.config.symbols:
        graph = harness.graph(symbol)
        axis, cdf = edge_cdf_by_degree(graph)
        row: list[object] = [symbol]
        for degree in degrees:
            below = cdf[axis <= degree]
            row.append(round(float(below[-1]) if below.size else 0.0, 4))
        rows.append(row)
    return FigureResult(
        figure_id="Figure 6",
        title="Number-of-edges CDF by vertex degree",
        headers=["graph"] + [f"deg<={d}" for d in degrees],
        rows=rows,
    )


# --------------------------------------------------------------------------- #
# Figure 7 — total PCIe request counts (BFS)
# --------------------------------------------------------------------------- #
def figure7(harness: ExperimentHarness) -> FigureResult:
    """Total zero-copy PCIe requests for Naive / Merged / Merged+Aligned BFS."""
    rows: list[list[object]] = []
    for symbol in harness.config.symbols:
        row: list[object] = [symbol]
        counts = {}
        for strategy in ZERO_COPY_STRATEGIES:
            aggregate = harness.run(Application.BFS, symbol, strategy)
            counts[strategy] = aggregate.mean_pcie_requests
            row.append(int(aggregate.mean_pcie_requests))
        merged = counts[AccessStrategy.MERGED]
        aligned = counts[AccessStrategy.MERGED_ALIGNED]
        naive = counts[AccessStrategy.NAIVE]
        row.append(round(1.0 - merged / naive, 4) if naive else 0.0)
        row.append(round(1.0 - aligned / merged, 4) if merged else 0.0)
        rows.append(row)
    return FigureResult(
        figure_id="Figure 7",
        title="Number of PCIe requests for BFS",
        headers=[
            "graph",
            "naive",
            "merged",
            "merged_aligned",
            "merged_vs_naive_reduction",
            "aligned_vs_merged_reduction",
        ],
        rows=rows,
        notes={"paper": "Merged reduces requests by up to 83.3%, +Aligned by up to 28.8% more"},
    )


# --------------------------------------------------------------------------- #
# Figure 8 — achieved PCIe bandwidth (BFS)
# --------------------------------------------------------------------------- #
def figure8(harness: ExperimentHarness) -> FigureResult:
    """Average PCIe bandwidth of each implementation while executing BFS."""
    rows: list[list[object]] = []
    for symbol in harness.config.symbols:
        row: list[object] = [symbol]
        for strategy in (AccessStrategy.UVM,) + ZERO_COPY_STRATEGIES:
            aggregate = harness.run(Application.BFS, symbol, strategy)
            row.append(round(aggregate.mean_bandwidth_gbps, 3))
        rows.append(row)
    return FigureResult(
        figure_id="Figure 8",
        title="Average PCIe bandwidth while executing BFS (GB/s)",
        headers=["graph", "uvm", "naive", "merged", "merged_aligned"],
        rows=rows,
        notes={"memcpy_peak_gbps": harness.system.pcie.block_transfer_gbps},
    )


# --------------------------------------------------------------------------- #
# Figure 9 — BFS speedup over UVM
# --------------------------------------------------------------------------- #
def figure9(harness: ExperimentHarness) -> FigureResult:
    """BFS performance of the zero-copy variants normalized to UVM."""
    rows: list[list[object]] = []
    per_strategy: dict[AccessStrategy, list[float]] = {s: [] for s in ZERO_COPY_STRATEGIES}
    for symbol in harness.config.symbols:
        row: list[object] = [symbol]
        for strategy in ZERO_COPY_STRATEGIES:
            speedup = harness.speedup_over_uvm(Application.BFS, symbol, strategy)
            per_strategy[strategy].append(speedup)
            row.append(round(speedup, 3))
        rows.append(row)
    average_row: list[object] = ["Avg"]
    for strategy in ZERO_COPY_STRATEGIES:
        average_row.append(round(mean(per_strategy[strategy]), 3))
    rows.append(average_row)
    return FigureResult(
        figure_id="Figure 9",
        title="BFS speedup over the UVM baseline",
        headers=["graph", "naive", "merged", "merged_aligned"],
        rows=rows,
        notes={"paper_average": PAPER_FIG9_AVERAGE_SPEEDUP},
    )


# --------------------------------------------------------------------------- #
# Figure 10 — I/O read amplification (BFS)
# --------------------------------------------------------------------------- #
def figure10(harness: ExperimentHarness) -> FigureResult:
    """Host bytes read over dataset size for UVM and EMOGI (BFS)."""
    rows: list[list[object]] = []
    for symbol in harness.config.symbols:
        uvm = harness.run(Application.BFS, symbol, AccessStrategy.UVM)
        emogi = harness.run(Application.BFS, symbol, AccessStrategy.MERGED_ALIGNED)
        rows.append(
            [
                symbol,
                round(uvm.mean_io_amplification, 3),
                round(emogi.mean_io_amplification, 3),
            ]
        )
    return FigureResult(
        figure_id="Figure 10",
        title="I/O read amplification while performing BFS",
        headers=["graph", "uvm", "emogi"],
        rows=rows,
        notes={"paper": PAPER_FIG10_AMPLIFICATION},
    )


# --------------------------------------------------------------------------- #
# Figure 11 — speedup over UVM for SSSP / BFS / CC
# --------------------------------------------------------------------------- #
def _application_symbols(harness: ExperimentHarness, application: Application) -> tuple[str, ...]:
    if application is Application.CC:
        return tuple(s for s in harness.config.symbols if s in UNDIRECTED_SYMBOLS)
    return harness.config.symbols


def figure11(harness: ExperimentHarness) -> FigureResult:
    """EMOGI (Merged+Aligned) speedup over UVM across all three applications."""
    rows: list[list[object]] = []
    speedups: list[float] = []
    for application in (Application.SSSP, Application.BFS, Application.CC):
        for symbol in _application_symbols(harness, application):
            speedup = harness.speedup_over_uvm(
                application, symbol, AccessStrategy.MERGED_ALIGNED
            )
            speedups.append(speedup)
            rows.append([application.value, symbol, round(speedup, 3)])
    rows.append(["all", "Avg", round(mean(speedups), 3)])
    return FigureResult(
        figure_id="Figure 11",
        title="EMOGI speedup over UVM for SSSP, BFS and CC",
        headers=["application", "graph", "speedup_over_uvm"],
        rows=rows,
        notes={"paper_average": PAPER_FIG11_AVERAGE_SPEEDUP},
    )


# --------------------------------------------------------------------------- #
# Figure 12 — PCIe 3.0 vs PCIe 4.0 scaling
# --------------------------------------------------------------------------- #
def figure12(harness: ExperimentHarness) -> FigureResult:
    """UVM and EMOGI on the A100 platform with PCIe 3.0 and PCIe 4.0 links.

    All values are normalized to UVM on PCIe 3.0 (the paper's Figure 12
    baseline); the final rows report how much each implementation gained from
    the faster link.
    """
    pcie3 = ampere_pcie3()
    pcie4 = ampere_pcie4()
    rows: list[list[object]] = []
    uvm_scaling: list[float] = []
    emogi_scaling: list[float] = []
    for application in (Application.SSSP, Application.BFS, Application.CC):
        for symbol in _application_symbols(harness, application):
            uvm3 = harness.run(application, symbol, AccessStrategy.UVM, system=pcie3)
            uvm4 = harness.run(application, symbol, AccessStrategy.UVM, system=pcie4)
            emogi3 = harness.run(
                application, symbol, AccessStrategy.MERGED_ALIGNED, system=pcie3
            )
            emogi4 = harness.run(
                application, symbol, AccessStrategy.MERGED_ALIGNED, system=pcie4
            )
            baseline = uvm3.mean_seconds
            rows.append(
                [
                    application.value,
                    symbol,
                    1.0,
                    round(baseline / emogi3.mean_seconds, 3),
                    round(baseline / uvm4.mean_seconds, 3),
                    round(baseline / emogi4.mean_seconds, 3),
                ]
            )
            uvm_scaling.append(uvm3.mean_seconds / uvm4.mean_seconds)
            emogi_scaling.append(emogi3.mean_seconds / emogi4.mean_seconds)
    rows.append(
        [
            "all",
            "Avg scaling (4.0 vs 3.0)",
            "",
            "",
            round(mean(uvm_scaling), 3),
            round(mean(emogi_scaling), 3),
        ]
    )
    return FigureResult(
        figure_id="Figure 12",
        title="Performance scaling from PCIe 3.0 to PCIe 4.0 (normalized to UVM+PCIe3.0)",
        headers=["application", "graph", "uvm_pcie3", "emogi_pcie3", "uvm_pcie4", "emogi_pcie4"],
        rows=rows,
        notes={"paper_scaling": PAPER_FIG12_SCALING},
    )


# --------------------------------------------------------------------------- #
# Table 2 — datasets
# --------------------------------------------------------------------------- #
def table2(harness: ExperimentHarness | None = None) -> FigureResult:
    """The evaluation graphs: paper-scale counts and the scaled analogs used here."""
    specs = dataset_specs()
    rows: list[list[object]] = []
    for symbol in DATASET_SYMBOLS:
        spec = specs[symbol]
        row: list[object] = [
            symbol,
            spec.full_name,
            spec.paper_num_vertices,
            spec.paper_num_edges,
            round(spec.paper_edge_gb, 1),
            "directed" if spec.directed else "undirected",
        ]
        if harness is not None:
            graph = harness.graph(symbol)
            row.extend(
                [
                    graph.num_vertices,
                    graph.num_edges,
                    round(graph.edge_list_bytes / 1e6, 2),
                    round(graph.average_degree(), 1),
                ]
            )
        rows.append(row)
    headers = ["sym", "graph", "paper_|V|", "paper_|E|", "paper_E_GB", "kind"]
    if harness is not None:
        headers += ["scaled_|V|", "scaled_|E|", "scaled_E_MB", "avg_degree"]
    return FigureResult(
        figure_id="Table 2",
        title="Graph datasets (paper originals and scaled analogs)",
        headers=headers,
        rows=rows,
    )


# --------------------------------------------------------------------------- #
# Table 3 — comparison with HALO and Subway
# --------------------------------------------------------------------------- #
#: (application, graph) pairs in the HALO half of Table 3.
HALO_CASES = (("bfs", "ML"), ("bfs", "FS"), ("bfs", "SK"), ("bfs", "UK5"))
#: (application, graph) pairs in the Subway half of Table 3.
SUBWAY_CASES = (
    ("sssp", "GK"),
    ("sssp", "FS"),
    ("sssp", "SK"),
    ("sssp", "UK5"),
    ("bfs", "GK"),
    ("bfs", "FS"),
    ("bfs", "SK"),
    ("bfs", "UK5"),
    ("cc", "GK"),
    ("cc", "FS"),
)


def table3(harness: ExperimentHarness) -> FigureResult:
    """EMOGI versus the HALO and Subway baselines (Table 3).

    The HALO comparison uses the Titan Xp platform and 8-byte edges (as the
    paper does); the Subway comparison uses the V100 platform with 4-byte edge
    elements because Subway only supports 4-byte data types.
    """
    rows: list[list[object]] = []

    titan = titan_xp_pcie3()
    for app_name, symbol in HALO_CASES:
        application = Application(app_name)
        graph = harness.graph(symbol)
        source = int(harness.sources(symbol)[0])
        halo = run_halo(application, graph, source=source, system=titan)
        emogi = run_average(
            application,
            graph,
            [source],
            strategy=AccessStrategy.MERGED_ALIGNED,
            system=titan,
        )
        speedup = halo.seconds / emogi.mean_seconds if emogi.mean_seconds else float("inf")
        rows.append(
            [
                "HALO",
                application.value,
                symbol,
                round(halo.seconds * 1e3, 3),
                round(emogi.mean_seconds * 1e3, 3),
                round(speedup, 3),
            ]
        )

    v100 = harness.system
    for app_name, symbol in SUBWAY_CASES:
        application = Application(app_name)
        graph4 = harness.graph(symbol, element_bytes=4)
        source = int(harness.sources(symbol)[0]) if application is not Application.CC else None
        subway = run_subway(application, graph4, source=source, system=v100)
        emogi = run_average(
            application,
            graph4,
            [source] if source is not None else [0],
            strategy=AccessStrategy.MERGED_ALIGNED,
            system=v100,
        )
        speedup = (
            subway.metrics.seconds / emogi.mean_seconds if emogi.mean_seconds else float("inf")
        )
        rows.append(
            [
                "Subway",
                application.value,
                symbol,
                round(subway.metrics.seconds * 1e3, 3),
                round(emogi.mean_seconds * 1e3, 3),
                round(speedup, 3),
            ]
        )

    return FigureResult(
        figure_id="Table 3",
        title="Comparison with prior out-of-memory GPU traversal systems",
        headers=["baseline", "application", "graph", "baseline_ms", "emogi_ms", "speedup"],
        rows=rows,
        notes={"paper_speedup_range": PAPER_TABLE3_SPEEDUP_RANGE},
    )


#: Convenience registry used by the CLI and documentation generator.
ALL_FIGURES = {
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "table2": table2,
    "table3": table3,
}
