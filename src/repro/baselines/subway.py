"""Subway-style baseline: active-subgraph compaction + explicit transfers.

Subway ("Minimizing Data Transfer during out-of-GPU-Memory Graph Processing",
Sabet et al., EuroSys 2020) never lets the GPU read host memory directly.
Before every iteration it gathers the active vertices' neighbor lists into a
compacted subgraph on the host, ships that subgraph to the GPU with a bulk
``cudaMemcpy``, and runs the kernel entirely on device memory.  Its asynchronous
variant (Subway-async, the stronger one the paper compares against) overlaps
the next iteration's subgraph generation with the current iteration's
transfer and kernel.

The cost structure is therefore: no read amplification, full-block-bandwidth
transfers, but a CPU-side gather over every active edge each iteration plus
the transfer of the compacted data itself.  Subway only supports 4-byte edge
elements, which is why Table 3 re-runs EMOGI with 4-byte edges for this
comparison.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig, default_system
from ..errors import ConfigurationError
from ..graph.csr import CSRGraph
from ..graph.partition import extract_active_subgraph
from ..memsim.metrics import TimingModel, TrafficRecord
from ..memsim.monitor import PCIeTrafficMonitor
from ..timing import TimeBreakdown
from ..traversal.bfs import run_bfs
from ..traversal.cc import run_cc
from ..traversal.results import TraversalMetrics, TraversalResult
from ..traversal.sssp import run_sssp
from ..types import Application, VERTEX_DTYPE

#: Strategy label recorded in results produced by this baseline.
SUBWAY_LABEL = "subway"


class SubwayEngine:
    """Drop-in replacement for :class:`~repro.traversal.engine.TraversalEngine`
    that prices each iteration the Subway way."""

    def __init__(
        self,
        graph: CSRGraph,
        system: SystemConfig | None = None,
        asynchronous: bool = True,
        needs_weights: bool = False,
    ) -> None:
        self.graph = graph
        self.system = system or default_system()
        self.asynchronous = asynchronous
        self.needs_weights = bool(needs_weights and graph.has_weights)
        self.timing_model = TimingModel(self.system)
        self.monitor = PCIeTrafficMonitor()
        self.traffic = TrafficRecord()
        self.breakdown = TimeBreakdown()
        self.iterations = 0

    # ------------------------------------------------------------------ #
    # TraversalEngine interface
    # ------------------------------------------------------------------ #
    def process_frontier(
        self,
        frontier: np.ndarray,
        starts: np.ndarray | None = None,
        ends: np.ndarray | None = None,
    ) -> TimeBreakdown:
        # starts/ends are accepted for TraversalEngine interface parity; the
        # Subway cost model recompacts the subgraph itself and has no use for
        # the precomputed offsets.
        frontier = np.asarray(frontier, dtype=VERTEX_DTYPE).ravel()
        iteration = TimeBreakdown()
        self.iterations += 1
        if frontier.size == 0:
            return iteration

        subgraph = extract_active_subgraph(
            self.graph, frontier, include_weights=self.needs_weights
        )
        gather_seconds = (
            subgraph.num_edges * self.system.host.subgraph_gather_ns_per_edge * 1e-9
            + self.graph.num_vertices * self.system.host.subgraph_build_ns_per_vertex * 1e-9
        )
        transfer = self.timing_model.block_transfer_time(
            subgraph.transfer_bytes, include_launch=False
        )
        transfer_seconds = transfer.interconnect_seconds
        compute_seconds = self.timing_model.compute_time(
            subgraph.num_edges, int(frontier.size)
        ).compute_seconds
        overhead_seconds = (
            self.system.gpu.kernel_launch_overhead_us
            + self.system.host.memcpy_launch_overhead_us
        ) * 1e-6

        if self.asynchronous:
            # Subway-async overlaps the next subgraph generation with the
            # current transfer + kernel; the slower of the two paths wins.
            iteration_seconds = (
                max(gather_seconds, transfer_seconds + compute_seconds) + overhead_seconds
            )
        else:
            iteration_seconds = (
                gather_seconds + transfer_seconds + compute_seconds + overhead_seconds
            )

        iteration.extra["subway_iteration"] = iteration_seconds
        self.breakdown.add(iteration)

        self.traffic.vertices_processed += int(frontier.size)
        self.traffic.edges_processed += subgraph.num_edges
        self.traffic.useful_bytes += subgraph.num_edges * self.graph.element_bytes
        self.traffic.block_transfer_bytes += subgraph.transfer_bytes
        self.traffic.block_transfers += 1
        self.traffic.kernel_launches += 1
        self.monitor.record_block_transfer(subgraph.transfer_bytes)
        return iteration

    @property
    def dataset_bytes(self) -> int:
        total = self.graph.edge_list_bytes
        if self.needs_weights:
            total += self.graph.weight_list_bytes
        return total

    def finalize(self) -> TraversalMetrics:
        return TraversalMetrics(
            seconds=self.breakdown.total(),
            breakdown=self.breakdown,
            traffic=self.traffic,
            iterations=self.iterations,
            dataset_bytes=self.dataset_bytes,
            strategy=SUBWAY_LABEL,
            system_name=self.system.name,
        )


def run_subway(
    application: Application | str,
    graph: CSRGraph,
    source: int | None = None,
    system: SystemConfig | None = None,
    asynchronous: bool = True,
) -> TraversalResult:
    """Run one application with the Subway-style cost model.

    ``graph`` should use 4-byte edge elements to mirror the real Subway
    implementation (Table 3 notes it only supports 4-byte data types).
    """
    application = Application(application)
    if application is Application.CC:
        engine = SubwayEngine(graph, system=system, asynchronous=asynchronous)
        return run_cc(graph, strategy=SUBWAY_LABEL, engine=engine)
    if source is None:
        raise ConfigurationError(f"{application.value} requires a source vertex")
    if application is Application.BFS:
        engine = SubwayEngine(graph, system=system, asynchronous=asynchronous)
        return run_bfs(graph, source, strategy=SUBWAY_LABEL, engine=engine)
    engine = SubwayEngine(
        graph, system=system, asynchronous=asynchronous, needs_weights=True
    )
    return run_sssp(graph, source, strategy=SUBWAY_LABEL, engine=engine)
