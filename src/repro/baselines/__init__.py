"""Prior-work baselines the paper compares against in Table 3.

* **HALO** [21] — locality-enhancing CSR reordering followed by UVM traversal
  (its source is not public; we re-implement the idea).
* **Subway** [45] — per-iteration active-subgraph compaction on the host plus
  an explicit block transfer of the compacted (4-byte) edge list.

Both baselines reuse the exact traversal algorithms from
:mod:`repro.traversal`; only the memory/transfer cost model differs.
"""

from .halo import run_halo
from .subway import SubwayEngine, run_subway

__all__ = ["run_halo", "run_subway", "SubwayEngine"]
