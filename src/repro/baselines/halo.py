"""HALO-style baseline: graph reordering + UVM traversal (Table 3).

HALO ("Traversing Large Graphs on GPUs with Unified Memory", Gera et al.,
VLDB 2020) keeps UVM as the transport but pre-processes the CSR so vertices
that are traversed together are laid out together, improving the locality of
4KB page migrations.  The original source is not public, so we reproduce the
idea: relabel the graph in BFS (traversal-proximity) order and run the
standard UVM traversal on the reordered CSR.

The reordering is preprocessing the paper's EMOGI explicitly avoids; by
default its cost is *excluded* from the reported time (matching how HALO
reports its own numbers), but it can be included for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig, default_system
from ..errors import ConfigurationError
from ..graph.csr import CSRGraph
from ..graph.reorder import apply_permutation, halo_order
from ..traversal.api import run
from ..traversal.results import TraversalResult
from ..types import AccessStrategy, Application

#: Modelled host-side cost of producing the reordered CSR (per edge).
REORDER_NS_PER_EDGE = 6.0


@dataclass(frozen=True)
class HaloRun:
    """Result of a HALO-style run: the UVM traversal on the reordered graph."""

    result: TraversalResult
    preprocessing_seconds: float
    include_preprocessing: bool

    @property
    def seconds(self) -> float:
        total = self.result.metrics.seconds
        if self.include_preprocessing:
            total += self.preprocessing_seconds
        return total


def run_halo(
    application: Application | str,
    graph: CSRGraph,
    source: int | None = None,
    system: SystemConfig | None = None,
    include_preprocessing: bool = False,
) -> HaloRun:
    """Run one application the HALO way: reorder for locality, traverse via UVM."""
    system = system or default_system()
    application = Application(application)
    if application is not Application.CC and source is None:
        raise ConfigurationError(f"{application.value} requires a source vertex")

    permutation = halo_order(graph, source=source)
    reordered = apply_permutation(graph, permutation).renamed(f"{graph.name}-halo")
    new_source = int(permutation[source]) if source is not None else None
    result = run(
        application,
        reordered,
        source=new_source,
        strategy=AccessStrategy.UVM,
        system=system,
    )
    preprocessing_seconds = graph.num_edges * REORDER_NS_PER_EDGE * 1e-9
    return HaloRun(
        result=result,
        preprocessing_seconds=preprocessing_seconds,
        include_preprocessing=include_preprocessing,
    )
