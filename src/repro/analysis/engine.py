"""AST lint engine: walks the tree, runs the repo-invariant rules.

The engine is deliberately small: parse each file once with :mod:`ast`, hand
the tree to every rule, and filter the findings through ``# repro:
noqa[RULE]`` line suppressions.  Configuration (:class:`LintConfig`) carries
the repo's registries — hot-function allowlist, fault sites, metric catalog —
so the rules themselves stay pure AST walkers and tests can lint seeded
snippets against synthetic configs.

Suppression syntax, checked per finding line::

    something_flagged()  # repro: noqa[REPRO101] — bounded by the 64-lane word
    anything_flagged()   # repro: noqa         (suppresses every rule)
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding, LintReport
from .rules import ALL_RULES

#: ``# repro: noqa`` / ``# repro: noqa[REPRO101,REPRO104]`` with free-form
#: justification text allowed after the bracket.
_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Default hot-function allowlist: per module basename, the kernels whose
#: allocation discipline REPRO101 enforces even without a ``@hot_path`` mark.
DEFAULT_HOT_FUNCTIONS = {
    "relax.py": ("relax_lanes", "active_lane_mask", "expand_lane_pairs"),
    "multisource.py": ("_bfs_word", "_sssp_word", "_scatter_or", "_lane_mask"),
    "streaming.py": ("run_streaming_batch",),
    "frontier.py": (
        "frontier_offsets",
        "gather_frontier_edges",
        "gather_frontier_destinations",
    ),
}

#: numpy callables REPRO101 treats as allocations when called in a hot path.
DEFAULT_ALLOCATION_CALLS = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
        "unique",
        "concatenate",
        "hstack",
        "vstack",
        "stack",
        "tile",
        "array",
    }
)


@dataclass(frozen=True)
class LintConfig:
    """Everything the rules need to know about this repository."""

    #: Decorator name marking hot-kernel functions (REPRO101).
    hot_path_decorator: str = "hot_path"
    #: module basename -> function names additionally treated as hot.
    hot_functions: dict = field(default_factory=lambda: dict(DEFAULT_HOT_FUNCTIONS))
    allocation_calls: frozenset = DEFAULT_ALLOCATION_CALLS
    #: Files whose whole job is time bookkeeping (REPRO103 exemption).
    timing_exempt_files: tuple = ("timing.py",)
    #: The one module allowed to touch REPRO_* environment variables.
    envflag_module: str = "envflags.py"
    envflag_prefix: str = "REPRO_"
    #: Registered fault sites (REPRO105); resolved from the live registry.
    fault_sites: tuple = ()
    #: Bare call names treated as fault-site checks alongside faults.check.
    fault_check_names: tuple = ("check", "_check_fault")
    #: Registered metric series (REPRO106); resolved from the live catalog.
    metric_names: frozenset = frozenset()
    metric_prefix: str = "repro_"


def default_config() -> LintConfig:
    """A config bound to the repo's live registries.

    Imported lazily so that importing :mod:`repro.analysis` (e.g. for
    :mod:`~repro.analysis.lockorder`) never drags the whole serving layer in.
    """
    from ..obs.metrics import METRIC_NAMES
    from ..service.faults import SITES

    return LintConfig(
        fault_sites=tuple(SITES),
        metric_names=frozenset(METRIC_NAMES),
    )


class LintEngine:
    """Runs the rule set over source text, files, or directory trees."""

    def __init__(self, config: LintConfig | None = None, rules=None) -> None:
        self.config = config if config is not None else default_config()
        self.rules = [rule() for rule in (ALL_RULES if rules is None else rules)]

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Findings for one module's source text (suppressions applied)."""
        findings, _ = self._lint_source_counted(source, path)
        return findings

    def lint_file(self, path: str | Path) -> list[Finding]:
        return self.lint_source(Path(path).read_text(encoding="utf-8"), str(path))

    def lint_paths(self, paths: Iterable[str | Path]) -> LintReport:
        """Lint every ``.py`` file under the given files/directories."""
        report = LintReport()
        for file_path in self._expand(paths):
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError as exc:
                report.findings.append(
                    Finding(
                        rule="REPRO000",
                        path=str(file_path),
                        line=1,
                        severity="error",
                        message=f"cannot read file: {exc}",
                    )
                )
                continue
            findings, suppressed = self._lint_source_counted(source, str(file_path))
            report.findings.extend(findings)
            report.suppressed += suppressed
            report.files_checked += 1
        report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _expand(paths: Iterable[str | Path]) -> list[Path]:
        files: list[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            else:
                files.append(path)
        return files

    def _lint_source_counted(
        self, source: str, path: str
    ) -> tuple[list[Finding], int]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return (
                [
                    Finding(
                        rule="REPRO000",
                        path=path,
                        line=exc.lineno or 1,
                        severity="error",
                        message=f"syntax error: {exc.msg}",
                    )
                ],
                0,
            )
        raw: list[Finding] = []
        for rule in self.rules:
            raw.extend(rule.check(tree, path, self.config))
        suppressions = self._suppressions(source.splitlines())
        kept: list[Finding] = []
        suppressed = 0
        for finding in raw:
            allowed = suppressions.get(finding.line)
            if allowed is not None and (allowed == () or finding.rule in allowed):
                suppressed += 1
            else:
                kept.append(finding)
        kept.sort(key=lambda f: (f.line, f.rule))
        return kept, suppressed

    @staticmethod
    def _suppressions(lines: Sequence[str]) -> dict[int, tuple[str, ...]]:
        """line number -> suppressed rule ids (empty tuple = all rules)."""
        table: dict[int, tuple[str, ...]] = {}
        for number, line in enumerate(lines, 1):
            match = _NOQA_PATTERN.search(line)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                table[number] = ()
            else:
                table[number] = tuple(
                    rule.strip().upper() for rule in rules.split(",") if rule.strip()
                )
        return table


def lint_tree(root: str | Path | None = None) -> LintReport:
    """Lint the installed ``repro`` package (or ``root``) with defaults."""
    if root is None:
        root = Path(__file__).resolve().parents[1]
    return LintEngine().lint_paths([root])
