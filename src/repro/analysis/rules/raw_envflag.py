"""REPRO104 — every ``REPRO_*`` environment read goes through ``envflags``.

Before unification, ``_native.py`` accepted ``0/false/off/no`` while other
modules parsed the environment their own way; a switch honored in one module
and ignored in another is an operational trap.  The rule flags any
``os.environ.get(...)`` / ``os.environ[...]`` / ``os.getenv(...)`` call (or
bare ``environ`` imported from ``os``) whose name literal starts with
``REPRO_``, anywhere outside ``repro/envflags.py`` — non-``REPRO_``
variables (``XDG_CACHE_HOME``, sanitizer options) are out of scope.
"""

from __future__ import annotations

import ast
import posixpath

from ..findings import Finding
from . import dotted_name, literal_str

_READ_CALLS = frozenset({"os.environ.get", "environ.get", "os.getenv", "getenv"})
_ENVIRON_NAMES = frozenset({"os.environ", "environ"})


class RawEnvFlagRule:
    rule_id = "REPRO104"
    severity = "error"
    hint = "use repro.envflags.env_flag / env_str / env_choice instead"

    def check(self, tree: ast.Module, path: str, config) -> list[Finding]:
        normalized = path.replace("\\", "/")
        if posixpath.basename(normalized) == config.envflag_module:
            return []
        findings: list[Finding] = []
        for node in ast.walk(tree):
            name: str | None = None
            if isinstance(node, ast.Call):
                if dotted_name(node.func) in _READ_CALLS and node.args:
                    name = literal_str(node.args[0])
            elif isinstance(node, ast.Subscript):
                if dotted_name(node.value) in _ENVIRON_NAMES:
                    name = literal_str(node.slice)
            if name is not None and name.startswith(config.envflag_prefix):
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=path,
                        line=node.lineno,
                        severity=self.severity,
                        message=(
                            f"raw environment read of {name!r}; all "
                            f"{config.envflag_prefix}* switches must go "
                            "through repro.envflags"
                        ),
                        hint=self.hint,
                    )
                )
        return findings
