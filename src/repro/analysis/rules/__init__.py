"""Repo-invariant lint rules.

Each rule is a class with a ``rule_id``, a ``severity``, and a
``check(tree, path, config) -> list[Finding]`` method walking one module's
AST.  Rules encode invariants *of this repository* — the things a generic
linter cannot know:

==========  ===============================================================
REPRO101    no allocation calls or list-building loops in hot-kernel
            functions (``@hot_path`` or the config allowlist)
REPRO102    ``threading.Lock`` attributes acquired only via ``with`` —
            no bare ``.acquire()`` / ``.release()``
REPRO103    no mixing of ``time.time()`` and ``time.perf_counter()``
            readings inside one function (outside ``timing.py``)
REPRO104    every ``REPRO_*`` environment read routed through
            ``repro.envflags``
REPRO105    every fault-site literal armed at a ``faults.check(...)`` call
            exists in ``repro.service.faults.SITES``
REPRO106    every ``repro_*`` metric name is pre-registered in
            ``repro.obs.metrics.METRIC_NAMES``
==========  ===============================================================

See ``docs/lint-rules.md`` for the catalog with rationale and suppression
syntax (``# repro: noqa[RULE]``).
"""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def literal_str(node: ast.AST) -> str | None:
    """The value of a string-constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def iter_functions(tree: ast.Module):
    """Every function definition in the module, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


from .bare_acquire import BareAcquireRule
from .hotpath_alloc import HotPathAllocRule
from .raw_envflag import RawEnvFlagRule
from .registration import FaultSiteRule, MetricNameRule
from .timing_mix import TimingMixRule

#: Every rule the engine runs by default, in rule-id order.
ALL_RULES = (
    HotPathAllocRule,
    BareAcquireRule,
    TimingMixRule,
    RawEnvFlagRule,
    FaultSiteRule,
    MetricNameRule,
)

__all__ = [
    "ALL_RULES",
    "BareAcquireRule",
    "FaultSiteRule",
    "HotPathAllocRule",
    "MetricNameRule",
    "RawEnvFlagRule",
    "TimingMixRule",
    "dotted_name",
    "iter_functions",
    "literal_str",
]
