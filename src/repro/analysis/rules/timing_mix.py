"""REPRO103 — one timeline per function: never mix wall clock and monotonic.

Latency math is only meaningful over differences taken on the same timeline.
``time.time()`` steps with NTP; ``time.perf_counter()`` has an arbitrary
epoch.  A function reading both is one subtraction away from a latency that
jumps backwards, so the rule flags any function body containing calls to
both — everywhere except ``timing.py`` (the module whose whole job is
explicit time bookkeeping) and the paths in
``LintConfig.timing_exempt_files``.  Cross-timeline conversion has one
sanctioned door: ``Job.wall_clock`` anchors a perf-counter reading to the
wall clock once, and everything downstream subtracts perf-counter values
only.
"""

from __future__ import annotations

import ast
import posixpath

from ..findings import Finding
from . import dotted_name

_WALL = ("time.time",)
_MONOTONIC = ("time.perf_counter", "time.monotonic")


class TimingMixRule:
    rule_id = "REPRO103"
    severity = "error"
    hint = (
        "pick one timeline per function; convert once via Job.wall_clock "
        "when a wall-clock anchor is genuinely needed"
    )

    def check(self, tree: ast.Module, path: str, config) -> list[Finding]:
        basename = posixpath.basename(path.replace("\\", "/"))
        if basename in config.timing_exempt_files:
            return []
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            wall_lines: list[int] = []
            monotonic_lines: list[int] = []
            for call in ast.walk(node):
                if not isinstance(call, ast.Call):
                    continue
                name = dotted_name(call.func)
                if name in _WALL:
                    wall_lines.append(call.lineno)
                elif name in _MONOTONIC:
                    monotonic_lines.append(call.lineno)
            if wall_lines and monotonic_lines:
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=path,
                        line=wall_lines[0],
                        severity=self.severity,
                        message=(
                            f"function {node.name}() mixes time.time() "
                            f"(line {wall_lines[0]}) with a monotonic clock "
                            f"(line {monotonic_lines[0]}) — latency math "
                            "across timelines is meaningless"
                        ),
                        hint=self.hint,
                    )
                )
        return findings
