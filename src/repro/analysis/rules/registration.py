"""REPRO105 / REPRO106 — cross-cutting registries stay consistent.

Fault sites and metric names are stringly-typed registries spread across the
tree: a typo'd site never fires its fault, and a typo'd metric silently
exports nothing.  These rules close the loop statically.

REPRO105
    Every string literal passed as the first argument of a fault-site check —
    ``faults.check("...")``, a ``check("...")`` imported from the faults
    module, or ``_check_fault("...")`` — must exist in
    :data:`repro.service.faults.SITES`.

REPRO106
    Every string literal starting with ``repro_`` passed as the first
    argument of a ``.counter(`` / ``.gauge(`` / ``.summary(`` call must be
    pre-registered in :data:`repro.obs.metrics.METRIC_NAMES`.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from . import dotted_name, literal_str


class FaultSiteRule:
    rule_id = "REPRO105"
    severity = "error"
    hint = (
        "add the site to repro.service.faults.SITES (and document it in the "
        "module docstring) or fix the typo"
    )

    def check(self, tree: ast.Module, path: str, config) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            tail = name.split(".")[-1]
            qualified = "." in name
            is_check = (qualified and tail == "check" and name.endswith("faults.check")) or (
                not qualified and tail in config.fault_check_names
            )
            if not is_check:
                continue
            site = literal_str(node.args[0])
            if site is not None and site not in config.fault_sites:
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=path,
                        line=node.lineno,
                        severity=self.severity,
                        message=(
                            f"fault site {site!r} is not registered in "
                            "repro.service.faults.SITES — this check can "
                            "never be armed"
                        ),
                        hint=self.hint,
                    )
                )
        return findings


class MetricNameRule:
    rule_id = "REPRO106"
    severity = "error"
    hint = (
        "register the series in repro.obs.metrics.METRIC_NAMES or fix the "
        "typo — unregistered names silently never export"
    )

    _methods = ("counter", "gauge", "summary")

    def check(self, tree: ast.Module, path: str, config) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in self._methods:
                continue
            name = literal_str(node.args[0])
            if (
                name is not None
                and name.startswith(config.metric_prefix)
                and name not in config.metric_names
            ):
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=path,
                        line=node.lineno,
                        severity=self.severity,
                        message=(
                            f"metric name {name!r} is not pre-registered in "
                            "repro.obs.metrics.METRIC_NAMES"
                        ),
                        hint=self.hint,
                    )
                )
        return findings
