"""REPRO102 — locks are scoped with ``with``; bare acquire/release is banned.

A bare ``lock.acquire()`` separated from its ``release()`` is how exception
paths leak held locks — the failure class the serving tier cannot afford with
15+ locks and worker threads sharing them.  The rule tracks which names are
actually locks (assignments of ``threading.Lock()`` / ``threading.RLock()``
/ ``tracked_lock(...)`` / ``tracked_rlock(...)``, both module-level names
and ``self.<attr>`` attributes) and flags any explicit ``.acquire(`` /
``.release(`` call on them.  ``with lock:`` never produces such a call node,
so the ``with`` idiom passes untouched; unrelated ``acquire`` methods (an
arena leasing engines, a semaphore API) are not flagged because their
receivers were never bound to a lock constructor.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from . import dotted_name

#: Constructor call names (last dotted component) that produce a lock.
_LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "tracked_lock", "tracked_rlock", "TrackedLock"}
)


class BareAcquireRule:
    rule_id = "REPRO102"
    severity = "error"
    hint = "scope the critical section with 'with <lock>:' instead"

    def check(self, tree: ast.Module, path: str, config) -> list[Finding]:
        lock_names: set[str] = set()
        lock_attrs: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            constructor = dotted_name(value.func)
            if constructor is None:
                continue
            if constructor.split(".")[-1] not in _LOCK_CONSTRUCTORS:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    lock_names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    lock_attrs.add(target.attr)

        if not lock_names and not lock_attrs:
            return []

        findings: list[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in (
                "acquire",
                "release",
            ):
                continue
            receiver = func.value
            is_lock = (
                isinstance(receiver, ast.Name) and receiver.id in lock_names
            ) or (isinstance(receiver, ast.Attribute) and receiver.attr in lock_attrs)
            if is_lock:
                receiver_name = dotted_name(receiver) or "<lock>"
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=path,
                        line=node.lineno,
                        severity=self.severity,
                        message=(
                            f"bare {receiver_name}.{func.attr}() on a lock; "
                            "locks must be scoped with a 'with' statement"
                        ),
                        hint=self.hint,
                    )
                )
        return findings
