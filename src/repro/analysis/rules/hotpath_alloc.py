"""REPRO101 — no allocations inside hot-kernel functions.

The lane-parallel kernels earn their speedups by never materializing numpy
temporaries per iteration (PR 5's ~5x native SSSP erodes silently the moment
``np.zeros`` / ``np.unique`` / ``np.concatenate`` creep back into a sweep).
A function is *hot* when it is decorated ``@hot_path`` or when
``(module basename, function name)`` appears in the engine config's
allowlist (``relax.py`` / ``multisource.py`` / ``streaming.py`` /
``frontier.py`` kernels by default).  Inside a hot function the rule flags:

* calls to the allocation functions in ``LintConfig.allocation_calls``
  (``np.zeros``, ``np.empty``, ``np.unique``, ``np.concatenate``, …), and
* list-building loops: list/set/dict comprehensions and ``.append(...)``
  calls inside a ``for`` / ``while`` body.

Bounded, deliberate allocations (a once-per-word init, an O(#blocks) bounds
array) carry ``# repro: noqa[REPRO101] — <stated bound>``.
"""

from __future__ import annotations

import ast
import posixpath

from ..findings import Finding
from . import dotted_name


class HotPathAllocRule:
    rule_id = "REPRO101"
    severity = "warning"
    hint = (
        "reuse arena/scratch buffers or hoist the allocation out of the sweep; "
        "if the allocation is deliberately bounded, suppress with "
        "'# repro: noqa[REPRO101] — <bound>'"
    )

    def check(self, tree: ast.Module, path: str, config) -> list[Finding]:
        findings: list[Finding] = []
        basename = posixpath.basename(path.replace("\\", "/"))
        allowlisted = config.hot_functions.get(basename, ())
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if self._is_hot(node, config) or node.name in allowlisted:
                findings.extend(self._check_function(node, path, config))
        return findings

    def _is_hot(self, node: ast.AST, config) -> bool:
        for decorator in node.decorator_list:
            name = dotted_name(decorator)
            if name and name.split(".")[-1] == config.hot_path_decorator:
                return True
        return False

    def _check_function(self, function, path: str, config) -> list[Finding]:
        findings: list[Finding] = []
        function_name = function.name

        def visit(node: ast.AST, loop_depth: int) -> None:
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None:
                    head, _, tail = name.rpartition(".")
                    if tail in config.allocation_calls and head in ("np", "numpy"):
                        findings.append(
                            Finding(
                                rule=self.rule_id,
                                path=path,
                                line=node.lineno,
                                severity=self.severity,
                                message=(
                                    f"allocation call {name}() inside hot-path "
                                    f"function {function_name}()"
                                ),
                                hint=self.hint,
                            )
                        )
                    elif tail == "append" and head and loop_depth > 0:
                        findings.append(
                            Finding(
                                rule=self.rule_id,
                                path=path,
                                line=node.lineno,
                                severity=self.severity,
                                message=(
                                    f"list-building loop ({name}(...)) inside "
                                    f"hot-path function {function_name}()"
                                ),
                                hint=self.hint,
                            )
                        )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                kind = type(node).__name__
                findings.append(
                    Finding(
                        rule=self.rule_id,
                        path=path,
                        line=node.lineno,
                        severity=self.severity,
                        message=(
                            f"{kind} builds a container inside hot-path "
                            f"function {function_name}()"
                        ),
                        hint=self.hint,
                    )
                )
            next_depth = loop_depth + (1 if isinstance(node, (ast.For, ast.While)) else 0)
            for child in ast.iter_child_nodes(node):
                visit(child, next_depth)

        for statement in function.body:
            visit(statement, 0)
        return findings
