"""Structured lint findings: rule id, location, severity, message, fix hint."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Finding severities, most severe first.  Both gate the lint exit code; the
#: split exists so reports can rank correctness invariants above perf ones.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    severity: str
    message: str
    #: How to fix it — or how to suppress it when the violation is deliberate.
    hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def format(self) -> str:
        text = f"{self.location}: {self.severity} {self.rule}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class LintReport:
    """Every finding of one engine run plus the files it covered."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Findings silenced by ``# repro: noqa[RULE]`` comments.
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def format(self) -> str:
        lines = [finding.format() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            + (f", {self.suppressed} suppressed" if self.suppressed else "")
        )
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "findings": [finding.to_json() for finding in self.findings],
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
        }
