"""Dynamic lock-order race detection: ``TrackedLock`` and the ordering graph.

The serving tier holds 15+ ``threading.Lock`` / ``RLock`` instances spread
across ``service``, ``obs`` and ``traversal`` with no ordering discipline
beyond convention.  This module makes the discipline checkable: every lock in
those modules is now created through :func:`tracked_lock` /
:func:`tracked_rlock`, which return a **plain stdlib lock** unless lock
checking is armed (``REPRO_LOCKCHECK=1`` or :func:`install`), so the
production path pays nothing — identity with ``threading.Lock`` semantics,
asserted by the regression tests and the armed-but-idle overhead gates.

When armed, each acquisition records an edge ``held → acquired`` into a
process-global ordering graph, keyed by the lock's *name* (a class-level
label like ``"service.Service._lock"``), together with the Python stacks of
both acquisitions.  Two code paths that take the same pair of locks in
opposite orders form a cycle in that graph — a potential deadlock even if the
schedules observed so far never interleaved fatally.  Cycles are reported via
:func:`cycles` / :func:`format_report`, by ``repro.cli lint --locks``, and at
process exit (a non-fatal stderr report), so chaos runs in CI surface
inversions without having to actually deadlock.

Reentrant acquisitions of the *same* ``TrackedLock`` instance never record an
edge (RLock semantics would otherwise self-cycle); nested acquisitions of two
*different* instances sharing a name do record a self-edge, because two
threads nesting two instances in opposite order is a real deadlock.
"""

from __future__ import annotations

import atexit
import sys
import threading
import traceback
from dataclasses import dataclass
from typing import Any

from ..envflags import env_flag

#: Environment switch arming the detector (default off: zero-cost locks).
ENV_SWITCH = "REPRO_LOCKCHECK"

#: Stack frames captured per acquisition (innermost frames, the useful ones).
_STACK_DEPTH = 12

_override: bool | None = None


def install(enabled: bool | None) -> None:
    """Force lock checking on/off for this process; ``None`` defers to env.

    Used by tests and ``repro.cli lint --locks``; only locks created *after*
    the call are affected (existing plain locks stay plain).
    """
    global _override
    _override = enabled


def enabled() -> bool:
    """True when locks created now should be tracked."""
    if _override is not None:
        return _override
    return env_flag(ENV_SWITCH, default=False)


@dataclass
class _Edge:
    """First-seen evidence that ``holder`` was held while taking ``acquired``."""

    holder: str
    acquired: str
    #: Stack where the already-held lock was acquired.
    holder_stack: str
    #: Stack of the acquisition that created the edge.
    acquire_stack: str
    count: int = 1


class LockOrderGraph:
    """Thread-safe ordering graph over lock names, with cycle detection."""

    def __init__(self) -> None:
        # A plain, untracked lock: held only for dict bookkeeping, never
        # while a user lock is being acquired, so it cannot deadlock with
        # the locks it observes.
        self._lock = threading.Lock()
        self._edges: dict[tuple[str, str], _Edge] = {}
        self._held = threading.local()

    # ------------------------------------------------------------------ #
    # Recording (called by TrackedLock with the user lock already held)
    # ------------------------------------------------------------------ #
    def _held_stack(self) -> list[dict[str, Any]]:
        stack = getattr(self._held, "entries", None)
        if stack is None:
            stack = self._held.entries = []
        return stack

    def note_acquired(self, lock: "TrackedLock") -> None:
        held = self._held_stack()
        for entry in reversed(held):
            if entry["lock"] is lock:
                entry["count"] += 1
                return
        if held:
            stack = _format_stack()
            with self._lock:
                for entry in held:
                    key = (entry["name"], lock.name)
                    edge = self._edges.get(key)
                    if edge is None:
                        self._edges[key] = _Edge(
                            holder=entry["name"],
                            acquired=lock.name,
                            holder_stack=entry["stack"],
                            acquire_stack=stack,
                        )
                    else:
                        edge.count += 1
        else:
            stack = _format_stack()
        held.append({"lock": lock, "name": lock.name, "stack": stack, "count": 1})

    def note_released(self, lock: "TrackedLock") -> None:
        held = self._held_stack()
        for index in range(len(held) - 1, -1, -1):
            if held[index]["lock"] is lock:
                held[index]["count"] -= 1
                if held[index]["count"] == 0:
                    del held[index]
                return

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def edges(self) -> list[_Edge]:
        with self._lock:
            return [
                _Edge(e.holder, e.acquired, e.holder_stack, e.acquire_stack, e.count)
                for e in self._edges.values()
            ]

    def cycles(self) -> list[dict[str, Any]]:
        """Every elementary ordering cycle, with both stacks per edge.

        A cycle ``A → B → A`` means some thread acquired B while holding A
        and some thread acquired A while holding B — the classic inverted
        acquisition.  Self-edges (``A → A`` across two instances sharing a
        name) are reported as single-node cycles.
        """
        with self._lock:
            adjacency: dict[str, list[str]] = {}
            for holder, acquired in self._edges:
                adjacency.setdefault(holder, []).append(acquired)
            edges = dict(self._edges)

        found: list[list[str]] = []
        seen_cycles: set[frozenset[str]] = set()

        def depth_first(origin: str, node: str, path: list[str], on_path: set) -> None:
            for successor in adjacency.get(node, ()):
                if successor == origin:
                    signature = frozenset(path)
                    if signature not in seen_cycles:
                        seen_cycles.add(signature)
                        found.append(list(path))
                elif successor not in on_path and successor > origin:
                    # Visit only names ordered after the origin: every
                    # elementary cycle is found exactly once, rooted at its
                    # lexicographically smallest node.
                    path.append(successor)
                    on_path.add(successor)
                    depth_first(origin, successor, path, on_path)
                    on_path.remove(successor)
                    path.pop()

        for origin in sorted(adjacency):
            depth_first(origin, origin, [origin], {origin})

        reports = []
        for path in found:
            cycle_edges = []
            for position, holder in enumerate(path):
                acquired = path[(position + 1) % len(path)]
                edge = edges[(holder, acquired)]
                cycle_edges.append(
                    {
                        "holder": edge.holder,
                        "acquired": edge.acquired,
                        "count": edge.count,
                        "holder_stack": edge.holder_stack,
                        "acquire_stack": edge.acquire_stack,
                    }
                )
            reports.append({"nodes": list(path), "edges": cycle_edges})
        return reports

    def reset(self) -> None:
        with self._lock:
            self._edges.clear()


def _format_stack() -> str:
    frames = traceback.extract_stack()
    # Drop this module's own frames from the tail; keep the innermost
    # _STACK_DEPTH caller frames.
    while frames and frames[-1].filename == __file__:
        frames.pop()
    return "".join(traceback.format_list(frames[-_STACK_DEPTH:]))


#: The process-global ordering graph every TrackedLock reports into.
GRAPH = LockOrderGraph()


class TrackedLock:
    """A named lock recording its acquisition order into :data:`GRAPH`.

    Wraps ``threading.Lock`` or ``threading.RLock`` (``reentrant=True``) and
    mirrors their full interface — context manager, ``acquire(blocking,
    timeout)``, ``release()``, ``locked()`` — so it can stand in anywhere a
    plain lock does.
    """

    __slots__ = ("name", "reentrant", "_inner")

    def __init__(self, name: str, reentrant: bool = False) -> None:
        self.name = str(name)
        self.reentrant = bool(reentrant)
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            GRAPH.note_acquired(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        GRAPH.note_released(self)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "TrackedRLock" if self.reentrant else "TrackedLock"
        return f"<{kind} {self.name!r}>"


_atexit_registered = False


def _ensure_atexit() -> None:
    global _atexit_registered
    if not _atexit_registered:
        _atexit_registered = True
        atexit.register(_report_at_exit)


def tracked_lock(name: str):
    """A lock participating in order tracking when armed, else a plain Lock.

    The disabled path returns an actual ``threading.Lock`` — not a wrapper —
    so arming the detector is the only thing that ever costs anything.
    """
    if not enabled():
        return threading.Lock()
    _ensure_atexit()
    return TrackedLock(name)


def tracked_rlock(name: str):
    """Reentrant variant of :func:`tracked_lock`."""
    if not enabled():
        return threading.RLock()
    _ensure_atexit()
    return TrackedLock(name, reentrant=True)


def cycles() -> list[dict[str, Any]]:
    """Ordering cycles observed so far (see :meth:`LockOrderGraph.cycles`)."""
    return GRAPH.cycles()


def reset() -> None:
    """Clear the recorded ordering graph (tests and repeated smokes)."""
    GRAPH.reset()


def format_report(found: list[dict[str, Any]] | None = None) -> str:
    """Human-readable cycle report with both acquisition stacks per edge."""
    found = cycles() if found is None else found
    if not found:
        return "lock-order: no ordering cycles observed"
    lines = [f"lock-order: {len(found)} potential deadlock cycle(s) detected"]
    for index, cycle in enumerate(found, 1):
        lines.append(f"cycle {index}: {' -> '.join(cycle['nodes'] + [cycle['nodes'][0]])}")
        for edge in cycle["edges"]:
            lines.append(
                f"  {edge['holder']} held while acquiring {edge['acquired']} "
                f"(seen {edge['count']}x)"
            )
            lines.append("    holder acquired at:")
            lines.extend("      " + l for l in edge["holder_stack"].rstrip().splitlines())
            lines.append("    inner acquired at:")
            lines.extend("      " + l for l in edge["acquire_stack"].rstrip().splitlines())
    return "\n".join(lines)


def _report_at_exit() -> None:
    found = cycles()
    if found:
        print(format_report(found), file=sys.stderr)
