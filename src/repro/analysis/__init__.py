"""Repo-invariant static analysis and dynamic race detection.

Generic linters cannot check *this* repository's invariants — that hot
kernels never allocate, that every fault-site literal is registered, that
every metric name actually exports, that 15+ locks keep a consistent
acquisition order.  This package can:

* :mod:`repro.analysis.engine` — an AST lint engine running the rule set in
  :mod:`repro.analysis.rules` (REPRO101–REPRO106), with structured findings
  and ``# repro: noqa[RULE]`` suppressions, surfaced as ``repro.cli lint``
  and gated in CI.  See ``docs/lint-rules.md`` for the catalog.
* :mod:`repro.analysis.lockorder` — ``TrackedLock``: a zero-cost-when-idle
  lock wrapper (``REPRO_LOCKCHECK=1`` arms it) recording per-thread
  acquisition order into a global graph and reporting cycles — potential
  deadlocks — with both acquisition stacks, via ``repro.cli lint --locks``
  and at process exit.

Import discipline: ``lockorder`` is imported by the serving tier at module
load, so this ``__init__`` must stay light — the lint engine (which consults
the fault-site and metric registries) is re-exported lazily.
"""

from __future__ import annotations

from .findings import Finding, LintReport
from .lockorder import TrackedLock, tracked_lock, tracked_rlock

__all__ = [
    "Finding",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "TrackedLock",
    "default_config",
    "lint_tree",
    "tracked_lock",
    "tracked_rlock",
]

_LAZY = {"LintEngine", "LintConfig", "default_config", "lint_tree"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
