"""Warp geometry helpers."""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

#: Number of threads per warp on every NVIDIA GPU the paper evaluates.
WARP_SIZE = 32


def num_warps(num_threads: int, warp_size: int = WARP_SIZE) -> int:
    """Number of warps needed to run ``num_threads`` threads."""
    if num_threads < 0:
        raise SimulationError("num_threads cannot be negative")
    return -(-num_threads // warp_size)


def lanes_for_threads(num_threads: int, warp_size: int = WARP_SIZE) -> np.ndarray:
    """Lane index (0..warp_size-1) of each thread in a flat launch."""
    if num_threads < 0:
        raise SimulationError("num_threads cannot be negative")
    return np.arange(num_threads, dtype=np.int64) % warp_size


def warp_of_threads(num_threads: int, warp_size: int = WARP_SIZE) -> np.ndarray:
    """Warp index of each thread in a flat launch."""
    if num_threads < 0:
        raise SimulationError("num_threads cannot be negative")
    return np.arange(num_threads, dtype=np.int64) // warp_size
