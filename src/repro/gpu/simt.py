"""Exact warp-by-warp coalescing of an arbitrary thread grid.

This is the slow-but-exact reference used by the toy kernels and by tests to
validate the vectorized span-based coalescing in :mod:`repro.memsim.coalescer`:
threads are grouped into consecutive warps of 32 and each warp's addresses are
coalesced independently, exactly as the GPU's load/store unit does.
"""

from __future__ import annotations

import numpy as np

from ..memsim.coalescer import RequestHistogram, coalesce_warp_addresses
from .warp import WARP_SIZE


def coalesce_thread_grid(
    byte_addresses: np.ndarray,
    access_bytes: int = 8,
    active_mask: np.ndarray | None = None,
    warp_size: int = WARP_SIZE,
) -> RequestHistogram:
    """Coalesce one memory instruction executed by a flat grid of threads.

    ``byte_addresses[i]`` is the address accessed by thread ``i``; threads are
    grouped into warps of ``warp_size`` consecutive threads.  Returns the
    combined request histogram over all warps.
    """
    byte_addresses = np.asarray(byte_addresses, dtype=np.int64).ravel()
    if active_mask is None:
        active_mask = np.ones(byte_addresses.size, dtype=bool)
    else:
        active_mask = np.asarray(active_mask, dtype=bool).ravel()
    histogram = RequestHistogram()
    for start in range(0, byte_addresses.size, warp_size):
        stop = min(start + warp_size, byte_addresses.size)
        warp_histogram = coalesce_warp_addresses(
            byte_addresses[start:stop],
            access_bytes=access_bytes,
            active_mask=active_mask[start:stop],
        )
        histogram.merge_in_place(warp_histogram)
    return histogram
