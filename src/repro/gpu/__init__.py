"""Minimal SIMT execution model: warps, kernels and exact coalescing.

Only the aspects of GPU execution that determine EMOGI's behaviour are
modelled: the 32-thread warp as the unit of memory coalescing, per-kernel
launch overhead (one traversal iteration = one kernel launch, §4.2), and the
mapping from per-lane addresses to PCIe requests.
"""

from .kernel import KernelLaunch, KernelStats
from .simt import coalesce_thread_grid
from .warp import WARP_SIZE, lanes_for_threads, num_warps

__all__ = [
    "WARP_SIZE",
    "num_warps",
    "lanes_for_threads",
    "KernelLaunch",
    "KernelStats",
    "coalesce_thread_grid",
]
