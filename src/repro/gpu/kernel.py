"""Kernel launch bookkeeping.

EMOGI's vertex-centric traversal launches one kernel per traversal iteration
(§4.2: the number of BFS kernels equals the distance from the source to the
furthest reachable vertex), so launch overhead is part of the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .warp import WARP_SIZE, num_warps


@dataclass(frozen=True)
class KernelLaunch:
    """One simulated kernel launch."""

    name: str
    num_threads: int
    iteration: int = 0

    @property
    def num_warps(self) -> int:
        return num_warps(self.num_threads, WARP_SIZE)


@dataclass
class KernelStats:
    """Aggregate statistics over all kernels launched during a run."""

    launches: list[KernelLaunch] = field(default_factory=list)

    def record(self, launch: KernelLaunch) -> None:
        self.launches.append(launch)

    @property
    def num_launches(self) -> int:
        return len(self.launches)

    @property
    def total_threads(self) -> int:
        return sum(launch.num_threads for launch in self.launches)

    @property
    def total_warps(self) -> int:
        return sum(launch.num_warps for launch in self.launches)

    def reset(self) -> None:
        self.launches.clear()
