"""Time and bandwidth helpers shared by the memory and traversal simulators.

All simulated times are expressed in seconds and all bandwidths in GB/s
(decimal gigabytes, matching how the paper quotes PCIe and DRAM figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

GB = 1e9


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1e-6


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * 1e-9


def to_gbps(num_bytes: float, seconds: float) -> float:
    """Bytes over seconds to GB/s; returns 0 for a zero-length interval."""
    if seconds <= 0.0:
        return 0.0
    return num_bytes / seconds / GB


def transfer_seconds(num_bytes: float, bandwidth_gbps: float) -> float:
    """Time to move ``num_bytes`` at ``bandwidth_gbps`` GB/s."""
    if num_bytes < 0:
        raise ValueError("cannot transfer a negative number of bytes")
    if bandwidth_gbps <= 0:
        raise ValueError("bandwidth must be positive")
    return num_bytes / (bandwidth_gbps * GB)


@dataclass
class TimeBreakdown:
    """Accumulated per-component times for one traversal run.

    The total is *not* simply the sum: interconnect transfer and GPU compute
    largely overlap in the real system, so :meth:`total` models the run as the
    serial CPU-side costs plus the maximum of the overlapping components.
    """

    interconnect_seconds: float = 0.0
    dram_seconds: float = 0.0
    compute_seconds: float = 0.0
    fault_handling_seconds: float = 0.0
    host_preprocess_seconds: float = 0.0
    kernel_launch_seconds: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    def add(self, other: "TimeBreakdown") -> None:
        """Accumulate another breakdown into this one in place."""
        self.interconnect_seconds += other.interconnect_seconds
        self.dram_seconds += other.dram_seconds
        self.compute_seconds += other.compute_seconds
        self.fault_handling_seconds += other.fault_handling_seconds
        self.host_preprocess_seconds += other.host_preprocess_seconds
        self.kernel_launch_seconds += other.kernel_launch_seconds
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value

    def scaled(self, factor: float) -> "TimeBreakdown":
        """A copy with every component multiplied by ``factor``.

        Used to attribute one shared (batched) iteration's cost across the
        sources that drove it, proportionally to their share of the work.
        """
        if factor < 0:
            raise ValueError("scale factor cannot be negative")
        return TimeBreakdown(
            interconnect_seconds=self.interconnect_seconds * factor,
            dram_seconds=self.dram_seconds * factor,
            compute_seconds=self.compute_seconds * factor,
            fault_handling_seconds=self.fault_handling_seconds * factor,
            host_preprocess_seconds=self.host_preprocess_seconds * factor,
            kernel_launch_seconds=self.kernel_launch_seconds * factor,
            extra={key: value * factor for key, value in self.extra.items()},
        )

    def overlapped_transfer_seconds(self) -> float:
        """The data-movement critical path (link, DRAM and compute overlap)."""
        return max(self.interconnect_seconds, self.dram_seconds, self.compute_seconds)

    def total(self) -> float:
        """End-to-end simulated wall-clock time for the run."""
        serial = (
            self.fault_handling_seconds
            + self.host_preprocess_seconds
            + self.kernel_launch_seconds
            + sum(self.extra.values())
        )
        return serial + self.overlapped_transfer_seconds()
