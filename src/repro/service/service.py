"""The serving front door: accept requests, schedule work, hand out results.

``Service`` ties the pieces together: requests are normalized and resolved
against the service's default platform, answered from the result cache when
possible, coalesced onto identical in-flight jobs otherwise, and finally
enqueued in batch groups that the worker pool drains against registry-resident
graphs.  Clients interact with three calls::

    service = Service.with_datasets(["GK", "GU"], scale=40000)
    job = service.submit(TraversalRequest(Application.BFS, "GK", source=0))
    result = service.result(job)          # blocks until done
    print(service.stats().describe())
"""

from __future__ import annotations

import itertools
import logging
import random
import time
from collections import deque
from typing import Callable, Iterable

from ..analysis.lockorder import tracked_lock
from ..config import ServiceConfig, SystemConfig, default_system
from ..errors import (
    AdmissionError,
    DeadlineExceededError,
    InfeasibleDeadlineError,
    JobFailedError,
    JobNotFoundError,
    NativeBackendError,
    RetryableError,
    ServiceClosedError,
    ServiceError,
    SimulationError,
    SweepTimeoutError,
)
from ..graph.csr import CSRGraph
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Span, Tracer
from ..traversal import _native
from ..traversal.api import run
from ..traversal.arena import EngineArena
from ..traversal.bfs import run_bfs
from ..traversal.cc import run_cc
from ..traversal.multisource import PackedLane, run_batch, run_packed_batch
from ..traversal.pagerank import run_pagerank
from ..traversal.results import TraversalResult
from ..traversal.streaming import run_streaming_batch
from ..traversal.sssp import run_sssp
from ..types import Application
from . import faults
from .cache import ResultCache
from .costmodel import CostModel
from .faults import FaultPlan
from .jobs import Job, JobStatus
from .planner import FusionPlan, FusionPlanner
from .queue import RequestQueue
from .registry import GraphRegistry
from .requests import TraversalRequest
from .resilience import (
    BREAKER_STATE_CODES,
    Cancellation,
    CircuitBreaker,
    RetryPolicy,
    cancellation_scope,
)
from .scheduler import make_policy
from .stats import LatencyStats, ServiceStats, TenantStats
from .store import STORE_STATE_CODES, ServingStore
from .workers import WorkerPool

#: Signature of the execution backend: given a normalized request and the
#: resolved graph, produce a result.  Pluggable so tests can count executions
#: or inject failures without touching the real engine.
Engine = Callable[[TraversalRequest, CSRGraph], TraversalResult]

#: Service-layer logger.  Silent unless the embedding application configures
#: logging; carries one line per drained batch including the relax backend,
#: so a silent fallback from the native kernel is visible in production logs.
logger = logging.getLogger("repro.service")


def default_engine(request: TraversalRequest, graph: CSRGraph) -> TraversalResult:
    """Run the real simulated traversal for ``request``."""
    return run(
        request.application,
        graph,
        source=request.source,
        strategy=request.strategy,
        system=request.system,
    )


class Service:
    """A multi-tenant traversal server over a :class:`GraphRegistry`."""

    def __init__(
        self,
        registry: GraphRegistry | None = None,
        config: ServiceConfig | None = None,
        system: SystemConfig | None = None,
        engine: Engine | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry or GraphRegistry(
            budget_bytes=self.config.registry_budget_bytes
        )
        self.system = system or default_system()
        #: ``None`` selects the built-in batched execution path (shared
        #: engines from the arena, multi-source batches per drained group);
        #: injecting a callable forces per-job execution through it, which is
        #: what the test doubles rely on.
        self._engine = engine
        self._arena = EngineArena(max_idle=max(8, 2 * self.config.max_workers))
        self._cache = ResultCache(self.config.result_cache_entries)
        #: Online per-batch-family cost estimator, fed by every successful
        #: execution below and consumed by the WFQ policy and by
        #: infeasible-deadline admission.  Bootstrap estimates peek at the
        #: registry (resident graphs only — estimating must never force a
        #: load or an eviction).
        self._costmodel = CostModel(
            alpha=self.config.cost_alpha, graph_size_lookup=self._graph_size
        )
        self._queue = RequestQueue(
            policy=make_policy(
                self.config.policy,
                tenant_weights=self.config.tenant_weights,
                cost_model=self._costmodel,
            ),
            cost_model=self._costmodel,
            on_policy_fallback=self._note_policy_fallback,
        )
        self._policy_fallbacks = 0
        #: Backlog-wide fusion planner: every built-in drain asks it for the
        #: cheapest way to execute the policy-selected anchor group together
        #: with compatible pending work (see :mod:`repro.service.planner`).
        self._planner = FusionPlanner(self._costmodel)
        #: Bounded log of recent plan decisions for benchmarks / debugging.
        self._plan_log: deque[dict] = deque(maxlen=256)
        self._pool = WorkerPool(self.config.max_workers)
        self._jobs: dict[str, Job] = {}
        #: Completion order of jobs still in ``_jobs`` (ids, oldest first):
        #: retention pruning pops from the head instead of rescanning the
        #: whole table, so a deep unfinished backlog costs nothing to skip.
        self._finished_order: deque[str] = deque()
        self._lock = tracked_lock("service.Service._lock")
        #: Serializes the closed-flag check with enqueue + dispatch, so a
        #: racing close() can never observe a submission half-way through
        #: (see submit/close).  Kept separate from ``self._lock`` because the
        #: submission path re-acquires ``self._lock`` internally.
        self._admission_lock = tracked_lock("service.Service._admission_lock")
        self._job_ids = itertools.count(1)
        self._submitted = 0
        self._deduplicated = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._rejected_infeasible = 0
        self._expired = 0
        self._deadlines_met = 0
        self._deadlines_missed = 0
        #: Lifetime per-tenant outcome counters (two ints per distinct tenant
        #: label ever seen).  Tenants are expected to be a small, stable set
        #: of service classes — do not encode per-user or per-request IDs
        #: into :attr:`TraversalRequest.tenant`, which would grow these (and
        #: the WFQ policy's virtual clocks) with label cardinality.
        self._tenant_completed: dict[str | None, int] = {}
        self._tenant_missed: dict[str | None, int] = {}
        self._executions = 0
        self._batches = 0
        self._engine_seconds = 0.0
        self._wait_samples: deque[float] = deque(maxlen=self.config.latency_window)
        self._latency_samples: deque[float] = deque(maxlen=self.config.latency_window)
        #: Span sink for request traces (see :mod:`repro.obs.trace`): bounded
        #: ring buffer, systematic sampling, ``REPRO_TRACE`` kill switch.
        self._tracer = Tracer(
            capacity=self.config.trace_buffer,
            sample=self.config.trace_sample,
            enabled=self.config.trace_enabled,
        )
        self._sweep_ids = itertools.count(1)
        self._plan_ids = itertools.count(1)
        self._metrics = MetricsRegistry()
        self._init_metrics()
        # Resilience substrate: fault plan (explicit, spec string, or the
        # REPRO_FAULTS environment fallback), retry policy, and the native
        # circuit breaker.  The plan is activated globally so the hook sites
        # outside the service (registry, cache, engines, native backend) see
        # it; close() deactivates it again.
        plan = self.config.fault_plan
        if isinstance(plan, str):
            plan = FaultPlan.from_spec(plan)
        elif plan is None:
            plan = FaultPlan.from_env()
        self._faults = plan
        if plan is not None:
            plan.add_listener(self._note_fault)
            faults.activate(plan)
        self._retry_policy = RetryPolicy(
            limit=self.config.retry_limit,
            backoff_seconds=self.config.retry_backoff,
            jitter=self.config.retry_jitter,
        )
        #: Jitter RNG for retry backoff; seeded so chaos runs replay exactly.
        self._retry_rng = random.Random(0x5EED)
        self._breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown_seconds=self.config.breaker_cooldown,
            on_transition=self._note_breaker_transition,
        )
        self._retries = 0
        self._sweep_timeouts = 0
        self._isolations = 0
        self._degraded = 0
        self._cache_errors = 0
        self._rejected_closed = 0
        # Durable serving store (optional).  Opened after the fault plan is
        # activated so chaos drills can poison the open itself; store trouble
        # degrades serving to in-memory-only behavior and never raises into
        # construction or requests.  On a warm restart the cost model is
        # seeded from persisted history here, and the registry listeners
        # catalog loads/evictions and backfill still-valid cached results.
        self._store: ServingStore | None = None
        if self.config.store_path is not None:
            self._store = ServingStore(
                self.config.store_path,
                flush_interval=self.config.store_flush_interval,
                on_event=self._note_store_event,
            )
            seeded = self._costmodel.seed(self._store.load_cost_seed())
            if seeded:
                logger.info(
                    "cost model warm-started from store history (%d families)",
                    seeded,
                )
            self.registry.add_load_listener(self._on_graph_load)
            self.registry.add_evict_listener(self._on_graph_evict)
        self._started_at = time.perf_counter()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def with_datasets(
        cls,
        symbols: Iterable[str],
        config: ServiceConfig | None = None,
        system: SystemConfig | None = None,
        **load_kwargs,
    ) -> "Service":
        """Build a service pre-registered with Table 2 dataset analogs."""
        service = cls(config=config, system=system)
        for symbol in symbols:
            service.registry.register_dataset(symbol, **load_kwargs)
        return service

    def _graph_size(self, name: str) -> tuple[int, int] | None:
        """(vertices, edges) of a *resident* graph for cost bootstrapping."""
        graph = self.registry.peek(name)
        if graph is None:
            return None
        return graph.num_vertices, graph.num_edges

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def _init_metrics(self) -> None:
        """Pre-register every always-on metric series (cheap counter bumps)."""
        m = self._metrics
        window = self.config.latency_window
        self._m_submitted = m.counter(
            "repro_requests_submitted_total", "Accepted submit() calls."
        )
        self._m_outcomes = m.counter(
            "repro_requests_total",
            "Requests by terminal outcome (completed / failed / expired).",
            ("outcome",),
        )
        self._m_dedup = m.counter(
            "repro_requests_deduplicated_total",
            "Submissions coalesced onto an identical in-flight job.",
        )
        self._m_cache_served = m.counter(
            "repro_requests_cache_served_total",
            "Submissions answered from the result cache without execution.",
        )
        self._m_rejected = m.counter(
            "repro_requests_rejected_total",
            "Submissions refused by admission control, by reason.",
            ("reason",),
        )
        self._m_latency = m.summary(
            "repro_request_latency_seconds",
            "End-to-end request latency (submission to completion).",
            window=window,
        )
        self._m_wait = m.summary(
            "repro_queue_wait_seconds",
            "Queueing delay before execution started.",
            window=window,
        )
        self._m_batches = m.counter(
            "repro_batches_total", "Batch groups drained by workers."
        )
        self._m_executions = m.counter(
            "repro_executions_total", "Engine invocations (jobs actually run)."
        )
        self._m_engine_seconds = m.counter(
            "repro_engine_seconds_total", "Wall-clock seconds spent inside engines."
        )
        self._m_deadlines = m.counter(
            "repro_deadlines_total",
            "Deadline-carrying waiter outcomes (met / missed).",
            ("result",),
        )
        self._m_cost_error = m.summary(
            "repro_costmodel_abs_error_seconds",
            "Cost model |predicted - actual| engine seconds per observation.",
            window=window,
        )
        self._m_cost_observations = m.counter(
            "repro_costmodel_observations_total",
            "Group executions scored against the cost model.",
        )
        self._m_kernel_iterations = m.counter(
            "repro_kernel_iterations_total",
            "Traversal iterations (simulated kernel launches), per application.",
            ("app",),
        )
        self._m_kernel_vertices = m.counter(
            "repro_kernel_frontier_vertices_total",
            "Frontier vertices expanded by engine sweeps, per application.",
            ("app",),
        )
        self._m_kernel_edges = m.counter(
            "repro_kernel_edges_total",
            "Edges relaxed/scanned by engine sweeps, per application.",
            ("app",),
        )
        self._m_kernel_candidates = m.counter(
            "repro_kernel_relax_candidates_total",
            "(lane, edge) candidates fed to the lane relax kernel, per application.",
            ("app",),
        )
        self._m_kernel_backend = m.counter(
            "repro_kernel_backend_total",
            "Engine executions per chosen relax backend.",
            ("app", "backend"),
        )
        self._m_retries = m.counter(
            "repro_retries_total",
            "Backoff retries of transient graph-load / sweep failures, by site.",
            ("site",),
        )
        self._m_sweep_timeouts = m.counter(
            "repro_sweep_timeouts_total",
            "Sweeps cancelled by the cooperative iteration-boundary watchdog.",
        )
        self._m_isolations = m.counter(
            "repro_fused_isolations_total",
            "Fused groups re-executed member-by-member after a group failure.",
        )
        self._m_degraded = m.counter(
            "repro_native_degraded_total",
            "Sweeps served by the numpy relax backend under an open/tripping breaker.",
        )
        self._m_breaker_transitions = m.counter(
            "repro_native_breaker_transitions_total",
            "Native-backend circuit breaker transitions, by new state.",
            ("state",),
        )
        self._m_faults = m.counter(
            "repro_faults_injected_total",
            "Faults fired by the active injection plan, by site.",
            ("site",),
        )
        self._m_cache_errors = m.counter(
            "repro_cache_errors_total",
            "Result-cache failures absorbed by the service, by operation.",
            ("op",),
        )
        self._m_rejected_closed = m.counter(
            "repro_rejected_after_close_total",
            "Submissions refused because the service was already closed.",
        )
        self._m_queue_fallback = m.counter(
            "repro_queue_policy_fallback_total",
            "Drains where the policy named a non-pending group and the queue "
            "fell back to arrival order.",
        )
        self._m_plans_built = m.counter(
            "repro_planner_plans_built_total",
            "Candidate fusion plans enumerated across all drains.",
        )
        self._m_plans_chosen = m.counter(
            "repro_planner_plans_chosen_total",
            "Plans selected for execution, by plan kind.",
            ("kind",),
        )
        self._m_plans_rejected = m.counter(
            "repro_planner_plans_rejected_total",
            "Candidate plans scored but not selected.",
        )
        self._m_packed_lanes = m.counter(
            "repro_planner_packed_lanes_total",
            "Lanes executed inside chosen fused (packed/streaming) plans.",
        )
        self._m_plan_savings = m.summary(
            "repro_planner_estimated_savings_seconds",
            "Estimated solo-minus-shared engine seconds of each chosen plan.",
            window=window,
        )
        self._m_store_ops = m.counter(
            "repro_store_operations_total",
            "Durable-store operations (open/read/write/checkpoint), by outcome.",
            ("op", "outcome"),
        )
        self._m_store_hits = m.counter(
            "repro_store_hits_total",
            "Requests answered from the persistent result cache.",
        )
        self._m_store_flushes = m.counter(
            "repro_store_flushes_total",
            "Write-through batches committed by the store flush thread.",
        )
        self._m_store_dropped = m.counter(
            "repro_store_dropped_writes_total",
            "Pending store writes dropped because the flush queue was full.",
        )
        self._m_store_breaker = m.counter(
            "repro_store_breaker_transitions_total",
            "Durable-store circuit breaker transitions, by new state.",
            ("state",),
        )

    def _note_store_event(self, kind: str, labels: dict) -> None:
        """Store event hook: map store activity onto the metric series."""
        if kind == "op":
            self._m_store_ops.inc(
                op=labels.get("op", "unknown"),
                outcome=labels.get("outcome", "unknown"),
            )
        elif kind == "hit":
            self._m_store_hits.inc()
        elif kind == "flush":
            self._m_store_flushes.inc()
        elif kind == "drop":
            self._m_store_dropped.inc()
        elif kind == "breaker":
            state = labels.get("state", "unknown")
            self._m_store_breaker.inc(state=state)
            logger.warning("durable store circuit breaker -> %s", state)

    def _on_graph_load(self, name: str, graph: CSRGraph) -> None:
        """Registry listener: catalog the load, backfill still-valid results.

        Runs on the loading thread right after a load completes (outside
        every registry lock) — the one place a graph's content fingerprint
        is in hand, so stale persistent-cache rows are purged here and the
        still-valid ones re-installed into the in-memory cache for
        memory-speed warm-restart repeats.
        """
        store = self._store
        if store is None:
            return
        for key, result in store.record_load(name, graph):
            self._cache_put_memory_safe(key, result)

    def _on_graph_evict(self, name: str) -> None:
        store = self._store
        if store is not None:
            store.record_eviction(name)

    def _note_fault(self, site: str) -> None:
        """Fault-plan listener: export every injected fault as a counter bump."""
        self._m_faults.inc(site=site)

    def _note_policy_fallback(self) -> None:
        """Queue hook: count arrival-order fallbacks after a policy misfire.

        Called under the queue lock before ``_init_metrics`` may have run
        (the queue is constructed first), so the counter access is guarded.
        """
        self._policy_fallbacks += 1
        counter = getattr(self, "_m_queue_fallback", None)
        if counter is not None:
            counter.inc()

    def _note_breaker_transition(self, state: str) -> None:
        self._m_breaker_transitions.inc(state=state)
        logger.warning("native relax backend circuit breaker -> %s", state)

    @property
    def metrics(self) -> MetricsRegistry:
        """The live metrics registry (always-on counters and summaries)."""
        return self._metrics

    @property
    def store(self) -> ServingStore | None:
        """The durable serving store, or ``None`` when durability is off."""
        return self._store

    def collect_metrics(self) -> MetricsRegistry:
        """Refresh the point-in-time gauges from :meth:`stats` and return the registry."""
        snapshot = self.stats()
        m = self._metrics
        m.gauge("repro_pending_jobs", "Jobs queued, not yet picked up.").set(
            snapshot.pending
        )
        m.gauge("repro_active_workers", "Worker tasks queued or running.").set(
            snapshot.active_workers
        )
        m.gauge("repro_uptime_seconds", "Seconds since service construction.").set(
            snapshot.uptime_seconds
        )
        m.gauge("repro_cache_entries", "Results held by the result cache.").set(
            snapshot.cache.entries
        )
        m.gauge("repro_cache_hit_rate", "Result cache hit rate in [0, 1].").set(
            snapshot.cache.hit_rate
        )
        m.gauge(
            "repro_costmodel_mean_abs_error_seconds",
            "Lifetime mean absolute cost-model estimate error.",
        ).set(snapshot.cost_model.mean_abs_error_seconds)
        m.gauge(
            "repro_trace_buffered_spans", "Spans waiting in the trace ring buffer."
        ).set(len(self._tracer))
        m.gauge(
            "repro_native_breaker_state",
            "Native relax breaker state (0=closed, 1=half_open, 2=open).",
        ).set(BREAKER_STATE_CODES[snapshot.breaker_state])
        m.gauge(
            "repro_store_state",
            "Durable-store state (0=ok, 1=degraded, 2=quarantined, 3=disabled).",
        ).set(STORE_STATE_CODES.get(snapshot.store_state, 3))
        m.gauge(
            "repro_store_pending_writes",
            "Store writes queued for the flush thread.",
        ).set(snapshot.store_pending)
        return m

    def drain_traces(self) -> list[dict]:
        """Return and clear the buffered spans as JSON-ready dicts (oldest first)."""
        return [span.to_json() for span in self._tracer.drain()]

    def _observe_cost(self, family, jobs: int, seconds: float) -> None:
        """Feed the cost model and export the estimate error as a series."""
        error = self._costmodel.observe(family, jobs, seconds)
        if error is not None:
            self._m_cost_error.observe(error)
            self._m_cost_observations.inc()
            store = self._store
            if store is not None:
                # Persist the family's post-observation EWMA state so a
                # restarted service seeds admission estimates from history
                # instead of the size-based bootstrap.
                state = self._costmodel.family_state(family)
                if state is not None:
                    store.enqueue_cost(family, state)

    def _record_kernel_counters(self, app: str, metrics_list) -> str | None:
        """Aggregate engine-level counters into the registry; returns the backend."""
        backend = None
        for metrics in metrics_list:
            counters = getattr(metrics, "counters", None)
            if counters is None:
                continue
            if counters.iterations:
                self._m_kernel_iterations.inc(counters.iterations, app=app)
            if counters.frontier_vertices:
                self._m_kernel_vertices.inc(counters.frontier_vertices, app=app)
            if counters.edges_traversed:
                self._m_kernel_edges.inc(counters.edges_traversed, app=app)
            if counters.relax_candidates:
                self._m_kernel_candidates.inc(counters.relax_candidates, app=app)
            if counters.relax_backend:
                backend = counters.relax_backend
                self._m_kernel_backend.inc(app=app, backend=backend)
        return backend

    def _note_family_counters(self, family, metrics_list) -> None:
        """Feed one family's per-sweep iteration count to the cost model.

        The planner's shared-cost estimate scales with how long the slowest
        fused lane iterates, so the model keeps a per-family iterations EWMA
        next to its seconds EWMAs.  Lanes of one family report the same sweep,
        hence ``max`` rather than a sum.
        """
        iterations = 0
        for metrics in metrics_list:
            counters = getattr(metrics, "counters", None)
            if counters is not None and counters.iterations:
                iterations = max(iterations, counters.iterations)
        if iterations:
            self._costmodel.note_counters(family, iterations)

    def _emit_sweep_span(
        self,
        jobs: list[Job],
        started: float,
        elapsed: float,
        lanes: int,
        kind: str,
        schedule_seconds: float = 0.0,
        fusion_seconds: float = 0.0,
        metrics_list=(),
        error: BaseException | None = None,
    ) -> str | None:
        """Emit one shared ``engine_sweep`` span and link every rider to it.

        All jobs executed by one engine invocation (a multi-source word, a
        fused streaming pass, or a solo run) share a single sweep span;
        each job's own ``sweep`` lifecycle span will carry this span's id as
        ``sweep_ref`` plus its sibling/lane context, which is how "my request
        rode a 64-lane word with 31 siblings" stays answerable per trace.
        """
        sweep_id = None
        if self._tracer.enabled and any(job.trace_id is not None for job in jobs):
            sweep_id = f"sweep-{next(self._sweep_ids)}"
            request = jobs[0].request
            attrs = {
                "kind": kind,
                "graph": request.graph,
                "application": request.application.value,
                "jobs": len(jobs),
                "lanes": lanes,
                "schedule_seconds": schedule_seconds,
                "fusion_seconds": fusion_seconds,
            }
            iterations = edges = candidates = 0
            backend = None
            for metrics in metrics_list:
                counters = getattr(metrics, "counters", None)
                if counters is None:
                    continue
                iterations += counters.iterations
                edges += counters.edges_traversed
                candidates += counters.relax_candidates
                backend = counters.relax_backend or backend
            if iterations:
                attrs["kernel_iterations"] = iterations
                attrs["kernel_edges"] = edges
            if candidates:
                attrs["relax_candidates"] = candidates
            if backend:
                attrs["relax_backend"] = backend
            if error is not None:
                attrs["error"] = type(error).__name__
            self._tracer.emit(
                Span(
                    trace_id=sweep_id,
                    span_id=sweep_id,
                    name="engine_sweep",
                    start_unix=jobs[0].wall_clock(started),
                    duration_seconds=elapsed,
                    attributes=attrs,
                )
            )
        for job in jobs:
            job.sweep_ref = sweep_id
            job.sweep_siblings = len(jobs) - 1
            job.sweep_lanes = lanes
        return sweep_id

    def _build_job_spans(self, job: Job) -> list[Span]:
        """Build the four tiling lifecycle spans of one finished, traced job.

        The stage boundaries all come from the job's ``perf_counter``
        timeline — admission ends at ``enqueued_at``, queueing at
        ``started_at``, the sweep at ``compute_finished_at`` — so the four
        durations sum *exactly* to the measured end-to-end latency; missing
        boundaries (failures, cache hits) collapse their stage to zero
        instead of breaking the tiling.
        """
        submitted = job.submitted_at
        finished = job.finished_at if job.finished_at is not None else submitted

        def clamp(value: float | None, lo: float) -> float:
            if value is None:
                return lo
            return min(max(value, lo), finished)

        enqueued = clamp(job.enqueued_at, submitted)
        started = clamp(job.started_at, enqueued)
        compute = clamp(job.compute_finished_at, started)
        request = job.request
        if job.status is JobStatus.DONE:
            outcome = "completed"
        elif isinstance(job.error, DeadlineExceededError):
            outcome = "expired"
        else:
            outcome = "failed"
        trace_id = job.trace_id
        common = {"job_id": job.job_id}
        admission_attrs = {
            **common,
            "application": request.application.value,
            "graph": request.graph,
            "source": request.source,
            "tenant": request.tenant,
            "outcome": outcome,
            "from_cache": job.from_cache,
            "latency_seconds": finished - submitted,
        }
        sweep_attrs = {
            **common,
            "siblings": job.sweep_siblings,
            "lanes": job.sweep_lanes,
            "from_cache": job.from_cache,
        }
        if job.sweep_ref is not None:
            sweep_attrs["sweep_ref"] = job.sweep_ref
        stages = (
            ("admission", submitted, enqueued, admission_attrs),
            ("queue", enqueued, started, {**common, "policy": self.config.policy}),
            ("sweep", started, compute, sweep_attrs),
            ("cache", compute, finished, {**common, "outcome": outcome}),
        )
        return [
            Span(
                trace_id=trace_id,
                span_id=self._tracer.next_span_id(),
                name=name,
                start_unix=job.wall_clock(begin),
                duration_seconds=end - begin,
                attributes=attrs,
            )
            for name, begin, end, attrs in stages
        ]

    # ------------------------------------------------------------------ #
    # Resilience helpers
    # ------------------------------------------------------------------ #
    def _cache_get_safe(self, key: tuple) -> TraversalResult | None:
        """Result-cache read that degrades to a miss instead of failing.

        The cache is an accelerator, never a correctness dependency: a
        request must not fail because its *shortcut* is broken.
        """
        try:
            result = self._cache.get(key)
        except Exception:  # noqa: BLE001 - cache faults degrade to a miss
            with self._lock:
                self._cache_errors += 1
            self._m_cache_errors.inc(op="get")
            logger.warning("result cache get failed; treating as miss", exc_info=True)
            return None
        if result is not None or self._store is None:
            return result
        # Memory missed: fall through to the persistent cache (fingerprint
        # validation happens inside the store's query; any store trouble is
        # absorbed into a miss).  A persistent hit is re-installed into the
        # in-memory cache so repeats stay at memory speed.
        result = self._store.lookup(key)
        if result is not None:
            self._cache_put_memory_safe(key, result)
        return result

    def _cache_put_memory_safe(self, key: tuple, result: TraversalResult) -> None:
        """In-memory-only cache fill (store backfills / persistent hits)."""
        try:
            self._cache.put(key, result)
        except Exception:  # noqa: BLE001 - cache faults drop the entry
            with self._lock:
                self._cache_errors += 1
            self._m_cache_errors.inc(op="put")
            logger.warning("result cache put failed; result not cached", exc_info=True)

    def _cache_put_safe(self, key: tuple, result: TraversalResult) -> None:
        """Result-cache fill that drops the entry instead of failing the job.

        With a durable store attached the result also writes through —
        asynchronously, off the request hot path: the store's flush thread
        picks it up from a bounded queue and tags it with the graph's
        catalog fingerprint.
        """
        self._cache_put_memory_safe(key, result)
        store = self._store
        if store is not None:
            store.enqueue_result(key, result)

    def _check_job_fault(self, job: Job) -> None:
        """Arm the per-job ``worker.task`` injection site with match context."""
        faults.check(
            "worker.task",
            job=job.job_id,
            graph=job.request.graph,
            app=job.request.application.value,
            source=job.request.source,
            tenant=job.request.tenant,
        )

    @staticmethod
    def _group_deadline(jobs: list[Job]) -> float | None:
        """Earliest instant past which some member is useless to every waiter."""
        deadlines = [job.expire_at for job in jobs if job.expire_at is not None]
        return min(deadlines) if deadlines else None

    def _maybe_retry(
        self,
        site: str,
        jobs: list[Job],
        attempt: int,
        exc: BaseException,
        sweep_ref: str | None = None,
    ) -> bool:
        """Decide — and perform — one backoff sleep; True means re-run.

        Only :class:`~repro.errors.RetryableError` qualifies, the attempt
        budget is ``config.retry_limit`` per drained group, and the backoff
        is clipped to the group's nearest expiry: a retry that cannot even
        *start* before every waiter's budget lapses is not attempted.
        """
        if not isinstance(exc, RetryableError) or attempt >= self._retry_policy.limit:
            return False
        delay = self._retry_policy.delay(attempt, self._retry_rng)
        deadline = self._group_deadline(jobs)
        if deadline is not None and time.perf_counter() + delay >= deadline:
            return False
        with self._lock:
            self._retries += 1
        self._m_retries.inc(site=site)
        self._emit_retry_span(site, jobs, attempt, delay, exc, sweep_ref)
        logger.warning(
            "retrying %s for %d job(s) after %s (attempt %d, backoff %.3fs)",
            site, len(jobs), type(exc).__name__, attempt + 1, delay,
        )
        time.sleep(delay)
        return True

    def _emit_retry_span(
        self,
        site: str,
        jobs: list[Job],
        attempt: int,
        delay: float,
        exc: BaseException,
        sweep_ref: str | None,
    ) -> None:
        """Record one ``retry`` span (the backoff wait) on a traced waiter."""
        if not self._tracer.enabled:
            return
        traced = next((job for job in jobs if job.trace_id is not None), None)
        if traced is None:
            return
        attrs = {
            "site": site,
            "attempt": attempt + 1,
            "jobs": len(jobs),
            "error": type(exc).__name__,
            "backoff_seconds": delay,
        }
        if sweep_ref is not None:
            attrs["sweep_ref"] = sweep_ref
        self._tracer.emit(
            Span(
                trace_id=traced.trace_id,
                span_id=self._tracer.next_span_id(),
                name="retry",
                start_unix=traced.wall_clock(time.perf_counter()),
                duration_seconds=delay,
                attributes=attrs,
            )
        )

    def _sweep_token(self, family, width: int, label: str) -> Cancellation | None:
        """Watchdog token for one engine invocation, or None for no budget.

        An absolute ``config.sweep_timeout`` wins; otherwise the budget is
        ``sweep_timeout_multiplier`` x the cost model's group estimate — so
        the watchdog tightens as the model learns, and stays off for families
        the model has never seen (estimate 0 from an unsized graph).
        """
        budget = self.config.sweep_timeout
        if budget is None:
            multiplier = self.config.sweep_timeout_multiplier
            if multiplier is None:
                return None
            if self._costmodel.family_samples(family) == 0:
                # The multiplier watchdog waits for real samples: a size
                # bootstrap is an order-of-magnitude guess, easily tight
                # enough to cancel a perfectly healthy first-contact sweep.
                return None
            estimate = self._costmodel.estimate_group(family, width)
            if estimate <= 0:
                return None
            budget = multiplier * estimate
        return Cancellation(budget, label=label)

    def _relax_method(self) -> str | None:
        """Relaxation backend for this drain, as arbitrated by the breaker.

        ``None`` (engine default) when the native kernel never compiled —
        the breaker only arbitrates a backend that nominally works.  While
        closed (or probing half-open) the native kernel is used; while open,
        the bit-identical "scatter" numpy path serves degraded traffic.
        """
        if not _native.available():
            return None
        if self._breaker.allow():
            return "native"
        return "scatter"

    def _note_degraded(self) -> None:
        with self._lock:
            self._degraded += 1
        self._m_degraded.inc()

    def _classify_failure(self, exc: BaseException) -> None:
        """Bump failure-class counters for one terminal group/job failure."""
        if isinstance(exc, SweepTimeoutError):
            with self._lock:
                self._sweep_timeouts += 1
            self._m_sweep_timeouts.inc()

    def _job_runner(self, call: Callable) -> Callable:
        """Wrap a per-job engine call with the solo resilience ladder.

        Each attempt arms the ``worker.task`` fault site and runs under its
        own watchdog token; transient failures back off and re-run within
        the retry budget, everything else propagates to
        :meth:`_execute_one`'s job-level isolation.
        """

        def runner(job: Job) -> TraversalResult:
            attempt = 0
            while True:
                self._check_job_fault(job)
                token = self._sweep_token(job.request.batch_key, 1, "solo sweep")
                try:
                    with cancellation_scope(token):
                        return call(job)
                except Exception as exc:  # noqa: BLE001 - retry ladder
                    if self._maybe_retry("sweep", [job], attempt, exc):
                        attempt += 1
                        continue
                    raise

        return runner

    def _fail_group(self, jobs: list[Job], exc: BaseException, now: float) -> None:
        """Terminally fail every member of a fused group with ``exc``."""
        for job in jobs:
            job.compute_finished_at = now
        self._classify_failure(exc)
        with self._lock:
            self._executions += len(jobs)
            self._failed += len(jobs)
        self._m_executions.inc(len(jobs))
        for job in jobs:
            job.mark_failed(exc)
            self._queue.release(job)
        with self._lock:
            self._note_finished_locked(*jobs)

    def _isolate_group(
        self, jobs: list[Job], graph: CSRGraph, exc: BaseException, schedule_seconds: float
    ) -> None:
        """Fused-group fault isolation: re-execute members one by one, solo.

        A poisoned lane then fails alone — with the *member's* error, not the
        group's — while its siblings complete with results bit-identical to
        what the fused pass would have produced.
        """
        with self._lock:
            self._isolations += 1
        self._m_isolations.inc()
        logger.warning(
            "fused %d-job group on %s failed (%s: %s); re-executing members solo",
            len(jobs), graph.name, type(exc).__name__, exc,
        )
        runner = self._job_runner(lambda job: self._run_leased(job.request, graph))
        for job in jobs:
            self._execute_one(job, graph, runner, schedule_seconds=schedule_seconds)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, request: TraversalRequest) -> Job:
        """Accept a request and return the job that will (or did) answer it.

        The returned job may be shared with earlier clients (deduplication)
        or already complete (result-cache hit); callers should treat it as
        read-only and collect the answer through :meth:`result`.

        Raises :class:`~repro.errors.AdmissionError` when the pending queue
        is at ``config.queue_limit`` or the request's tenant is at
        ``config.tenant_quota``, and (with ``config.reject_infeasible``) its
        :class:`~repro.errors.InfeasibleDeadlineError` subclass when the cost
        model predicts a deadline-carrying request cannot finish within its
        budget.  Submissions that join an in-flight job or hit the result
        cache consume no queue capacity and are always admitted.
        """
        if request.graph not in self.registry:
            # Fail fast at the front door: a typo'd graph name should not
            # consume a worker slot before being rejected.
            self.registry.get(request.graph)  # raises UnknownGraphError
        request = request.with_system(request.system or self.system)

        # The closed check, the dedup/cache/enqueue step and the worker
        # wakeup all happen under one admission lock, making submission
        # atomic with respect to close(): once close() has set the flag, no
        # job can slip into the queue or the pool behind it.
        with self._admission_lock:
            if self._closed:
                with self._lock:
                    self._rejected_closed += 1
                self._m_rejected_closed.inc()
                raise ServiceClosedError("service is closed")
            job = Job(job_id=f"job-{next(self._job_ids)}", request=request)
            job.trace_id = self._tracer.begin()
            # The dedup-index lookup, cache lookup, admission checks and
            # enqueue are one atomic step (see RequestQueue.push_or_join),
            # so while the cache retains the entry an identical request is
            # answered by exactly one execution no matter how submissions
            # interleave.
            try:
                outcome, payload = self._queue.push_or_join(
                    job,
                    cache_lookup=self._cache_get_safe,
                    queue_limit=self.config.queue_limit,
                    tenant_quota=self.config.tenant_quota,
                    reject_infeasible=self.config.reject_infeasible,
                    workers=self.config.max_workers,
                )
            except AdmissionError as exc:
                with self._lock:
                    self._rejected += 1
                    if isinstance(exc, InfeasibleDeadlineError):
                        self._rejected_infeasible += 1
                self._m_rejected.inc(
                    reason="infeasible"
                    if isinstance(exc, InfeasibleDeadlineError)
                    else "admission"
                )
                raise
            with self._lock:
                self._submitted += 1
            self._m_submitted.inc()
            if outcome == "joined":
                with self._lock:
                    self._deduplicated += 1
                self._m_dedup.inc()
                return payload
            if outcome == "cached":
                # Stage boundaries for the trace: admission ends now, the
                # sweep is zero-width (no engine ran), and the remainder is
                # completion bookkeeping.
                job.enqueued_at = time.perf_counter()
                job.mark_done(payload, from_cache=True)
                job.compute_finished_at = job.started_at
                self._m_cache_served.inc()
                with self._lock:
                    self._completed += 1
                    self._jobs[job.job_id] = job
                    self._note_finished_locked(job)  # also enforces retention
                return job
            job.enqueued_at = time.perf_counter()
            with self._lock:
                self._jobs[job.job_id] = job
                if job.done:
                    # A worker raced ahead and finished the job before this
                    # insert: its _note_finished_locked saw the id missing
                    # from _jobs and skipped the entry, so make it here or
                    # the job would be unprunable forever.
                    self._mark_prunable_locked(job)
                self._prune_finished_jobs()
            try:
                self._pool.submit(self._drain_one_batch)
            except ServiceError as exc:
                # Defensive only: with the admission lock held, close()
                # cannot race this dispatch, so the pool refusing means it
                # failed for its own reasons.  Withdraw the job so nobody
                # blocks forever on a wakeup that will never come; if a
                # worker already grabbed it, that worker owns its completion.
                if self._queue.discard(job):
                    job.mark_failed(exc)
                    with self._lock:
                        self._failed += 1
                        self._note_finished_locked(job)
            return job

    def submit_many(self, requests: Iterable[TraversalRequest]) -> list[Job]:
        return [self.submit(request) for request in requests]

    def _prune_finished_jobs(self) -> None:
        """Drop the oldest finished jobs beyond the retention bound.

        Caller holds ``self._lock``.  Keeps the server's memory bounded on
        long-running deployments: pruned jobs are no longer reachable via
        :meth:`job`/:meth:`result`-by-id, but Job objects already handed to
        clients keep working, and reusable results live on in the result
        cache.  The retention bound applies to *finished* jobs only, exactly
        as :attr:`ServiceConfig.job_retention` promises: unfinished jobs are
        never pruned, never scanned (the finished-order deque makes a deep
        unfinished backlog cost O(1) here), and never crowd freshly finished
        jobs out of the table.
        """
        excess = len(self._finished_order) - self.config.job_retention
        while excess > 0 and self._finished_order:
            self._jobs.pop(self._finished_order.popleft(), None)
            excess -= 1

    def _mark_prunable_locked(self, job: Job) -> None:
        """Enter a finished, table-resident job into the pruning order once.

        Caller holds ``self._lock``; ``retention_noted`` keeps the deque and
        the finished-job count exact even when the completion racing with the
        submit-side insert makes both sides try the entry.
        """
        if not job.retention_noted:
            job.retention_noted = True
            self._finished_order.append(job.job_id)

    def _note_finished_locked(self, *jobs: Job) -> None:
        """Record latency samples and deadline outcomes for finished jobs.

        Caller holds ``self._lock``.  Every path that moves a job to a
        terminal state funnels through here so the percentile window and the
        deadline hit counters see cache hits, failures and expiries alike.
        Deadlines are judged per *waiter*: a deduplicated job carrying both a
        tight and a patient budget can count one miss and one met.
        """
        spans: list[Span] = []
        for job in jobs:
            wait = job.wait_seconds
            if wait is not None:
                self._wait_samples.append(wait)
                self._m_wait.observe(wait)
            total = job.total_seconds
            if total is not None:
                self._latency_samples.append(total)
                self._m_latency.observe(total)
            if job.job_id in self._jobs:
                self._mark_prunable_locked(job)
            # Per-tenant breakdown, attributed to the job's owning tenant
            # (the first submitter; joined duplicates ride along): completed
            # jobs, and deadline-carrying jobs that blew their tightest
            # budget (late, failed or expired).
            tenant = job.request.tenant
            if job.status is JobStatus.DONE:
                self._tenant_completed[tenant] = (
                    self._tenant_completed.get(tenant, 0) + 1
                )
                self._m_outcomes.inc(outcome="completed")
            elif isinstance(job.error, DeadlineExceededError):
                self._m_outcomes.inc(outcome="expired")
            else:
                self._m_outcomes.inc(outcome="failed")
            if job.met_deadline is False:
                self._tenant_missed[tenant] = self._tenant_missed.get(tenant, 0) + 1
            finished_at = job.finished_at
            for deadline_at in job.deadline_waiters:
                if (
                    job.status is JobStatus.DONE
                    and finished_at is not None
                    and finished_at <= deadline_at
                ):
                    self._deadlines_met += 1
                    self._m_deadlines.inc(result="met")
                else:
                    self._deadlines_missed += 1
                    self._m_deadlines.inc(result="missed")
            # Terminal state is the one point every lifecycle funnels
            # through, so sampled jobs emit their tiling spans here.
            if job.trace_id is not None and self._tracer.enabled:
                spans.extend(self._build_job_spans(job))
        if spans:
            self._tracer.emit_many(spans)
        # Enforce the retention bound at completion time, not merely at the
        # next submit, so an idle server does not hold extra finished jobs.
        self._prune_finished_jobs()

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise JobNotFoundError(f"no such job: {job_id!r}") from None

    def result(self, job: Job | str, timeout: float | None = None) -> TraversalResult:
        """Block until a job finishes and return (or raise) its outcome."""
        if isinstance(job, str):
            job = self.job(job)
        if not job.wait(timeout):
            raise ServiceError(
                f"timed out after {timeout}s waiting for {job.job_id} "
                f"({job.request.describe()})"
            )
        if job.status is JobStatus.FAILED:
            raise JobFailedError(
                f"{job.job_id} failed: {job.request.describe()}", job_id=job.job_id
            ) from job.error
        assert job.result is not None
        return job.result

    def wait_all(self, timeout: float | None = None) -> bool:
        """Wait for every job submitted so far; False if the deadline passed."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            remaining = None if deadline is None else deadline - time.perf_counter()
            if remaining is not None and remaining <= 0:
                return False
            if not job.wait(remaining):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Execution (runs on worker threads)
    # ------------------------------------------------------------------ #
    def _drain_one_batch(self) -> None:
        """One worker wakeup: pick work, drain it, never strand a job.

        On the built-in engine path with planning enabled the pick is a
        whole :class:`~repro.service.planner.FusionPlan` — the policy-
        selected anchor group plus whatever compatible backlog the planner
        decided should ride along.  With an injected engine or
        ``config.planner`` off, the pick is the classic single group.

        The catch-alls exist because the future this runs in is never
        awaited — an exception escaping a drain would strand every popped
        job (each waiter blocking until its timeout) while the worker moved
        on.  Jobs the inner path already finished keep their outcome; the
        rest fail with the escaped error.
        """
        pick_started = time.perf_counter()
        use_planner = self._engine is None and self.config.planner
        try:
            if use_planner:
                popped = self._queue.pop_plan(self._build_plan)
            else:
                batch = self._queue.pop_batch()
        except Exception:  # noqa: BLE001 - keep the drain loop alive
            logger.exception("scheduler failed to pick a batch group")
            return
        # Schedule-pick cost: policy selection plus (on the planner path)
        # plan enumeration, attributed to the drained batch's sweep span.
        schedule_seconds = time.perf_counter() - pick_started
        if use_planner:
            if popped is None:
                # Another worker already drained the group this wakeup was for.
                return
            plan, claimed = popped
            plan.restrict(claimed)
            try:
                self._execute_plan(plan, schedule_seconds)
            except Exception as exc:  # noqa: BLE001 - never strand popped jobs
                logger.exception("plan execution failed outside job-level isolation")
                self._fail_stranded(plan.jobs, exc)
            return
        if not batch:
            return
        try:
            self._drain_batch(batch, schedule_seconds)
        except Exception as exc:  # noqa: BLE001 - never strand popped jobs
            logger.exception("batch drain failed outside job-level isolation")
            self._fail_stranded(batch, exc)

    def _fail_stranded(self, jobs: list[Job], exc: BaseException) -> None:
        """Terminal backstop: fail every popped job the drain left unfinished."""
        stranded = [job for job in jobs if not job.done]
        for job in stranded:
            job.mark_failed(exc)
            self._queue.release(job)
        if stranded:
            with self._lock:
                self._failed += len(stranded)
                self._note_finished_locked(*stranded)

    def _build_plan(self, anchor: list[Job], snapshot: dict) -> tuple[FusionPlan, list]:
        """Queue callback: plan one drain and export the decision counters."""
        started = time.perf_counter()
        plan, rider_keys = self._planner.build(anchor, snapshot)
        plan.planning_seconds = time.perf_counter() - started
        self._m_plans_built.inc(plan.candidates_built)
        if plan.candidates_rejected:
            self._m_plans_rejected.inc(plan.candidates_rejected)
        self._m_plans_chosen.inc(kind=plan.kind)
        return plan, rider_keys

    def _execute_plan(self, plan: FusionPlan, schedule_seconds: float) -> None:
        """Execute one chosen fusion plan with full bookkeeping.

        Expiry filtering, batch accounting, the registry retry ladder and
        the plan-level observability (span + decision log) all live here;
        the per-shape executors below only run engines.
        """
        groups = []
        for group in plan.groups:
            live = self._fail_expired(group)
            if live:
                groups.append(live)  # repro: noqa[REPRO101] — O(groups) per drain
        if not groups:
            # Fully expired plans never reach an engine sweep, so they do
            # not count as batches — amortization stays executions-per-sweep.
            return
        plan.groups = groups
        if not plan.fused and plan.kind == "packed":
            # Expiry ate every rider; degrade the label to the real shape.
            plan.kind = FusionPlan._baseline_kind(plan.application, groups[0])
        with self._lock:
            # Ridden-along groups still count as drained batches so
            # amortization stays executions-per-sweep.
            self._batches += len(groups)
        self._m_batches.inc(len(groups))
        all_jobs = plan.jobs
        attempt = 0
        while True:
            try:
                graph = self.registry.get(plan.graph)
            except Exception as exc:  # noqa: BLE001 - retry, then every waiter
                if self._maybe_retry("registry", all_jobs, attempt, exc):
                    attempt += 1
                    continue
                for job in all_jobs:
                    job.mark_failed(exc)
                    self._queue.release(job)
                with self._lock:
                    self._failed += len(all_jobs)
                    self._note_finished_locked(*all_jobs)
                return
            break
        if plan.fused:
            self._m_packed_lanes.inc(plan.lanes)
            if plan.estimate is not None:
                self._m_plan_savings.observe(plan.estimate.savings_seconds)
        started = time.perf_counter()
        if plan.kind == "streaming":
            self._execute_streaming(plan, graph, schedule_seconds)
        elif plan.kind == "packed":
            self._execute_packed(plan, graph, schedule_seconds)
        else:
            self._execute_builtin(groups[0], graph, schedule_seconds)
        elapsed = time.perf_counter() - started
        self._emit_plan_span(plan, started, elapsed, schedule_seconds)
        self._note_plan_decision(plan, elapsed)

    def _emit_plan_span(
        self, plan: FusionPlan, started: float, elapsed: float, schedule_seconds: float
    ) -> None:
        """Record one ``plan`` span: chosen shape, estimated vs actual cost.

        Like ``engine_sweep`` spans, plan spans carry their own trace id —
        one plan serves many request traces, and the per-request lifecycle
        tiling (admission+queue+sweep+cache == latency) must stay exact.
        """
        if not self._tracer.enabled:
            return
        traced = next((job for job in plan.jobs if job.trace_id is not None), None)
        if traced is None:
            return
        plan_id = f"plan-{next(self._plan_ids)}"
        attrs = {
            "kind": plan.kind,
            "shape": plan.shape,
            "graph": plan.graph,
            "application": plan.application.value,
            "groups": len(plan.groups),
            "lanes": plan.lanes,
            "jobs": len(plan.jobs),
            "schedule_seconds": schedule_seconds,
            "planning_seconds": plan.planning_seconds,
            "actual_seconds": elapsed,
            "candidates_built": plan.candidates_built,
        }
        if plan.estimate is not None:
            attrs["estimated_shared_seconds"] = plan.estimate.shared_seconds
            attrs["estimated_solo_seconds"] = plan.estimate.solo_seconds
            attrs["estimated_savings_seconds"] = plan.estimate.savings_seconds
        self._tracer.emit(
            Span(
                trace_id=plan_id,
                span_id=plan_id,
                name="plan",
                start_unix=traced.wall_clock(started),
                duration_seconds=elapsed,
                attributes=attrs,
            )
        )

    def _note_plan_decision(self, plan: FusionPlan, elapsed: float) -> None:
        """Append one JSON-ready decision record to the bounded plan log."""
        estimate = plan.estimate
        decision = {
            "kind": plan.kind,
            "shape": plan.shape,
            "graph": plan.graph,
            "application": plan.application.value,
            "groups": len(plan.groups),
            "lanes": plan.lanes,
            "jobs": len(plan.jobs),
            "candidates_built": plan.candidates_built,
            "candidates_rejected": plan.candidates_rejected,
            "estimated_shared_seconds": (
                estimate.shared_seconds if estimate is not None else None
            ),
            "estimated_solo_seconds": (
                estimate.solo_seconds if estimate is not None else None
            ),
            "estimated_savings_seconds": (
                estimate.savings_seconds if estimate is not None else None
            ),
            "actual_seconds": elapsed,
        }
        with self._lock:
            self._plan_log.append(decision)

    def plan_decisions(self) -> list[dict]:
        """Recent fusion-plan decisions, oldest first (bounded ring buffer)."""
        with self._lock:
            return list(self._plan_log)

    def _drain_batch(self, batch: list[Job], schedule_seconds: float) -> None:
        batch = self._fail_expired(batch)
        if not batch:
            # Fully expired groups never reach an engine sweep, so they do
            # not count as batches — amortization stays executions-per-sweep.
            return
        with self._lock:
            self._batches += 1
        self._m_batches.inc()
        graph_name = batch[0].request.graph
        attempt = 0
        while True:
            try:
                graph = self.registry.get(graph_name)
            except Exception as exc:  # noqa: BLE001 - retry, then every waiter
                if self._maybe_retry("registry", batch, attempt, exc):
                    attempt += 1
                    continue
                for job in batch:
                    job.mark_failed(exc)
                    self._queue.release(job)
                with self._lock:
                    self._failed += len(batch)
                    self._note_finished_locked(*batch)
                return
            break
        if self._engine is None:
            self._execute_builtin(batch, graph, schedule_seconds)
            return
        runner = self._job_runner(lambda job: self._engine(job.request, graph))
        for job in batch:
            self._execute_one(job, graph, runner, schedule_seconds=schedule_seconds)

    def _fail_expired(self, batch: list[Job]) -> list[Job]:
        """Fail the jobs whose deadline lapsed in the queue; return the rest.

        Expiry is checked once per drained group, *before* execution: a
        request that can no longer be useful never occupies an engine, which
        is the whole point of deadline-aware scheduling under overload.
        """
        now = time.perf_counter()
        live: list[Job] = []
        expired: list[Job] = []
        for job in batch:
            # queue.expire decides AND retires the dedup entry atomically, so
            # a deadline-free duplicate racing this check either rescued the
            # job (expire_at cleared -> live) or re-executes on its own.
            (expired if self._queue.expire(job, now) else live).append(job)
        if not expired:
            return batch
        for job in expired:
            job.mark_failed(
                DeadlineExceededError(
                    f"{job.job_id} expired in queue: deadline was "
                    f"{job.request.deadline:g}s, waited "
                    f"{now - job.submitted_at:.3f}s ({job.request.describe()})"
                )
            )
        with self._lock:
            self._failed += len(expired)
            self._expired += len(expired)
            self._note_finished_locked(*expired)
        return live

    def _execute_one(
        self,
        job: Job,
        graph: CSRGraph,
        runner: Callable,
        schedule_seconds: float = 0.0,
    ) -> None:
        """Run one job with full bookkeeping and job-level failure isolation."""
        job.mark_running()
        started = time.perf_counter()
        try:
            result = runner(job)
        except Exception as exc:  # noqa: BLE001 - job-level isolation
            elapsed = time.perf_counter() - started
            job.compute_finished_at = started + elapsed
            self._emit_sweep_span(
                [job], started, elapsed, lanes=1, kind="solo",
                schedule_seconds=schedule_seconds, error=exc,
            )
            self._classify_failure(exc)
            # Counters first, completion signal second: a client that wakes
            # from result() must already see this job in the stats.
            with self._lock:
                self._executions += 1
                self._failed += 1
                self._engine_seconds += elapsed
            self._m_executions.inc()
            self._m_engine_seconds.inc(elapsed)
            job.mark_failed(exc)
        else:
            elapsed = time.perf_counter() - started
            job.compute_finished_at = started + elapsed
            result_metrics = (getattr(result, "metrics", None),)
            backend = self._record_kernel_counters(
                job.request.application.value, result_metrics
            )
            self._emit_sweep_span(
                [job], started, elapsed, lanes=1, kind="solo",
                schedule_seconds=schedule_seconds, metrics_list=result_metrics,
            )
            if backend is not None:
                logger.info(
                    "executed %s on %s in %.3fs (relax backend: %s)",
                    job.job_id, graph.name, elapsed, backend,
                )
            with self._lock:
                self._executions += 1
                self._completed += 1
                self._engine_seconds += elapsed
            self._m_executions.inc()
            self._m_engine_seconds.inc(elapsed)
            # Only successful runs feed the cost model: a failure can raise
            # long before any frontier sweep, and that near-zero timing says
            # nothing about what draining this family actually costs.
            self._observe_cost(job.request.batch_key, 1, elapsed)
            self._note_family_counters(job.request.batch_key, result_metrics)
            self._cache_put_safe(job.request.cache_key, result)
            job.mark_done(result)
        finally:
            # Release only after the cache holds the result, so identical
            # requests always find either the in-flight job or the cached
            # answer — and note only after the release, so no duplicate can
            # still join and mutate the waiter list mid-accounting.
            self._queue.release(job)
            with self._lock:
                self._note_finished_locked(job)

    def _execute_builtin(
        self, batch: list[Job], graph: CSRGraph, schedule_seconds: float = 0.0
    ) -> None:
        """Drain one batch group on the built-in engine path.

        BFS/SSSP groups with several distinct sources execute as ONE batched
        multi-source traversal over an arena-shared engine — each frontier
        sweep is paid once per group instead of once per job.  Everything
        else (streaming apps, singleton groups) runs per job against a
        leased engine, so the engine construction is still amortized across
        the group.  Cross-group fusion is the planner's job
        (:meth:`_execute_plan`), not this method's.
        """
        runnable = []
        for job in batch:
            source = job.request.source
            # Pre-validate so one bad source fails its own job, never the
            # whole batch it happened to be grouped with.  A missing source
            # on a source-requiring application is just as poisonous to
            # run_batch as an out-of-range one, so both take the solo path
            # (where _run_leased raises for exactly these conditions).
            invalid = not job.request.application.is_streaming and (
                source is None or not 0 <= source < graph.num_vertices
            )
            if invalid:
                self._execute_one(
                    job,
                    graph,
                    self._job_runner(lambda job: self._run_leased(job.request, graph)),
                    schedule_seconds=schedule_seconds,
                )
            else:
                runnable.append(job)
        if not runnable:
            return
        request = runnable[0].request
        application = request.application
        if application.is_streaming or len(runnable) == 1:
            for job in runnable:
                self._execute_one(
                    job,
                    graph,
                    self._job_runner(lambda job: self._run_leased(job.request, graph)),
                    schedule_seconds=schedule_seconds,
                )
            return

        for job in runnable:
            job.mark_running()
        relax_method = self._relax_method()
        if relax_method == "scatter":
            # Breaker already open: the whole drain is served degraded.
            self._note_degraded()
        attempt = 0
        while True:
            started = time.perf_counter()
            token = self._sweep_token(
                request.batch_key, len(runnable), "multisource sweep"
            )
            try:
                for job in runnable:
                    self._check_job_fault(job)
                with cancellation_scope(token):
                    outcome = run_batch(
                        application,
                        graph,
                        [job.request.source for job in runnable],
                        strategy=request.strategy,
                        system=request.system,
                        arena=self._arena,
                        relax_method=relax_method,
                    )
            except Exception as exc:  # noqa: BLE001 - resilience ladder below
                elapsed = time.perf_counter() - started
                with self._lock:
                    self._engine_seconds += elapsed
                self._m_engine_seconds.inc(elapsed)
                sweep_ref = self._emit_sweep_span(
                    runnable, started, elapsed, lanes=len(runnable),
                    kind="multisource", schedule_seconds=schedule_seconds,
                    error=exc,
                )
                if isinstance(exc, NativeBackendError) and relax_method == "native":
                    # Breaker ladder: count the failure (opening the breaker
                    # at the threshold) and immediately re-run this drain on
                    # the bit-identical numpy backend — the clients see the
                    # same values, just a slower sweep.
                    self._breaker.record_failure()
                    relax_method = "scatter"
                    self._note_degraded()
                    logger.warning(
                        "native relax kernel failed (%s); re-running drain "
                        "on the scatter backend", exc,
                    )
                    continue
                if self._maybe_retry("sweep", runnable, attempt, exc, sweep_ref):
                    attempt += 1
                    continue
                if len(runnable) > 1:
                    self._isolate_group(runnable, graph, exc, schedule_seconds)
                    return
                self._fail_group(runnable, exc, started + elapsed)
                return
            break
        if relax_method == "native":
            self._breaker.record_success()
        elapsed = time.perf_counter() - started
        now = started + elapsed
        for job in runnable:
            job.compute_finished_at = now
        # One shared sweep span for the whole word: every rider's per-request
        # sweep span will point at it via sweep_ref.
        self._emit_sweep_span(
            runnable, started, elapsed, lanes=len(runnable), kind="multisource",
            schedule_seconds=schedule_seconds, metrics_list=outcome.batch_metrics,
        )
        backend = self._record_kernel_counters(
            application.value, outcome.batch_metrics
        )
        logger.info(
            "drained %d %s job(s) on %s in %.3fs (relax backend: %s)",
            len(runnable), application.value, graph.name, elapsed,
            backend or "n/a",
        )
        with self._lock:
            self._executions += len(runnable)
            self._completed += len(runnable)
            self._engine_seconds += elapsed
        self._m_executions.inc(len(runnable))
        self._m_engine_seconds.inc(elapsed)
        # One observation per drained group: width + wall-clock seconds is
        # exactly the (per-sweep, per-job) sample the cost model EWMAs want.
        self._observe_cost(request.batch_key, len(runnable), elapsed)
        self._note_family_counters(request.batch_key, outcome.batch_metrics)
        for job, result in zip(runnable, outcome.results):
            self._cache_put_safe(job.request.cache_key, result)
            job.mark_done(result)
            self._queue.release(job)
        with self._lock:
            self._note_finished_locked(*runnable)

    def _execute_streaming(
        self, plan: FusionPlan, graph: CSRGraph, schedule_seconds: float = 0.0
    ) -> None:
        """Drain a streaming plan: one shared algorithm pass, many lanes.

        The algorithm pass is engine-independent, so one
        :func:`~repro.traversal.streaming.run_streaming_batch` serves every
        group the planner fused — each group becomes one (strategy, system)
        lane with its own arena-leased engine, and each job receives its own
        lane's result (values shared, metrics per platform, both identical
        to a solo run's).  Works for CC and PageRank alike.
        """
        groups = plan.groups
        application = plan.application
        lanes = [(group[0].request.strategy, group[0].request.system) for group in groups]
        all_jobs = plan.jobs
        for job in all_jobs:
            job.mark_running()
        attempt = 0
        while True:
            started = time.perf_counter()
            token = self._sweep_token(
                groups[0][0].request.batch_key, len(all_jobs), "streaming sweep"
            )
            try:
                for job in all_jobs:
                    self._check_job_fault(job)
                with cancellation_scope(token):
                    outcome = run_streaming_batch(
                        application, graph, lanes, arena=self._arena
                    )
            except Exception as exc:  # noqa: BLE001 - resilience ladder below
                elapsed = time.perf_counter() - started
                with self._lock:
                    self._engine_seconds += elapsed
                self._m_engine_seconds.inc(elapsed)
                sweep_ref = self._emit_sweep_span(
                    all_jobs, started, elapsed, lanes=len(groups), kind="streaming",
                    schedule_seconds=schedule_seconds,
                    fusion_seconds=plan.planning_seconds, error=exc,
                )
                if self._maybe_retry("sweep", all_jobs, attempt, exc, sweep_ref):
                    attempt += 1
                    continue
                if len(all_jobs) > 1:
                    self._isolate_group(all_jobs, graph, exc, schedule_seconds)
                    return
                self._fail_group(all_jobs, exc, started + elapsed)
                return
            break
        elapsed = time.perf_counter() - started
        now = started + elapsed
        for job in all_jobs:
            job.compute_finished_at = now
        lane_metrics = [result.metrics for result in outcome.results]
        self._emit_sweep_span(
            all_jobs, started, elapsed, lanes=len(groups), kind="streaming",
            schedule_seconds=schedule_seconds, fusion_seconds=plan.planning_seconds,
            metrics_list=lane_metrics,
        )
        self._record_kernel_counters(application.value, lane_metrics)
        logger.info(
            "drained %d %s job(s) as %d fused lane(s) on %s in %.3fs",
            len(all_jobs), application.value, len(groups), graph.name, elapsed,
        )
        with self._lock:
            self._executions += len(all_jobs)
            self._completed += len(all_jobs)
            self._engine_seconds += elapsed
        self._m_executions.inc(len(all_jobs))
        self._m_engine_seconds.inc(elapsed)
        # Each fused group contributes one cost-model observation; the shared
        # wall-clock is split evenly across lanes (the engine sweeps dominate
        # and every lane sweeps the full stream).
        share = elapsed / len(groups)
        for group, result in zip(groups, outcome.results):
            self._observe_cost(group[0].request.batch_key, len(group), share)
            self._note_family_counters(group[0].request.batch_key, [result.metrics])
            for job in group:
                self._cache_put_safe(job.request.cache_key, result)
                job.mark_done(result)
                self._queue.release(job)
        with self._lock:
            self._note_finished_locked(*all_jobs)

    def _execute_packed(
        self, plan: FusionPlan, graph: CSRGraph, schedule_seconds: float = 0.0
    ) -> None:
        """Drain a packed plan: cross-config BFS/SSSP groups in one fused word.

        Every job becomes one lane of a single
        :func:`~repro.traversal.multisource.run_packed_batch` — lanes of one
        group share that group's engine, lanes of different groups run under
        their own platform configuration, and the union frontier sweep is
        paid once for all of them.  Values and per-lane attribution follow
        the same bit-identity contract as the plain multi-source word, and
        a failure anywhere isolates across the *whole* plan (solo re-runs),
        so a poisoned rider lane cannot take the anchor down with it.
        """
        solo_runner = self._job_runner(lambda job: self._run_leased(job.request, graph))
        groups: list[list[Job]] = []
        for group in plan.groups:
            runnable = []
            for job in group:
                source = job.request.source
                # Same pre-validation as the unfused path: one bad source
                # fails its own job solo, never the word it rode.
                if source is None or not 0 <= source < graph.num_vertices:
                    self._execute_one(
                        job, graph, solo_runner, schedule_seconds=schedule_seconds
                    )
                else:
                    runnable.append(job)
            if runnable:
                groups.append(runnable)  # repro: noqa[REPRO101] — O(groups) per drain
        if not groups:
            return
        plan.groups = groups
        if len(groups) == 1:
            self._execute_builtin(groups[0], graph, schedule_seconds)
            return
        application = groups[0][0].request.application
        all_jobs = [job for group in groups for job in group]
        lanes = [
            PackedLane(job.request.source, job.request.strategy, job.request.system)
            for job in all_jobs
        ]
        for job in all_jobs:
            job.mark_running()
        relax_method = self._relax_method()
        if relax_method == "scatter":
            # Breaker already open: the whole drain is served degraded.
            self._note_degraded()
        attempt = 0
        while True:
            started = time.perf_counter()
            token = self._sweep_token(
                groups[0][0].request.batch_key, len(all_jobs), "packed sweep"
            )
            try:
                for job in all_jobs:
                    self._check_job_fault(job)
                with cancellation_scope(token):
                    outcome = run_packed_batch(
                        application,
                        graph,
                        lanes,
                        arena=self._arena,
                        relax_method=relax_method,
                    )
            except Exception as exc:  # noqa: BLE001 - resilience ladder below
                elapsed = time.perf_counter() - started
                with self._lock:
                    self._engine_seconds += elapsed
                self._m_engine_seconds.inc(elapsed)
                sweep_ref = self._emit_sweep_span(
                    all_jobs, started, elapsed, lanes=len(all_jobs), kind="packed",
                    schedule_seconds=schedule_seconds,
                    fusion_seconds=plan.planning_seconds, error=exc,
                )
                if isinstance(exc, NativeBackendError) and relax_method == "native":
                    self._breaker.record_failure()
                    relax_method = "scatter"
                    self._note_degraded()
                    logger.warning(
                        "native relax kernel failed (%s); re-running packed "
                        "drain on the scatter backend", exc,
                    )
                    continue
                if self._maybe_retry("sweep", all_jobs, attempt, exc, sweep_ref):
                    attempt += 1
                    continue
                self._isolate_group(all_jobs, graph, exc, schedule_seconds)
                return
            break
        if relax_method == "native":
            self._breaker.record_success()
        elapsed = time.perf_counter() - started
        now = started + elapsed
        for job in all_jobs:
            job.compute_finished_at = now
        self._emit_sweep_span(
            all_jobs, started, elapsed, lanes=len(all_jobs), kind="packed",
            schedule_seconds=schedule_seconds, fusion_seconds=plan.planning_seconds,
            metrics_list=outcome.batch_metrics,
        )
        backend = self._record_kernel_counters(
            application.value, outcome.batch_metrics
        )
        logger.info(
            "drained %d %s job(s) from %d group(s) as one packed word on %s "
            "in %.3fs (relax backend: %s)",
            len(all_jobs), application.value, len(groups), graph.name, elapsed,
            backend or "n/a",
        )
        with self._lock:
            self._executions += len(all_jobs)
            self._completed += len(all_jobs)
            self._engine_seconds += elapsed
        self._m_executions.inc(len(all_jobs))
        self._m_engine_seconds.inc(elapsed)
        # Each fused group contributes one cost observation: the shared
        # wall-clock split by lane share (sources dominate packed cost).
        index = 0
        for group in groups:
            lane_metrics = [
                result.metrics
                for result in outcome.results[index : index + len(group)]
            ]
            index += len(group)
            share = elapsed * len(group) / len(all_jobs)
            self._observe_cost(group[0].request.batch_key, len(group), share)
            self._note_family_counters(group[0].request.batch_key, lane_metrics)
        for job, result in zip(all_jobs, outcome.results):
            self._cache_put_safe(job.request.cache_key, result)
            job.mark_done(result)
            self._queue.release(job)
        with self._lock:
            self._note_finished_locked(*all_jobs)

    def _run_leased(self, request: TraversalRequest, graph: CSRGraph) -> TraversalResult:
        """Run one request against an engine leased from the arena."""
        application = request.application
        if application is Application.CC:
            with self._arena.lease(graph, request.strategy, request.system) as engine:
                return run_cc(
                    graph, strategy=request.strategy, system=request.system, engine=engine
                )
        if application is Application.PAGERANK:
            with self._arena.lease(graph, request.strategy, request.system) as engine:
                return run_pagerank(
                    graph, strategy=request.strategy, system=request.system, engine=engine
                )
        source = request.source
        if source is None or not 0 <= source < graph.num_vertices:
            raise SimulationError(
                f"source vertex {source} out of range for graph with "
                f"{graph.num_vertices} vertices"
            )
        if application is Application.BFS:
            with self._arena.lease(graph, request.strategy, request.system) as engine:
                return run_bfs(
                    graph,
                    source,
                    strategy=request.strategy,
                    system=request.system,
                    engine=engine,
                )
        with self._arena.lease(
            graph, request.strategy, request.system, needs_weights=True
        ) as engine:
            return run_sssp(
                graph,
                source,
                strategy=request.strategy,
                system=request.system,
                engine=engine,
            )

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def cost_model(self) -> CostModel:
        """The service's online cost estimator (read-mostly; thread-safe)."""
        return self._costmodel

    def stats(self) -> ServiceStats:
        store_fields: dict = {}
        if self._store is not None:
            # Snapshot outside self._lock: the store has its own locks and
            # runs a COUNT query, neither of which belongs under the
            # service-wide lock.
            store_snapshot = self._store.stats()
            store_fields = {
                "store_state": store_snapshot.state,
                "store_hits": store_snapshot.hits,
                "store_writes": store_snapshot.writes,
                "store_flushes": store_snapshot.flushes,
                "store_errors": store_snapshot.errors,
                "store_pending": store_snapshot.pending,
                "store_backfilled": store_snapshot.backfilled,
            }
        with self._lock:
            return ServiceStats(
                submitted=self._submitted,
                deduplicated=self._deduplicated,
                completed=self._completed,
                failed=self._failed,
                executions=self._executions,
                batches=self._batches,
                pending=self._queue.pending_count(),
                active_workers=self._pool.active,
                engine_seconds=self._engine_seconds,
                uptime_seconds=time.perf_counter() - self._started_at,
                cache=self._cache.stats(),
                registry=self.registry.stats(),
                policy=self.config.policy,
                rejected=self._rejected,
                rejected_infeasible=self._rejected_infeasible,
                expired=self._expired,
                deadlines_met=self._deadlines_met,
                deadlines_missed=self._deadlines_missed,
                queue_wait=LatencyStats.from_samples(self._wait_samples),
                latency=LatencyStats.from_samples(self._latency_samples),
                cost_model=self._costmodel.stats(),
                tenants={
                    tenant: TenantStats(
                        completed=self._tenant_completed.get(tenant, 0),
                        missed=self._tenant_missed.get(tenant, 0),
                    )
                    for tenant in sorted(
                        self._tenant_completed.keys() | self._tenant_missed.keys(),
                        key=lambda t: (t is None, t),
                    )
                },
                retries=self._retries,
                sweep_timeouts=self._sweep_timeouts,
                isolations=self._isolations,
                degraded=self._degraded,
                breaker_state=self._breaker.snapshot()["state"],
                rejected_after_close=(
                    self._rejected_closed + self._pool.rejected_after_close
                ),
                faults_injected=(
                    self._faults.total_fired() if self._faults is not None else 0
                ),
                cache_errors=self._cache_errors,
                **store_fields,
            )

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting work and shut the worker pool down.

        With ``cancel_pending`` the queued-but-unstarted batches are dropped
        and their jobs failed (so no waiter blocks forever) instead of being
        executed; batches already running always complete.
        """
        # Taking the admission lock makes the flag flip atomic with respect
        # to submit(): every submission either completed (enqueued AND
        # dispatched to the pool) before this point — and is then drained or
        # cancelled below — or observes the flag and is rejected.  No job can
        # any longer land in the queue after pool shutdown with only the
        # ServiceError side channel to save its waiters.
        with self._admission_lock:
            self._closed = True
        self._pool.shutdown(wait=wait, cancel_pending=cancel_pending)
        # Graceful drain-and-flush checkpoint: every write the drained pool
        # produced is flushed to the store and the WAL folded back into the
        # main file — before the fault plan deactivates, so chaos drills can
        # poison the checkpoint itself.
        if self._store is not None:
            self._store.close()
        # Deactivate the fault plan only after the pool drained, so in-flight
        # batches keep seeing injected faults; idempotent if another service
        # (or a test) already swapped the active plan.
        if self._faults is not None:
            faults.deactivate(self._faults)
        if not cancel_pending:
            return
        while True:
            batch = self._queue.pop_batch()
            if not batch:
                return
            # Terminal, typed failure: waiters blocked in result() observe
            # ServiceClosedError instead of hanging until their timeout.
            exc = ServiceClosedError("service closed before the job was executed")
            for job in batch:
                job.mark_failed(exc)
                self._queue.release(job)
            with self._lock:
                self._failed += len(batch)
                self._note_finished_locked(*batch)

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
