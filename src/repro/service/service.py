"""The serving front door: accept requests, schedule work, hand out results.

``Service`` ties the pieces together: requests are normalized and resolved
against the service's default platform, answered from the result cache when
possible, coalesced onto identical in-flight jobs otherwise, and finally
enqueued in batch groups that the worker pool drains against registry-resident
graphs.  Clients interact with three calls::

    service = Service.with_datasets(["GK", "GU"], scale=40000)
    job = service.submit(TraversalRequest(Application.BFS, "GK", source=0))
    result = service.result(job)          # blocks until done
    print(service.stats().describe())
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Iterable

from ..config import ServiceConfig, SystemConfig, default_system
from ..errors import (
    AdmissionError,
    DeadlineExceededError,
    InfeasibleDeadlineError,
    JobFailedError,
    JobNotFoundError,
    ServiceError,
    SimulationError,
)
from ..graph.csr import CSRGraph
from ..traversal.api import run
from ..traversal.arena import EngineArena
from ..traversal.bfs import run_bfs
from ..traversal.cc import run_cc
from ..traversal.multisource import run_batch
from ..traversal.results import TraversalResult
from ..traversal.streaming import run_streaming_batch
from ..traversal.sssp import run_sssp
from ..types import Application
from .cache import ResultCache
from .costmodel import CostModel
from .jobs import Job, JobStatus
from .queue import RequestQueue
from .registry import GraphRegistry
from .requests import TraversalRequest
from .scheduler import make_policy
from .stats import LatencyStats, ServiceStats, TenantStats
from .workers import WorkerPool

#: Signature of the execution backend: given a normalized request and the
#: resolved graph, produce a result.  Pluggable so tests can count executions
#: or inject failures without touching the real engine.
Engine = Callable[[TraversalRequest, CSRGraph], TraversalResult]


def default_engine(request: TraversalRequest, graph: CSRGraph) -> TraversalResult:
    """Run the real simulated traversal for ``request``."""
    return run(
        request.application,
        graph,
        source=request.source,
        strategy=request.strategy,
        system=request.system,
    )


class Service:
    """A multi-tenant traversal server over a :class:`GraphRegistry`."""

    def __init__(
        self,
        registry: GraphRegistry | None = None,
        config: ServiceConfig | None = None,
        system: SystemConfig | None = None,
        engine: Engine | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry or GraphRegistry(
            budget_bytes=self.config.registry_budget_bytes
        )
        self.system = system or default_system()
        #: ``None`` selects the built-in batched execution path (shared
        #: engines from the arena, multi-source batches per drained group);
        #: injecting a callable forces per-job execution through it, which is
        #: what the test doubles rely on.
        self._engine = engine
        self._arena = EngineArena(max_idle=max(8, 2 * self.config.max_workers))
        self._cache = ResultCache(self.config.result_cache_entries)
        #: Online per-batch-family cost estimator, fed by every successful
        #: execution below and consumed by the WFQ policy and by
        #: infeasible-deadline admission.  Bootstrap estimates peek at the
        #: registry (resident graphs only — estimating must never force a
        #: load or an eviction).
        self._costmodel = CostModel(
            alpha=self.config.cost_alpha, graph_size_lookup=self._graph_size
        )
        self._queue = RequestQueue(
            policy=make_policy(
                self.config.policy,
                tenant_weights=self.config.tenant_weights,
                cost_model=self._costmodel,
            ),
            cost_model=self._costmodel,
        )
        self._pool = WorkerPool(self.config.max_workers)
        self._jobs: dict[str, Job] = {}
        #: Completion order of jobs still in ``_jobs`` (ids, oldest first):
        #: retention pruning pops from the head instead of rescanning the
        #: whole table, so a deep unfinished backlog costs nothing to skip.
        self._finished_order: deque[str] = deque()
        self._lock = threading.Lock()
        #: Serializes the closed-flag check with enqueue + dispatch, so a
        #: racing close() can never observe a submission half-way through
        #: (see submit/close).  Kept separate from ``self._lock`` because the
        #: submission path re-acquires ``self._lock`` internally.
        self._admission_lock = threading.Lock()
        self._job_ids = itertools.count(1)
        self._submitted = 0
        self._deduplicated = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._rejected_infeasible = 0
        self._expired = 0
        self._deadlines_met = 0
        self._deadlines_missed = 0
        #: Lifetime per-tenant outcome counters (two ints per distinct tenant
        #: label ever seen).  Tenants are expected to be a small, stable set
        #: of service classes — do not encode per-user or per-request IDs
        #: into :attr:`TraversalRequest.tenant`, which would grow these (and
        #: the WFQ policy's virtual clocks) with label cardinality.
        self._tenant_completed: dict[str | None, int] = {}
        self._tenant_missed: dict[str | None, int] = {}
        self._executions = 0
        self._batches = 0
        self._engine_seconds = 0.0
        self._wait_samples: deque[float] = deque(maxlen=self.config.latency_window)
        self._latency_samples: deque[float] = deque(maxlen=self.config.latency_window)
        self._started_at = time.perf_counter()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def with_datasets(
        cls,
        symbols: Iterable[str],
        config: ServiceConfig | None = None,
        system: SystemConfig | None = None,
        **load_kwargs,
    ) -> "Service":
        """Build a service pre-registered with Table 2 dataset analogs."""
        service = cls(config=config, system=system)
        for symbol in symbols:
            service.registry.register_dataset(symbol, **load_kwargs)
        return service

    def _graph_size(self, name: str) -> tuple[int, int] | None:
        """(vertices, edges) of a *resident* graph for cost bootstrapping."""
        graph = self.registry.peek(name)
        if graph is None:
            return None
        return graph.num_vertices, graph.num_edges

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, request: TraversalRequest) -> Job:
        """Accept a request and return the job that will (or did) answer it.

        The returned job may be shared with earlier clients (deduplication)
        or already complete (result-cache hit); callers should treat it as
        read-only and collect the answer through :meth:`result`.

        Raises :class:`~repro.errors.AdmissionError` when the pending queue
        is at ``config.queue_limit`` or the request's tenant is at
        ``config.tenant_quota``, and (with ``config.reject_infeasible``) its
        :class:`~repro.errors.InfeasibleDeadlineError` subclass when the cost
        model predicts a deadline-carrying request cannot finish within its
        budget.  Submissions that join an in-flight job or hit the result
        cache consume no queue capacity and are always admitted.
        """
        if request.graph not in self.registry:
            # Fail fast at the front door: a typo'd graph name should not
            # consume a worker slot before being rejected.
            self.registry.get(request.graph)  # raises UnknownGraphError
        request = request.with_system(request.system or self.system)

        # The closed check, the dedup/cache/enqueue step and the worker
        # wakeup all happen under one admission lock, making submission
        # atomic with respect to close(): once close() has set the flag, no
        # job can slip into the queue or the pool behind it.
        with self._admission_lock:
            if self._closed:
                raise ServiceError("service is closed")
            job = Job(job_id=f"job-{next(self._job_ids)}", request=request)
            # The dedup-index lookup, cache lookup, admission checks and
            # enqueue are one atomic step (see RequestQueue.push_or_join),
            # so while the cache retains the entry an identical request is
            # answered by exactly one execution no matter how submissions
            # interleave.
            try:
                outcome, payload = self._queue.push_or_join(
                    job,
                    cache_lookup=self._cache.get,
                    queue_limit=self.config.queue_limit,
                    tenant_quota=self.config.tenant_quota,
                    reject_infeasible=self.config.reject_infeasible,
                    workers=self.config.max_workers,
                )
            except AdmissionError as exc:
                with self._lock:
                    self._rejected += 1
                    if isinstance(exc, InfeasibleDeadlineError):
                        self._rejected_infeasible += 1
                raise
            with self._lock:
                self._submitted += 1
            if outcome == "joined":
                with self._lock:
                    self._deduplicated += 1
                return payload
            if outcome == "cached":
                job.mark_done(payload, from_cache=True)
                with self._lock:
                    self._completed += 1
                    self._jobs[job.job_id] = job
                    self._note_finished_locked(job)  # also enforces retention
                return job
            with self._lock:
                self._jobs[job.job_id] = job
                if job.done:
                    # A worker raced ahead and finished the job before this
                    # insert: its _note_finished_locked saw the id missing
                    # from _jobs and skipped the entry, so make it here or
                    # the job would be unprunable forever.
                    self._mark_prunable_locked(job)
                self._prune_finished_jobs()
            try:
                self._pool.submit(self._drain_one_batch)
            except ServiceError as exc:
                # Defensive only: with the admission lock held, close()
                # cannot race this dispatch, so the pool refusing means it
                # failed for its own reasons.  Withdraw the job so nobody
                # blocks forever on a wakeup that will never come; if a
                # worker already grabbed it, that worker owns its completion.
                if self._queue.discard(job):
                    job.mark_failed(exc)
                    with self._lock:
                        self._failed += 1
                        self._note_finished_locked(job)
            return job

    def submit_many(self, requests: Iterable[TraversalRequest]) -> list[Job]:
        return [self.submit(request) for request in requests]

    def _prune_finished_jobs(self) -> None:
        """Drop the oldest finished jobs beyond the retention bound.

        Caller holds ``self._lock``.  Keeps the server's memory bounded on
        long-running deployments: pruned jobs are no longer reachable via
        :meth:`job`/:meth:`result`-by-id, but Job objects already handed to
        clients keep working, and reusable results live on in the result
        cache.  The retention bound applies to *finished* jobs only, exactly
        as :attr:`ServiceConfig.job_retention` promises: unfinished jobs are
        never pruned, never scanned (the finished-order deque makes a deep
        unfinished backlog cost O(1) here), and never crowd freshly finished
        jobs out of the table.
        """
        excess = len(self._finished_order) - self.config.job_retention
        while excess > 0 and self._finished_order:
            self._jobs.pop(self._finished_order.popleft(), None)
            excess -= 1

    def _mark_prunable_locked(self, job: Job) -> None:
        """Enter a finished, table-resident job into the pruning order once.

        Caller holds ``self._lock``; ``retention_noted`` keeps the deque and
        the finished-job count exact even when the completion racing with the
        submit-side insert makes both sides try the entry.
        """
        if not job.retention_noted:
            job.retention_noted = True
            self._finished_order.append(job.job_id)

    def _note_finished_locked(self, *jobs: Job) -> None:
        """Record latency samples and deadline outcomes for finished jobs.

        Caller holds ``self._lock``.  Every path that moves a job to a
        terminal state funnels through here so the percentile window and the
        deadline hit counters see cache hits, failures and expiries alike.
        Deadlines are judged per *waiter*: a deduplicated job carrying both a
        tight and a patient budget can count one miss and one met.
        """
        for job in jobs:
            wait = job.wait_seconds
            if wait is not None:
                self._wait_samples.append(wait)
            total = job.total_seconds
            if total is not None:
                self._latency_samples.append(total)
            if job.job_id in self._jobs:
                self._mark_prunable_locked(job)
            # Per-tenant breakdown, attributed to the job's owning tenant
            # (the first submitter; joined duplicates ride along): completed
            # jobs, and deadline-carrying jobs that blew their tightest
            # budget (late, failed or expired).
            tenant = job.request.tenant
            if job.status is JobStatus.DONE:
                self._tenant_completed[tenant] = (
                    self._tenant_completed.get(tenant, 0) + 1
                )
            if job.met_deadline is False:
                self._tenant_missed[tenant] = self._tenant_missed.get(tenant, 0) + 1
            finished_at = job.finished_at
            for deadline_at in job.deadline_waiters:
                if (
                    job.status is JobStatus.DONE
                    and finished_at is not None
                    and finished_at <= deadline_at
                ):
                    self._deadlines_met += 1
                else:
                    self._deadlines_missed += 1
        # Enforce the retention bound at completion time, not merely at the
        # next submit, so an idle server does not hold extra finished jobs.
        self._prune_finished_jobs()

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def job(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise JobNotFoundError(f"no such job: {job_id!r}") from None

    def result(self, job: Job | str, timeout: float | None = None) -> TraversalResult:
        """Block until a job finishes and return (or raise) its outcome."""
        if isinstance(job, str):
            job = self.job(job)
        if not job.wait(timeout):
            raise ServiceError(
                f"timed out after {timeout}s waiting for {job.job_id} "
                f"({job.request.describe()})"
            )
        if job.status is JobStatus.FAILED:
            raise JobFailedError(
                f"{job.job_id} failed: {job.request.describe()}", job_id=job.job_id
            ) from job.error
        assert job.result is not None
        return job.result

    def wait_all(self, timeout: float | None = None) -> bool:
        """Wait for every job submitted so far; False if the deadline passed."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            remaining = None if deadline is None else deadline - time.perf_counter()
            if remaining is not None and remaining <= 0:
                return False
            if not job.wait(remaining):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Execution (runs on worker threads)
    # ------------------------------------------------------------------ #
    def _drain_one_batch(self) -> None:
        batch = self._queue.pop_batch()
        if not batch:
            # Another worker already drained the group this wakeup was for.
            return
        batch = self._fail_expired(batch)
        if not batch:
            # Fully expired groups never reach an engine sweep, so they do
            # not count as batches — amortization stays executions-per-sweep.
            return
        with self._lock:
            self._batches += 1
        try:
            graph = self.registry.get(batch[0].request.graph)
        except Exception as exc:  # noqa: BLE001 - propagate to every waiter
            for job in batch:
                job.mark_failed(exc)
                self._queue.release(job)
            with self._lock:
                self._failed += len(batch)
                self._note_finished_locked(*batch)
            return
        if self._engine is None:
            self._execute_builtin(batch, graph)
            return
        for job in batch:
            self._execute_one(job, graph, lambda job: self._engine(job.request, graph))

    def _fail_expired(self, batch: list[Job]) -> list[Job]:
        """Fail the jobs whose deadline lapsed in the queue; return the rest.

        Expiry is checked once per drained group, *before* execution: a
        request that can no longer be useful never occupies an engine, which
        is the whole point of deadline-aware scheduling under overload.
        """
        now = time.perf_counter()
        live: list[Job] = []
        expired: list[Job] = []
        for job in batch:
            # queue.expire decides AND retires the dedup entry atomically, so
            # a deadline-free duplicate racing this check either rescued the
            # job (expire_at cleared -> live) or re-executes on its own.
            (expired if self._queue.expire(job, now) else live).append(job)
        if not expired:
            return batch
        for job in expired:
            job.mark_failed(
                DeadlineExceededError(
                    f"{job.job_id} expired in queue: deadline was "
                    f"{job.request.deadline:g}s, waited "
                    f"{now - job.submitted_at:.3f}s ({job.request.describe()})"
                )
            )
        with self._lock:
            self._failed += len(expired)
            self._expired += len(expired)
            self._note_finished_locked(*expired)
        return live

    def _execute_one(self, job: Job, graph: CSRGraph, runner: Callable) -> None:
        """Run one job with full bookkeeping and job-level failure isolation."""
        job.mark_running()
        started = time.perf_counter()
        try:
            result = runner(job)
        except Exception as exc:  # noqa: BLE001 - job-level isolation
            # Counters first, completion signal second: a client that wakes
            # from result() must already see this job in the stats.
            with self._lock:
                self._executions += 1
                self._failed += 1
                self._engine_seconds += time.perf_counter() - started
            job.mark_failed(exc)
        else:
            elapsed = time.perf_counter() - started
            with self._lock:
                self._executions += 1
                self._completed += 1
                self._engine_seconds += elapsed
            # Only successful runs feed the cost model: a failure can raise
            # long before any frontier sweep, and that near-zero timing says
            # nothing about what draining this family actually costs.
            self._costmodel.observe(job.request.batch_key, 1, elapsed)
            self._cache.put(job.request.cache_key, result)
            job.mark_done(result)
        finally:
            # Release only after the cache holds the result, so identical
            # requests always find either the in-flight job or the cached
            # answer — and note only after the release, so no duplicate can
            # still join and mutate the waiter list mid-accounting.
            self._queue.release(job)
            with self._lock:
                self._note_finished_locked(job)

    def _execute_builtin(self, batch: list[Job], graph: CSRGraph) -> None:
        """Drain one batch group on the built-in engine path.

        BFS/SSSP groups with several distinct sources execute as ONE batched
        multi-source traversal over an arena-shared engine — each frontier
        sweep is paid once per group instead of once per job.  Everything
        else (CC, singleton groups) runs per job against a leased engine, so
        the engine construction is still amortized across the group.
        """
        runnable = []
        for job in batch:
            source = job.request.source
            # Pre-validate so one bad source fails its own job, never the
            # whole batch it happened to be grouped with.  A missing source
            # on a source-requiring application is just as poisonous to
            # run_batch as an out-of-range one, so both take the solo path
            # (where _run_leased raises for exactly these conditions).
            invalid = job.request.application is not Application.CC and (
                source is None or not 0 <= source < graph.num_vertices
            )
            if invalid:
                self._execute_one(
                    job, graph, lambda job: self._run_leased(job.request, graph)
                )
            else:
                runnable.append(job)
        if not runnable:
            return
        request = runnable[0].request
        application = request.application
        if application is Application.CC:
            # Streaming fusion: this group plus every other pending CC group
            # on the same graph (different strategy/system) execute as lanes
            # of ONE shared algorithm pass.
            self._execute_streaming(runnable, graph)
            return
        if len(runnable) == 1:
            for job in runnable:
                self._execute_one(
                    job, graph, lambda job: self._run_leased(job.request, graph)
                )
            return

        for job in runnable:
            job.mark_running()
        started = time.perf_counter()
        try:
            outcome = run_batch(
                application,
                graph,
                [job.request.source for job in runnable],
                strategy=request.strategy,
                system=request.system,
                arena=self._arena,
            )
        except Exception as exc:  # noqa: BLE001 - propagate to every waiter
            elapsed = time.perf_counter() - started
            with self._lock:
                self._executions += len(runnable)
                self._failed += len(runnable)
                self._engine_seconds += elapsed
            for job in runnable:
                job.mark_failed(exc)
                self._queue.release(job)
            with self._lock:
                self._note_finished_locked(*runnable)
            return
        elapsed = time.perf_counter() - started
        with self._lock:
            self._executions += len(runnable)
            self._completed += len(runnable)
            self._engine_seconds += elapsed
        # One observation per drained group: width + wall-clock seconds is
        # exactly the (per-sweep, per-job) sample the cost model EWMAs want.
        self._costmodel.observe(request.batch_key, len(runnable), elapsed)
        for job, result in zip(runnable, outcome.results):
            self._cache.put(job.request.cache_key, result)
            job.mark_done(result)
            self._queue.release(job)
        with self._lock:
            self._note_finished_locked(*runnable)

    def _execute_streaming(self, primary: list[Job], graph: CSRGraph) -> None:
        """Drain a CC group fused with its same-graph sibling groups.

        The algorithm pass is engine-independent, so one
        :func:`~repro.traversal.streaming.run_streaming_batch` serves every
        pending CC group on this graph — each group becomes one
        (strategy, system) lane with its own arena-leased engine, and each
        job receives its own lane's result (values shared, metrics per
        platform, both identical to a solo run's).
        """
        groups: list[list[Job]] = [primary]
        for sibling in self._queue.pop_sibling_groups(
            primary[0].request.graph, Application.CC.value
        ):
            live = self._fail_expired(sibling)
            if live:
                groups.append(live)
                with self._lock:
                    # Ridden-along groups still count as drained batches so
                    # amortization stays executions-per-sweep.
                    self._batches += 1
        lanes = [(group[0].request.strategy, group[0].request.system) for group in groups]
        all_jobs = [job for group in groups for job in group]
        for job in all_jobs:
            job.mark_running()
        started = time.perf_counter()
        try:
            outcome = run_streaming_batch(
                Application.CC, graph, lanes, arena=self._arena
            )
        except Exception as exc:  # noqa: BLE001 - propagate to every waiter
            elapsed = time.perf_counter() - started
            with self._lock:
                self._executions += len(all_jobs)
                self._failed += len(all_jobs)
                self._engine_seconds += elapsed
            for job in all_jobs:
                job.mark_failed(exc)
                self._queue.release(job)
            with self._lock:
                self._note_finished_locked(*all_jobs)
            return
        elapsed = time.perf_counter() - started
        with self._lock:
            self._executions += len(all_jobs)
            self._completed += len(all_jobs)
            self._engine_seconds += elapsed
        # Each fused group contributes one cost-model observation; the shared
        # wall-clock is split evenly across lanes (the engine sweeps dominate
        # and every lane sweeps the full stream).
        share = elapsed / len(groups)
        for group, result in zip(groups, outcome.results):
            self._costmodel.observe(group[0].request.batch_key, len(group), share)
            for job in group:
                self._cache.put(job.request.cache_key, result)
                job.mark_done(result)
                self._queue.release(job)
        with self._lock:
            self._note_finished_locked(*all_jobs)

    def _run_leased(self, request: TraversalRequest, graph: CSRGraph) -> TraversalResult:
        """Run one request against an engine leased from the arena."""
        application = request.application
        if application is Application.CC:
            with self._arena.lease(graph, request.strategy, request.system) as engine:
                return run_cc(
                    graph, strategy=request.strategy, system=request.system, engine=engine
                )
        source = request.source
        if source is None or not 0 <= source < graph.num_vertices:
            raise SimulationError(
                f"source vertex {source} out of range for graph with "
                f"{graph.num_vertices} vertices"
            )
        if application is Application.BFS:
            with self._arena.lease(graph, request.strategy, request.system) as engine:
                return run_bfs(
                    graph,
                    source,
                    strategy=request.strategy,
                    system=request.system,
                    engine=engine,
                )
        with self._arena.lease(
            graph, request.strategy, request.system, needs_weights=True
        ) as engine:
            return run_sssp(
                graph,
                source,
                strategy=request.strategy,
                system=request.system,
                engine=engine,
            )

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def cost_model(self) -> CostModel:
        """The service's online cost estimator (read-mostly; thread-safe)."""
        return self._costmodel

    def stats(self) -> ServiceStats:
        with self._lock:
            return ServiceStats(
                submitted=self._submitted,
                deduplicated=self._deduplicated,
                completed=self._completed,
                failed=self._failed,
                executions=self._executions,
                batches=self._batches,
                pending=self._queue.pending_count(),
                active_workers=self._pool.active,
                engine_seconds=self._engine_seconds,
                uptime_seconds=time.perf_counter() - self._started_at,
                cache=self._cache.stats(),
                registry=self.registry.stats(),
                policy=self.config.policy,
                rejected=self._rejected,
                rejected_infeasible=self._rejected_infeasible,
                expired=self._expired,
                deadlines_met=self._deadlines_met,
                deadlines_missed=self._deadlines_missed,
                queue_wait=LatencyStats.from_samples(self._wait_samples),
                latency=LatencyStats.from_samples(self._latency_samples),
                cost_model=self._costmodel.stats(),
                tenants={
                    tenant: TenantStats(
                        completed=self._tenant_completed.get(tenant, 0),
                        missed=self._tenant_missed.get(tenant, 0),
                    )
                    for tenant in sorted(
                        self._tenant_completed.keys() | self._tenant_missed.keys(),
                        key=lambda t: (t is None, t),
                    )
                },
            )

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting work and shut the worker pool down.

        With ``cancel_pending`` the queued-but-unstarted batches are dropped
        and their jobs failed (so no waiter blocks forever) instead of being
        executed; batches already running always complete.
        """
        # Taking the admission lock makes the flag flip atomic with respect
        # to submit(): every submission either completed (enqueued AND
        # dispatched to the pool) before this point — and is then drained or
        # cancelled below — or observes the flag and is rejected.  No job can
        # any longer land in the queue after pool shutdown with only the
        # ServiceError side channel to save its waiters.
        with self._admission_lock:
            self._closed = True
        self._pool.shutdown(wait=wait, cancel_pending=cancel_pending)
        if not cancel_pending:
            return
        while True:
            batch = self._queue.pop_batch()
            if not batch:
                return
            exc = ServiceError("service closed before the job was executed")
            for job in batch:
                job.mark_failed(exc)
                self._queue.release(job)
            with self._lock:
                self._failed += len(batch)
                self._note_finished_locked(*batch)

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
