"""Deterministic fault injection for the serving tier.

A :class:`FaultPlan` arms named *injection sites* — fixed choke points the
serving and traversal code already passes through — with transient, permanent
or latency faults that fire probabilistically (seeded PRNG) or on exact call
counts.  Production code calls the module-level :func:`check` at each site;
with no plan activated that is a single global read, so the substrate costs
nothing when chaos is off.

Sites
-----
``registry.load``
    Inside :meth:`GraphRegistry.get`, immediately before the elected loader
    runs (context: ``graph``).
``engine.sweep``
    Every :meth:`TraversalEngine.process_frontier` iteration — solo,
    multisource and streaming sweeps all funnel through it (no context).
``native.compile`` / ``native.invoke``
    In :mod:`repro.traversal._native`, before compiling the C kernel and at
    each kernel invocation; both surface as ``NativeBackendError`` so the
    circuit breaker sees them.
``cache.get`` / ``cache.put``
    In :class:`ResultCache`; the service absorbs these (a failing read is a
    miss, a failing write is dropped) so cache faults never fail requests.
``worker.task``
    Per job on the drain path before its sweep runs (context: ``graph``,
    ``app``, ``source``, ``tenant``) — the lever for poisoning one lane of a
    fused group.
``store.open`` / ``store.read`` / ``store.write`` / ``store.checkpoint``
    In :class:`~repro.service.store.ServingStore`: opening (and re-opening)
    the database (context: ``path``), every persistent-cache / history read
    (context: ``table``), each flush-thread batch commit (context: ``ops``),
    and the WAL checkpoint at close (context: ``path``).  The store absorbs
    all of them — its circuit breaker degrades serving to in-memory-only
    behavior, so store faults never fail requests.

Spec format (``REPRO_FAULTS`` / ``ServiceConfig(fault_plan=...)``)
------------------------------------------------------------------
Semicolon-separated entries; an optional ``seed=N`` entry seeds the PRNG::

    seed=7;registry.load:transient:n=2:limit=2;worker.task:permanent:source=13

Each entry is ``site:mode[:key=value...]`` with reserved keys

- ``p`` — fire probability per check (seeded, deterministic),
- ``n`` — fire on every n-th matching check (deterministic counter),
- ``limit`` — maximum number of fires,
- ``delay`` — sleep seconds (``latency`` mode only).

Any other ``key=value`` is a context matcher compared (as strings) against
the keyword context the site passes to :func:`check` — e.g. ``source=13``
arms ``worker.task`` only for jobs whose source is 13.  Omitting both ``p``
and ``n`` fires on every matching check.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..analysis.lockorder import tracked_lock
from ..envflags import env_str
from ..errors import ConfigurationError, PermanentFaultError, TransientFaultError

#: Environment variable holding a fault-plan spec (see module docstring).
ENV_SPEC = "REPRO_FAULTS"

#: The injection sites production code is instrumented with.
SITES = (
    "registry.load",
    "engine.sweep",
    "native.compile",
    "native.invoke",
    "cache.get",
    "cache.put",
    "worker.task",
    "store.open",
    "store.read",
    "store.write",
    "store.checkpoint",
)

MODES = ("transient", "permanent", "latency")


@dataclass(frozen=True)
class FaultSpec:
    """One armed site: where, what kind of fault, and when it fires."""

    site: str
    mode: str
    probability: float | None = None
    nth: int | None = None
    limit: int | None = None
    delay_seconds: float = 0.0
    #: Context matchers: every (key, value) must equal ``str(context[key])``.
    match: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; available: {', '.join(SITES)}"
            )
        if self.mode not in MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r}; available: {', '.join(MODES)}"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.nth is not None and self.nth < 1:
            raise ConfigurationError(f"fault n must be >= 1, got {self.nth}")
        if self.limit is not None and self.limit < 1:
            raise ConfigurationError(f"fault limit must be >= 1, got {self.limit}")
        if self.delay_seconds < 0:
            raise ConfigurationError(
                f"fault delay must be >= 0, got {self.delay_seconds}"
            )

    def matches(self, context: dict[str, Any]) -> bool:
        return all(str(context.get(key)) == value for key, value in self.match)


@dataclass
class _SpecState:
    """Mutable per-spec firing state (guarded by the plan's lock)."""

    spec: FaultSpec
    calls: int = 0
    fires: int = 0


class FaultPlan:
    """A seeded, thread-safe set of armed fault specs.

    Identity-hashed on purpose: plans live inside the frozen
    ``ServiceConfig`` dataclass, whose generated ``__hash__`` only needs the
    field to be hashable, not value-comparable.
    """

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0) -> None:
        self.seed = int(seed)
        self._states = [_SpecState(spec) for spec in specs]
        self._rng = random.Random(self.seed)
        self._lock = tracked_lock("service.FaultPlan._lock")
        self._listeners: list[Callable[[str], None]] = []

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        return tuple(state.spec for state in self._states)

    def add_listener(self, callback: Callable[[str], None]) -> None:
        """Register a callback invoked with the site name on every fire."""
        with self._lock:
            self._listeners.append(callback)

    def check(self, site: str, **context: Any) -> None:
        """Fire any armed fault for ``site``; no-op when none matches.

        Raises :class:`TransientFaultError` / :class:`PermanentFaultError`
        or sleeps (``latency`` mode).  At most one spec fires per check so a
        latency fault cannot mask an error fault armed behind it.
        """
        fired: FaultSpec | None = None
        listeners: tuple[Callable[[str], None], ...] = ()
        with self._lock:
            for state in self._states:
                spec = state.spec
                if spec.site != site or not spec.matches(context):
                    continue
                state.calls += 1
                if spec.limit is not None and state.fires >= spec.limit:
                    continue
                if spec.nth is not None:
                    should_fire = state.calls % spec.nth == 0
                elif spec.probability is not None:
                    should_fire = self._rng.random() < spec.probability
                else:
                    should_fire = True
                if not should_fire:
                    continue
                state.fires += 1
                fired = spec
                listeners = tuple(self._listeners)
                break
        if fired is None:
            return
        for callback in listeners:
            callback(site)
        if fired.mode == "latency":
            time.sleep(fired.delay_seconds)
            return
        detail = f"injected {fired.mode} fault at {site}"
        if fired.match:
            detail += f" ({', '.join(f'{k}={v}' for k, v in fired.match)})"
        if fired.mode == "transient":
            raise TransientFaultError(detail, site=site)
        raise PermanentFaultError(detail, site=site)

    def counts(self) -> dict[str, int]:
        """Fires per site (only sites that fired at least once)."""
        with self._lock:
            totals: dict[str, int] = {}
            for state in self._states:
                if state.fires:
                    totals[state.spec.site] = (
                        totals.get(state.spec.site, 0) + state.fires
                    )
            return totals

    def total_fired(self) -> int:
        with self._lock:
            return sum(state.fires for state in self._states)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for state in self._states:
            spec = state.spec
            knobs = []
            if spec.probability is not None:
                knobs.append(f"p={spec.probability:g}")
            if spec.nth is not None:
                knobs.append(f"n={spec.nth}")
            if spec.limit is not None:
                knobs.append(f"limit={spec.limit}")
            if spec.mode == "latency":
                knobs.append(f"delay={spec.delay_seconds:g}")
            knobs.extend(f"{k}={v}" for k, v in spec.match)
            suffix = ":" + ":".join(knobs) if knobs else ""
            parts.append(f"{spec.site}:{spec.mode}{suffix} (fired {state.fires})")
        return "; ".join(parts)

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` spec format (see module docstring)."""
        seed = 0
        specs: list[FaultSpec] = []
        for raw_entry in str(text).split(";"):
            entry = raw_entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                try:
                    seed = int(entry[len("seed="):])
                except ValueError:
                    raise ConfigurationError(
                        f"fault plan seed must be an integer, got {entry!r}"
                    ) from None
                continue
            fields = entry.split(":")
            if len(fields) < 2:
                raise ConfigurationError(
                    f"fault entry needs at least site:mode, got {entry!r}"
                )
            site, mode = fields[0].strip(), fields[1].strip()
            kwargs: dict[str, Any] = {}
            match: list[tuple[str, str]] = []
            for option in fields[2:]:
                key, separator, value = option.partition("=")
                key, value = key.strip(), value.strip()
                if not separator or not key:
                    raise ConfigurationError(
                        f"fault option must be key=value, got {option!r} in {entry!r}"
                    )
                try:
                    if key == "p":
                        kwargs["probability"] = float(value)
                    elif key == "n":
                        kwargs["nth"] = int(value)
                    elif key == "limit":
                        kwargs["limit"] = int(value)
                    elif key == "delay":
                        kwargs["delay_seconds"] = float(value)
                    else:
                        match.append((key, value))
                except ValueError:
                    raise ConfigurationError(
                        f"fault option {key}={value!r} is not a number in {entry!r}"
                    ) from None
            specs.append(FaultSpec(site=site, mode=mode, match=tuple(match), **kwargs))
        if not specs:
            raise ConfigurationError(f"fault plan spec armed no sites: {text!r}")
        return cls(specs, seed=seed)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Plan from ``REPRO_FAULTS``, or ``None`` when unset/empty."""
        raw = env_str(ENV_SPEC)
        if raw is None:
            return None
        return cls.from_spec(raw)


# --- module-level activation -------------------------------------------------
#
# Injection sites live in modules (registry, cache, _native, engine) that know
# nothing about the service instance, so the active plan is a process global.
# The service activates its plan on construction and deactivates it on close;
# tests may also use activate()/deactivate() directly.

_active_plan: FaultPlan | None = None
_activation_lock = tracked_lock("service.faults._activation_lock")


def activate(plan: FaultPlan) -> None:
    global _active_plan
    with _activation_lock:
        _active_plan = plan


def deactivate(plan: FaultPlan | None = None) -> None:
    """Disarm ``plan`` (or whatever is active when ``None``).

    Passing the plan makes deactivation idempotent across overlapping
    services: closing a service whose plan was already replaced is a no-op.
    """
    global _active_plan
    with _activation_lock:
        if plan is None or _active_plan is plan:
            _active_plan = None


def active_plan() -> FaultPlan | None:
    return _active_plan


def check(site: str, **context: Any) -> None:
    """Hot-path site check: one global read when no plan is armed."""
    plan = _active_plan
    if plan is not None:
        plan.check(site, **context)
