"""Cost-model-driven fusion planner: one decision point for every drain.

Fusion used to live in two ad-hoc branches of the drain path — multi-source
batching inside one group, and a CC-only "pop every sibling group" streaming
merge.  Both fused unconditionally and invisibly.  This module replaces them
with an explicit planning step: each drain snapshots the pending backlog,
enumerates the candidate :class:`FusionPlan` shapes the engines can execute —

* **solo / multisource** — the policy-selected anchor group alone (the
  baseline every fused candidate must beat),
* **packed** — the anchor plus small same-graph, same-application BFS/SSSP
  groups of *different* platform configurations, bin-packed into the ≤64
  lanes of one :func:`~repro.traversal.multisource.run_packed_batch` word,
* **streaming** — the anchor plus every same-graph pending group of the same
  streaming application (CC or PageRank), each group one platform lane of a
  shared :func:`~repro.traversal.streaming.run_streaming_batch` pass —

and scores each against :meth:`~repro.service.costmodel.CostModel.\
estimate_shared`.  A fused plan is chosen only when its predicted saving
exceeds the cost model's own mean estimate error, so a model that is still
guessing cannot justify aggressive fusion on noise.

The planner is *policy-visible*: the anchor group is still whatever the
scheduling policy selected, riders are claimed through
:meth:`~repro.service.queue.RequestQueue.claim_groups` (which refunds any
WFQ virtual time booked for them), and every decision is observable through
the service's ``plan`` span and ``repro_planner_*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..types import Application
from .costmodel import CostModel, SharedEstimate
from .jobs import Job

#: Lane capacity of one packed execution word (mirrors the traversal layer's
#: :data:`~repro.traversal.multisource.WORD_BITS` without importing numpy
#: machinery into the planning path).
MAX_LANES = 64


@dataclass
class FusionPlan:
    """One executable drain shape: which groups run together, and how.

    ``groups`` always starts with the policy-selected anchor group;
    ``rider_keys`` names the batch keys of every non-anchor group the plan
    wants claimed from the queue.  ``estimate`` is the cost model's shared
    pricing for fused plans (``None`` for the unfused baseline).
    """

    kind: str  # "solo" | "multisource" | "packed" | "streaming"
    application: Application
    graph: str
    groups: list[list[Job]]
    rider_keys: list[tuple] = field(default_factory=list)
    estimate: SharedEstimate | None = None
    #: Candidate plans the planner enumerated / scored-but-discarded while
    #: choosing this one (carried on the winner for observability).
    candidates_built: int = 1
    candidates_rejected: int = 0
    #: Seconds spent planning (snapshot scoring), for span attribution.
    planning_seconds: float = 0.0

    @property
    def lanes(self) -> int:
        """Execution lanes the plan occupies (jobs for packed, groups for streaming)."""
        if self.kind == "streaming":
            return len(self.groups)
        return sum(len(group) for group in self.groups)

    @property
    def jobs(self) -> list[Job]:
        return [job for group in self.groups for job in group]

    @property
    def fused(self) -> bool:
        return len(self.groups) > 1

    @property
    def shape(self) -> str:
        """Compact human-readable shape, e.g. ``packed:3x14`` (groups x lanes)."""
        return f"{self.kind}:{len(self.groups)}x{self.lanes}"

    def restrict(self, claimed: dict[tuple, list[Job]]) -> "FusionPlan":
        """Drop rider groups a concurrent worker drained between snapshot and claim.

        The anchor group is already popped and always survives; riders
        survive only if :meth:`RequestQueue.claim_groups` actually delivered
        them.  Returns ``self`` (mutated) for convenience.
        """
        survivors = [self.groups[0]]
        kept_keys = []
        for key, group in zip(self.rider_keys, self.groups[1:]):
            if key in claimed:
                survivors.append(claimed[key])  # repro: noqa[REPRO101] — O(groups) per drain
                kept_keys.append(key)  # repro: noqa[REPRO101] — O(groups) per drain
        self.groups = survivors
        self.rider_keys = kept_keys
        if not self.fused:
            # Every rider evaporated: the plan degrades to its baseline shape.
            self.kind = self._baseline_kind(self.application, self.groups[0])
            self.estimate = None
        return self

    @staticmethod
    def _baseline_kind(application: Application, anchor: list[Job]) -> str:
        if application.is_streaming:
            return "streaming"
        return "multisource" if len(anchor) > 1 else "solo"


class FusionPlanner:
    """Enumerates and scores fusion plans for one drained anchor group.

    Stateless apart from the shared :class:`CostModel`; safe to call from
    every worker thread concurrently.
    """

    def __init__(self, cost_model: CostModel, max_lanes: int = MAX_LANES) -> None:
        self._cost_model = cost_model
        self._max_lanes = max_lanes

    def build(
        self, anchor: list[Job], snapshot: dict[tuple, tuple[Job, ...]]
    ) -> tuple[FusionPlan, list[tuple]]:
        """Choose the cheapest plan for ``anchor`` given the backlog snapshot.

        Returns ``(plan, rider_keys)`` — the keys the caller should claim
        atomically; the plan must then be :meth:`FusionPlan.restrict`-ed to
        whatever the claim actually delivered.
        """
        request = anchor[0].request
        application = request.application
        graph = request.graph
        anchor_key = request.batch_key
        baseline = FusionPlan(
            kind=FusionPlan._baseline_kind(application, anchor),
            application=application,
            graph=graph,
            groups=[list(anchor)],
        )
        riders = self._compatible_riders(anchor_key, application, graph, snapshot)
        if not riders:
            return baseline, []
        if application.is_streaming:
            chosen_riders = riders  # every group is one lane; words chunk at 64
        else:
            chosen_riders = self._bin_pack(len(anchor), riders)
            if not chosen_riders:
                return baseline, []
        families = [(anchor_key, len(anchor))]
        families += [(key, len(jobs)) for key, jobs in chosen_riders]  # repro: noqa[REPRO101] — O(groups) per drain
        total_lanes = (
            len(families)
            if application.is_streaming
            else sum(width for _, width in families)
        )
        words = max(1, -(-total_lanes // self._max_lanes))
        estimate = self._cost_model.estimate_shared(families, words=words)
        fused = FusionPlan(
            kind="streaming" if application.is_streaming else "packed",
            application=application,
            graph=graph,
            groups=[list(anchor)] + [list(jobs) for _, jobs in chosen_riders],
            rider_keys=[key for key, _ in chosen_riders],
            estimate=estimate,
            candidates_built=2,
        )
        if estimate.confident:
            fused.candidates_rejected = 1  # the baseline lost
            return fused, fused.rider_keys
        baseline.candidates_built = 2
        baseline.candidates_rejected = 1  # the fused candidate lost
        return baseline, []

    # ------------------------------------------------------------------ #
    # Candidate enumeration
    # ------------------------------------------------------------------ #
    def _compatible_riders(
        self,
        anchor_key: tuple,
        application: Application,
        graph: str,
        snapshot: dict[tuple, tuple[Job, ...]],
    ) -> list[tuple[tuple, tuple[Job, ...]]]:
        """Pending groups that could share the anchor's algorithm execution.

        Same graph and same application, different batch key (a different
        platform configuration — same-key jobs are already in the anchor).
        Batch keys are ``(graph, application, strategy, system)`` by
        construction, so the first two positions identify compatibility.
        """
        return [
            (key, jobs)
            for key, jobs in snapshot.items()
            if key != anchor_key
            and key[0] == graph
            and key[1] == application.value
            and jobs
        ]

    def _bin_pack(
        self, anchor_width: int, riders: list[tuple[tuple, tuple[Job, ...]]]
    ) -> list[tuple[tuple, tuple[Job, ...]]]:
        """Greedy smallest-first packing of rider groups into the free lanes.

        BFS/SSSP lanes are per *job* (each source is a lane), so only small
        groups fit alongside the anchor; packing smallest-first maximizes the
        number of groups that share the word.  An anchor already at or above
        the word width packs nothing.
        """
        free = self._max_lanes - anchor_width
        packed: list[tuple[tuple, tuple[Job, ...]]] = []
        for key, jobs in sorted(riders, key=lambda item: (len(item[1]), item[0])):
            if len(jobs) > free:
                break
            packed.append((key, jobs))  # repro: noqa[REPRO101] — O(groups) per drain
            free -= len(jobs)
        return packed
