"""Named-graph registry with memoization and byte-budgeted LRU eviction.

The serving layer never ships graphs over the wire: clients name a graph and
the registry owns loading it (from the Table 2 dataset generators, a custom
loader callable, or a pre-built :class:`~repro.graph.csr.CSRGraph`).  Loaded
graphs are memoized so concurrent requests share one CSR instance, and an
optional byte budget bounds how much simulated memory stays resident — least
recently used graphs are dropped first and transparently reloaded on the next
request.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from ..analysis.lockorder import tracked_rlock
from ..errors import ConfigurationError, ServiceError, UnknownGraphError
from ..graph.csr import CSRGraph
from ..graph.datasets import load_dataset
from . import faults


@dataclass(frozen=True)
class RegistryStats:
    """Counters describing registry behaviour since construction."""

    loads: int
    evictions: int
    hits: int
    misses: int
    resident_graphs: int
    resident_bytes: int
    budget_bytes: int | None
    #: Graphs registered via :meth:`GraphRegistry.register_graph`, whose
    #: bytes are pinned by the loader closure: evicting them drops only the
    #: registry's reference, never the underlying memory.  Reported
    #: separately so ``resident_bytes`` shrinking on eviction is not read as
    #: those bytes actually having been released.
    pinned_graphs: int = 0
    pinned_bytes: int = 0


class GraphRegistry:
    """Thread-safe loader/cache for the graphs a service can traverse.

    ``budget_bytes`` bounds the *simulated* footprint of resident graphs
    (:attr:`CSRGraph.total_bytes`, the quantity the whole simulator is built
    around); the most recently used graph is always kept resident even when it
    alone exceeds the budget, since evicting it would only force an immediate
    reload.
    """

    def __init__(self, budget_bytes: int | None = None) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise ConfigurationError("budget_bytes must be positive or None")
        self.budget_bytes = budget_bytes
        self._lock = tracked_rlock("service.GraphRegistry._lock")
        #: Per-name events marking loads in progress, so concurrent requests
        #: for the same graph wait for one load instead of duplicating it,
        #: while loads of *different* graphs (and hits on resident ones)
        #: proceed without serializing behind a slow generator.
        self._loading: dict[str, threading.Event] = {}
        self._loaders: dict[str, Callable[[], CSRGraph]] = {}
        #: Simulated bytes per graph registered through register_graph: those
        #: loaders close over the CSRGraph itself, so the bytes stay alive for
        #: the registry's lifetime whatever the LRU does (see register_graph).
        self._pinned: dict[str, int] = {}
        self._resident: OrderedDict[str, CSRGraph] = OrderedDict()
        self._loads = 0
        self._evictions = 0
        self._hits = 0
        self._misses = 0
        #: Lifecycle listeners (durable catalog, warm backfill).  Always
        #: invoked *outside* the registry lock, and a listener raising never
        #: breaks the load/eviction that triggered it.
        self._load_listeners: list[Callable[[str, CSRGraph], None]] = []
        self._evict_listeners: list[Callable[[str], None]] = []

    # ------------------------------------------------------------------ #
    # Lifecycle listeners
    # ------------------------------------------------------------------ #
    def add_load_listener(self, callback: Callable[[str, CSRGraph], None]) -> None:
        """Call ``callback(name, graph)`` after every completed load."""
        with self._lock:
            self._load_listeners.append(callback)

    def add_evict_listener(self, callback: Callable[[str], None]) -> None:
        """Call ``callback(name)`` after every eviction (any path)."""
        with self._lock:
            self._evict_listeners.append(callback)

    def _notify_load(self, name: str, graph: CSRGraph) -> None:
        for callback in list(self._load_listeners):
            try:
                callback(name, graph)
            except Exception:
                pass

    def _notify_evictions(self, names: "list[str]") -> None:
        for evicted in names:
            for callback in list(self._evict_listeners):
                try:
                    callback(evicted)
                except Exception:
                    pass

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, loader: Callable[[], CSRGraph]) -> None:
        """Register a zero-argument loader producing the graph on demand."""
        if not name:
            raise ServiceError("graph name must be non-empty")
        with self._lock:
            if name in self._loaders:
                raise ServiceError(f"graph {name!r} is already registered")
            self._loaders[name] = loader

    def register_graph(self, graph: CSRGraph, name: str | None = None) -> str:
        """Register an already-built graph under ``name`` (default: its own).

        The loader closes over ``graph``, which *pins* it: :meth:`evict` and
        budget eviction only drop the registry's resident reference, so for
        pinned graphs eviction frees no memory (reloading is instant for the
        same reason).  Use :meth:`register` with a loader that rebuilds the
        graph when evictability matters; pinned bytes are reported separately
        in :class:`RegistryStats` so the eviction counters stay honest.
        """
        name = name or graph.name
        self.register(name, lambda: graph)
        with self._lock:
            self._pinned[name] = graph.total_bytes
        return name

    def register_dataset(self, symbol: str, name: str | None = None, **load_kwargs) -> str:
        """Register one of the paper's Table 2 datasets by symbol.

        Extra keyword arguments are forwarded to
        :func:`repro.graph.datasets.load_dataset` (e.g. ``scale=40000`` for a
        quick-to-generate analog).  The module-level dataset cache is bypassed
        so that evicting the graph here actually releases it.
        """
        name = name or symbol
        load_kwargs.setdefault("use_cache", False)
        self.register(name, lambda: load_dataset(symbol, **load_kwargs))
        return name

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> CSRGraph:
        """Fetch a graph, loading (and possibly evicting others) as needed.

        The loader runs *outside* the registry lock: a slow dataset
        generation blocks only requests for that same graph (they wait on a
        per-name event), never hits on resident graphs or loads of other
        graphs.
        """
        while True:
            with self._lock:
                if name in self._resident:
                    self._hits += 1
                    self._resident.move_to_end(name)
                    return self._resident[name]
                if name not in self._loaders:
                    raise UnknownGraphError(
                        f"unknown graph {name!r}; registered: "
                        f"{', '.join(sorted(self._loaders)) or '(none)'}"
                    )
                pending = self._loading.get(name)
                if pending is None:
                    loader = self._loaders[name]
                    pending = self._loading[name] = threading.Event()
                    self._misses += 1
                    break
            # Another thread is loading this graph; wait and re-check (if its
            # load failed, the next iteration elects this thread as loader).
            pending.wait()
        try:
            # Injected loader faults fire exactly where a real loader failure
            # would: after this thread won the load election, outside the
            # lock, with the standard failure cleanup (re-election) below.
            faults.check("registry.load", graph=name)
            graph = loader()
            if not isinstance(graph, CSRGraph):
                raise ServiceError(
                    f"loader for {name!r} returned {type(graph).__name__}, not CSRGraph"
                )
        except BaseException:
            with self._lock:
                del self._loading[name]
            pending.set()
            raise
        with self._lock:
            self._loads += 1
            self._resident[name] = graph
            evicted = self._evict_over_budget()
            del self._loading[name]
        pending.set()
        self._notify_evictions(evicted)
        self._notify_load(name, graph)
        return graph

    def metadata(self, name: str) -> dict:
        """Structural metadata for a registered graph.

        Metadata comes from the graph itself, so a graph that is not resident
        is loaded first (and becomes the most recently used entry, exactly as
        a traversal request for it would).
        """
        graph = self.get(name)
        return {
            "name": name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "directed": graph.directed,
            "weighted": graph.has_weights,
            "total_bytes": graph.total_bytes,
            **dict(graph.meta),
        }

    def peek(self, name: str) -> CSRGraph | None:
        """The resident graph named ``name``, or None — never loads.

        Unlike :meth:`get` this neither triggers the loader nor touches the
        LRU order, so cheap introspection (e.g. the cost model bootstrapping
        an estimate from graph size) cannot evict anything or block on a slow
        load.
        """
        with self._lock:
            return self._resident.get(name)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._loaders))

    def resident_names(self) -> tuple[str, ...]:
        """Resident graphs, least recently used first."""
        with self._lock:
            return tuple(self._resident)

    def resident_bytes(self) -> int:
        with self._lock:
            return sum(graph.total_bytes for graph in self._resident.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._loaders

    def __len__(self) -> int:
        with self._lock:
            return len(self._loaders)

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #
    def evict(self, name: str) -> bool:
        """Drop one resident graph; returns whether it was resident.

        For graphs registered via :meth:`register_graph` this only removes
        the registry's reference — the loader closure still pins the actual
        bytes (see :class:`RegistryStats`).
        """
        with self._lock:
            if name not in self._resident:
                return False
            del self._resident[name]
            self._evictions += 1
        self._notify_evictions([name])
        return True

    def clear_resident(self) -> None:
        """Drop every resident graph (registrations are kept)."""
        with self._lock:
            dropped = list(self._resident)
            self._evictions += len(self._resident)
            self._resident.clear()
        self._notify_evictions(dropped)

    def _evict_over_budget(self) -> "list[str]":
        evicted: list[str] = []
        if self.budget_bytes is None:
            return evicted
        while (
            len(self._resident) > 1
            and sum(g.total_bytes for g in self._resident.values()) > self.budget_bytes
        ):
            evicted.append(self._resident.popitem(last=False)[0])
            self._evictions += 1
        return evicted

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #
    def stats(self) -> RegistryStats:
        with self._lock:
            return RegistryStats(
                loads=self._loads,
                evictions=self._evictions,
                hits=self._hits,
                misses=self._misses,
                resident_graphs=len(self._resident),
                resident_bytes=sum(g.total_bytes for g in self._resident.values()),
                budget_bytes=self.budget_bytes,
                pinned_graphs=len(self._pinned),
                pinned_bytes=sum(self._pinned.values()),
            )
