"""Thread-pool execution backend for the serving layer.

Traversal jobs are CPU-bound numpy work, which releases the GIL often enough
for a modest thread pool to overlap useful work; more importantly the pool
bounds concurrency, provides graceful shutdown, and counts what is in flight
for the stats snapshot.  The executor is an implementation detail — nothing
outside this module touches ``concurrent.futures``.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

from ..analysis.lockorder import tracked_lock
from ..errors import ConfigurationError, ServiceClosedError


class WorkerPool:
    """A bounded ``ThreadPoolExecutor`` with active-task accounting."""

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        self.max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._lock = tracked_lock("service.WorkerPool._lock")
        self._active = 0
        self._dispatched = 0
        self._rejected = 0
        self._closed = False

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)`` on the pool.

        After :meth:`shutdown` this raises :class:`ServiceClosedError` (a
        ``ServiceError``) rather than the executor's bare ``RuntimeError``,
        and the refusal is counted for the stats snapshot.
        """
        # The closed check and the executor submit happen under one lock so a
        # concurrent shutdown() cannot slip between them; any residual
        # executor-level refusal surfaces as the same ServiceClosedError.
        with self._lock:
            if self._closed:
                self._rejected += 1
                raise ServiceClosedError("worker pool is shut down")
            try:
                future = self._executor.submit(fn, *args, **kwargs)
            except RuntimeError as exc:
                self._rejected += 1
                raise ServiceClosedError("worker pool is shut down") from exc
            self._active += 1
            self._dispatched += 1
        # The decrement lives in a done-callback, not a wrapper around ``fn``:
        # ``shutdown(cancel_pending=True)`` cancels queued tasks whose body
        # never runs, and a wrapper-based decrement then leaked ``_active``
        # forever.  Done-callbacks fire for completion, failure AND
        # cancellation, exactly once each.  Added outside the lock: a future
        # that already finished runs the callback inline on this thread, and
        # taking the (non-reentrant) lock while holding it would deadlock.
        future.add_done_callback(self._task_done)
        return future

    def _task_done(self, _future: Future) -> None:
        with self._lock:
            self._active -= 1

    @property
    def active(self) -> int:
        """Tasks currently queued on or running in the executor."""
        with self._lock:
            return self._active

    @property
    def dispatched(self) -> int:
        """Total tasks ever submitted to the pool."""
        with self._lock:
            return self._dispatched

    @property
    def rejected_after_close(self) -> int:
        """Submissions refused because the pool was already shut down."""
        with self._lock:
            return self._rejected

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop the pool; ``cancel_pending`` drops tasks not yet started."""
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)
