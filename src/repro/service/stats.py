"""Aggregated serving statistics.

:meth:`repro.service.Service.stats` returns one immutable
:class:`ServiceStats` snapshot combining the service's own counters with those
of its result cache and graph registry, so operators (and tests) read a single
consistent view instead of poking at internals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from .cache import CacheStats
from .costmodel import CostModelStats
from .registry import RegistryStats


@dataclass(frozen=True)
class LatencyStats:
    """Percentile summary of a sliding window of per-job latency samples.

    Computed over the most recent ``ServiceConfig.latency_window`` finished
    jobs, so a long-running server reports current behaviour rather than an
    all-time average that no longer means anything.
    """

    count: int = 0
    mean_seconds: float = 0.0
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0
    p99_seconds: float = 0.0
    max_seconds: float = 0.0

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencyStats":
        ordered = sorted(samples)
        if not ordered:
            return cls()

        def percentile(fraction: float) -> float:
            # Ceil-based nearest rank over the n-1 gaps: round *up* to the
            # next sample, never down.  ``round`` here (with Python's
            # banker's rounding) used to make p50 of an even-sized window
            # return the lower sample — p50 of two samples was the minimum —
            # silently understating every even-window percentile.  A latency
            # percentile should err conservative.
            index = min(len(ordered) - 1, math.ceil(fraction * (len(ordered) - 1)))
            return ordered[index]

        return cls(
            count=len(ordered),
            mean_seconds=sum(ordered) / len(ordered),
            p50_seconds=percentile(0.50),
            p95_seconds=percentile(0.95),
            p99_seconds=percentile(0.99),
            max_seconds=ordered[-1],
        )

    def describe_ms(self) -> str:
        """Compact ``p50/p95/p99`` rendering in milliseconds."""
        return (
            f"{self.p50_seconds * 1e3:.2f}/{self.p95_seconds * 1e3:.2f}/"
            f"{self.p99_seconds * 1e3:.2f} ms"
        )


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant serving outcomes (jobs attributed to their first submitter)."""

    #: Jobs of this tenant that finished successfully.
    completed: int = 0
    #: Deadline-carrying jobs of this tenant that blew their tightest budget
    #: (finished late, failed, or expired in the queue).
    missed: int = 0


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time snapshot of a running service."""

    #: Total ``submit()`` calls accepted.
    submitted: int
    #: Submissions coalesced onto an identical in-flight job.
    deduplicated: int
    #: Jobs that finished successfully (including cache-served ones).
    completed: int
    #: Jobs that finished with an error.
    failed: int
    #: Engine invocations (a cache hit or a deduplicated submit runs nothing).
    executions: int
    #: Batch groups drained by workers.
    batches: int
    #: Jobs queued, not yet picked up by a worker.
    pending: int
    #: Worker tasks queued on or running in the pool.
    active_workers: int
    #: Wall-clock seconds workers spent inside the engine.
    engine_seconds: float
    #: Wall-clock seconds since the service was constructed.
    uptime_seconds: float
    cache: CacheStats
    registry: RegistryStats
    #: Active scheduling policy name ("fifo" / "largest" / "edf" / "wfq").
    policy: str = "fifo"
    #: Submissions refused by admission control (queue limit / tenant quota /
    #: infeasible deadline).
    rejected: int = 0
    #: The subset of ``rejected`` refused because the cost model judged the
    #: requested deadline unmeetable at arrival.
    rejected_infeasible: int = 0
    #: Jobs failed because their deadline passed while still queued.
    expired: int = 0
    #: Deadline-carrying jobs that completed within their budget.
    deadlines_met: int = 0
    #: Deadline-carrying jobs that finished late, failed, or expired.
    deadlines_missed: int = 0
    #: Queueing delay (submission -> execution start) percentiles.
    queue_wait: LatencyStats = field(default_factory=LatencyStats)
    #: End-to-end latency (submission -> completion) percentiles.
    latency: LatencyStats = field(default_factory=LatencyStats)
    #: Coverage and accuracy of the online cost model feeding WFQ and
    #: infeasible-deadline admission.
    cost_model: CostModelStats = field(default_factory=CostModelStats)
    #: Per-tenant completed/missed breakdown (``None`` = anonymous traffic).
    tenants: Mapping[str | None, TenantStats] = field(default_factory=dict)
    #: Backoff retries of transient graph-load / sweep failures.
    retries: int = 0
    #: Sweeps cancelled by the cooperative watchdog (SweepTimeoutError).
    sweep_timeouts: int = 0
    #: Fused multisource/streaming groups whose members were re-executed solo
    #: after a group failure (fault isolation).
    isolations: int = 0
    #: Sweeps served by the numpy relaxation backend because the native
    #: circuit breaker was open or tripping (values stay bit-identical).
    degraded: int = 0
    #: Native-backend circuit breaker state: closed / half_open / open.
    breaker_state: str = "closed"
    #: Submissions refused because the service or its pool was already closed.
    rejected_after_close: int = 0
    #: Faults fired by the active fault-injection plan (0 without a plan).
    faults_injected: int = 0
    #: Result-cache get/put failures absorbed by the service (a failing read
    #: is a miss, a failing write is dropped; requests never fail on these).
    cache_errors: int = 0
    #: Durable-store condition: ``disabled`` (no store configured), ``ok``,
    #: ``degraded`` (breaker open / connection lost — serving is in-memory
    #: only), or ``quarantined`` (durable again after renaming a corrupt
    #: predecessor aside this boot).
    store_state: str = "disabled"
    #: Requests answered from the persistent result cache (reads the
    #: in-memory cache missed).
    store_hits: int = 0
    #: Rows written through to the store by the flush thread.
    store_writes: int = 0
    #: Write-through batches committed (each one transaction).
    store_flushes: int = 0
    #: Store failures absorbed (armed faults included); these trip the store
    #: breaker, never requests.
    store_errors: int = 0
    #: Pending write-through ops queued for the flush thread.
    store_pending: int = 0
    #: Cached results re-installed into the in-memory cache at graph load
    #: (warm restart backfill).
    store_backfilled: int = 0

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second of uptime."""
        if self.uptime_seconds <= 0:
            return 0.0
        return self.completed / self.uptime_seconds

    @property
    def dedup_rate(self) -> float:
        """Fraction of submissions answered by an already in-flight job."""
        if self.submitted == 0:
            return 0.0
        return self.deduplicated / self.submitted

    @property
    def amortization(self) -> float:
        """Average executed jobs per batch (>1 means batching paid off)."""
        if self.batches == 0:
            return 0.0
        return self.executions / self.batches

    @property
    def deadline_hit_rate(self) -> float:
        """Fraction of deadline-carrying jobs that finished in time."""
        total = self.deadlines_met + self.deadlines_missed
        return self.deadlines_met / total if total else 0.0

    def describe(self) -> str:
        """Multi-line human-readable rendering used by the CLI report."""
        lines = [
            f"submitted={self.submitted}  deduplicated={self.deduplicated} "
            f"({self.dedup_rate:.0%})  completed={self.completed}  failed={self.failed}",
            f"scheduling: policy={self.policy}  rejected={self.rejected} "
            f"({self.rejected_infeasible} infeasible)  expired={self.expired}  "
            f"deadlines {self.deadlines_met} met / "
            f"{self.deadlines_missed} missed",
            f"cost model: {self.cost_model.describe()}",
            f"latency p50/p95/p99: queued {self.queue_wait.describe_ms()}, "
            f"total {self.latency.describe_ms()} "
            f"(window of {self.latency.count})",
            f"engine executions={self.executions} in {self.batches} batches "
            f"(amortization {self.amortization:.2f} jobs/batch, "
            f"{self.engine_seconds:.3f}s in engine)",
            f"result cache: {self.cache.hits} hits / {self.cache.misses} misses "
            f"({self.cache.hit_rate:.0%} hit rate), {self.cache.entries} entries, "
            f"{self.cache.evictions} evictions",
            f"registry: {self.registry.loads} loads, {self.registry.hits} hits, "
            f"{self.registry.evictions} evictions, "
            f"{self.registry.resident_graphs} resident "
            f"({self.registry.resident_bytes} simulated bytes, "
            f"{self.registry.pinned_bytes} pinned by loader closures)",
            f"resilience: {self.retries} retries, {self.sweep_timeouts} sweep "
            f"timeouts, {self.isolations} fused groups isolated, "
            f"{self.degraded} degraded sweeps, breaker {self.breaker_state}, "
            f"{self.rejected_after_close} rejected after close, "
            f"{self.faults_injected} faults injected, "
            f"{self.cache_errors} cache errors absorbed",
            f"store: {self.store_state}, {self.store_hits} hits, "
            f"{self.store_writes} writes in {self.store_flushes} flushes, "
            f"{self.store_backfilled} backfilled, "
            f"{self.store_errors} errors absorbed, "
            f"{self.store_pending} pending",
        ]
        if self.tenants:
            lines.append(
                "tenants: "
                + "  ".join(
                    f"{tenant or '(anonymous)'}: {outcome.completed} completed / "
                    f"{outcome.missed} missed"
                    for tenant, outcome in self.tenants.items()
                )
            )
        return "\n".join(lines)
