"""Aggregated serving statistics.

:meth:`repro.service.Service.stats` returns one immutable
:class:`ServiceStats` snapshot combining the service's own counters with those
of its result cache and graph registry, so operators (and tests) read a single
consistent view instead of poking at internals.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import CacheStats
from .registry import RegistryStats


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time snapshot of a running service."""

    #: Total ``submit()`` calls accepted.
    submitted: int
    #: Submissions coalesced onto an identical in-flight job.
    deduplicated: int
    #: Jobs that finished successfully (including cache-served ones).
    completed: int
    #: Jobs that finished with an error.
    failed: int
    #: Engine invocations (a cache hit or a deduplicated submit runs nothing).
    executions: int
    #: Batch groups drained by workers.
    batches: int
    #: Jobs queued, not yet picked up by a worker.
    pending: int
    #: Worker tasks queued on or running in the pool.
    active_workers: int
    #: Wall-clock seconds workers spent inside the engine.
    engine_seconds: float
    #: Wall-clock seconds since the service was constructed.
    uptime_seconds: float
    cache: CacheStats
    registry: RegistryStats

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second of uptime."""
        if self.uptime_seconds <= 0:
            return 0.0
        return self.completed / self.uptime_seconds

    @property
    def dedup_rate(self) -> float:
        """Fraction of submissions answered by an already in-flight job."""
        if self.submitted == 0:
            return 0.0
        return self.deduplicated / self.submitted

    @property
    def amortization(self) -> float:
        """Average executed jobs per batch (>1 means batching paid off)."""
        if self.batches == 0:
            return 0.0
        return self.executions / self.batches

    def describe(self) -> str:
        """Multi-line human-readable rendering used by the CLI report."""
        lines = [
            f"submitted={self.submitted}  deduplicated={self.deduplicated} "
            f"({self.dedup_rate:.0%})  completed={self.completed}  failed={self.failed}",
            f"engine executions={self.executions} in {self.batches} batches "
            f"(amortization {self.amortization:.2f} jobs/batch, "
            f"{self.engine_seconds:.3f}s in engine)",
            f"result cache: {self.cache.hits} hits / {self.cache.misses} misses "
            f"({self.cache.hit_rate:.0%} hit rate), {self.cache.entries} entries, "
            f"{self.cache.evictions} evictions",
            f"registry: {self.registry.loads} loads, {self.registry.hits} hits, "
            f"{self.registry.evictions} evictions, "
            f"{self.registry.resident_graphs} resident "
            f"({self.registry.resident_bytes} simulated bytes)",
        ]
        return "\n".join(lines)
