"""LRU cache of completed traversal results.

Keys are :attr:`TraversalRequest.cache_key` tuples — ``(graph, app, source,
strategy, system)`` — so a cached entry is exactly "the answer to this
request".  Traversals here are deterministic (the simulator has no hidden
state), which is what makes serving a repeat request from cache semantically
identical to re-running it, minus the simulated run time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..analysis.lockorder import tracked_lock
from ..errors import ConfigurationError
from ..traversal.results import TraversalResult
from . import faults


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters plus current occupancy."""

    hits: int
    misses: int
    evictions: int
    entries: int
    max_entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """Thread-safe LRU map from request cache keys to traversal results.

    ``max_entries=0`` disables caching entirely (every lookup misses, stores
    are dropped), which keeps the service code free of special cases.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 0:
            raise ConfigurationError("max_entries cannot be negative")
        self.max_entries = max_entries
        self._lock = tracked_lock("service.ResultCache._lock")
        self._entries: OrderedDict[tuple, TraversalResult] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: tuple) -> TraversalResult | None:
        faults.check("cache.get")
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(key)
            return result

    def put(self, key: tuple, result: TraversalResult) -> None:
        faults.check("cache.put")
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                max_entries=self.max_entries,
            )
