"""Concurrent graph-traversal serving layer.

The library's one-shot API (:mod:`repro.traversal.api`) answers a single
traversal; this package turns it into a multi-tenant server in the spirit of
the serving stacks built over specialized engines:

* :class:`GraphRegistry` — named graphs, loaded once, byte-budgeted LRU
  residency (:mod:`repro.service.registry`);
* :class:`TraversalRequest` — hashable normalized requests
  (:mod:`repro.service.requests`);
* :class:`RequestQueue` — in-flight deduplication + same-configuration
  batching + bounded admission (:mod:`repro.service.queue`);
* :class:`SchedulingPolicy` — pluggable drain ordering: FIFO, largest batch
  first, earliest deadline first, weighted-fair queueing over tenants
  (:mod:`repro.service.scheduler`);
* :class:`CostModel` — online EWMA estimates of per-batch-family engine
  seconds, feeding WFQ ordering and infeasible-deadline admission
  (:mod:`repro.service.costmodel`);
* :class:`WorkerPool` — bounded thread-pool execution
  (:mod:`repro.service.workers`);
* :class:`ResultCache` — LRU result reuse with hit/miss accounting
  (:mod:`repro.service.cache`);
* :class:`FaultPlan` — deterministic fault injection at named sites, armed
  via ``ServiceConfig(fault_plan=...)`` or ``REPRO_FAULTS``
  (:mod:`repro.service.faults`);
* :class:`RetryPolicy` / :class:`Cancellation` / :class:`CircuitBreaker` —
  backoff retries, cooperative sweep timeouts, and native-backend breaking
  with bit-identical numpy degradation (:mod:`repro.service.resilience`);
* :class:`Service` — the front door: ``submit() / result() / stats()``
  (:mod:`repro.service.service`);
* :func:`serve_workload_file` — declarative JSON workloads, also behind
  ``python -m repro.cli serve-batch`` (:mod:`repro.service.workload`).
"""

from ..config import SCHEDULING_POLICIES, ServiceConfig, normalize_tenant_weights
from ..errors import (
    AdmissionError,
    DeadlineExceededError,
    FaultInjectedError,
    InfeasibleDeadlineError,
    NativeBackendError,
    PermanentFaultError,
    RetryableError,
    ServiceClosedError,
    SweepTimeoutError,
    TransientFaultError,
)
from ..obs import MetricsRegistry, Span, Tracer, tracing_enabled
from .cache import CacheStats, ResultCache
from .costmodel import CostModel, CostModelStats
from .faults import FaultPlan, FaultSpec
from .jobs import Job, JobStatus
from .queue import RequestQueue
from .registry import GraphRegistry, RegistryStats
from .requests import TraversalRequest
from .resilience import (
    BREAKER_STATE_CODES,
    Cancellation,
    CircuitBreaker,
    RetryPolicy,
    cancellation_scope,
    current_cancellation,
)
from .scheduler import (
    EdfPolicy,
    FifoPolicy,
    LargestBatchPolicy,
    SchedulingPolicy,
    WeightedFairPolicy,
    make_policy,
)
from .service import Engine, Service, default_engine
from .stats import LatencyStats, ServiceStats, TenantStats
from .store import STORE_STATE_CODES, ServingStore, StoreStats, graph_fingerprint
from .workers import WorkerPool
from .workload import (
    WorkloadReport,
    build_service,
    config_from_spec,
    expand_requests,
    load_workload,
    run_workload,
    serve_workload_file,
)

__all__ = [
    "AdmissionError",
    "BREAKER_STATE_CODES",
    "CacheStats",
    "Cancellation",
    "CircuitBreaker",
    "CostModel",
    "CostModelStats",
    "DeadlineExceededError",
    "EdfPolicy",
    "FaultInjectedError",
    "FaultPlan",
    "FaultSpec",
    "NativeBackendError",
    "PermanentFaultError",
    "RetryPolicy",
    "RetryableError",
    "ServiceClosedError",
    "SweepTimeoutError",
    "TransientFaultError",
    "Engine",
    "FifoPolicy",
    "GraphRegistry",
    "InfeasibleDeadlineError",
    "Job",
    "JobStatus",
    "LargestBatchPolicy",
    "LatencyStats",
    "MetricsRegistry",
    "RegistryStats",
    "RequestQueue",
    "ResultCache",
    "SCHEDULING_POLICIES",
    "STORE_STATE_CODES",
    "SchedulingPolicy",
    "Service",
    "ServiceConfig",
    "ServiceStats",
    "ServingStore",
    "StoreStats",
    "graph_fingerprint",
    "Span",
    "TenantStats",
    "TraversalRequest",
    "Tracer",
    "WeightedFairPolicy",
    "WorkerPool",
    "WorkloadReport",
    "make_policy",
    "normalize_tenant_weights",
    "build_service",
    "cancellation_scope",
    "current_cancellation",
    "config_from_spec",
    "default_engine",
    "expand_requests",
    "load_workload",
    "run_workload",
    "serve_workload_file",
    "tracing_enabled",
]
