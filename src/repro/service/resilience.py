"""Resilience primitives: cancellation tokens, retry backoff, circuit breaker.

Three mechanisms the drain path composes (see ``repro.service.service``):

Cooperative sweep timeouts
    A :class:`Cancellation` token carries a deadline; the worker thread
    installs it with :func:`cancellation_scope` around an engine invocation
    and every :meth:`TraversalEngine.process_frontier` iteration calls
    :func:`iteration_checkpoint`, which polls the thread's current token.
    Solo, multisource and streaming sweeps all funnel through
    ``process_frontier``, so one hook covers every execution shape.  The
    token *is* the watchdog — there is no killer thread (numpy work cannot
    be interrupted from outside anyway); instead the sweep observes its own
    overrun at the next iteration boundary and raises
    :class:`SweepTimeoutError`.

Retry backoff
    :class:`RetryPolicy` computes exponential backoff with deterministic
    seeded jitter.  The service clips every computed delay to the group's
    nearest deadline so a retry never runs past an EDF/WFQ budget.

Circuit breaker
    :class:`CircuitBreaker` guards the native relaxation backend: closed
    (native allowed) → open after ``failure_threshold`` consecutive
    ``NativeBackendError``s (numpy only) → half-open after
    ``cooldown_seconds`` (one probe sweep may try native again).  Because
    every relaxation backend is bit-identical, degradation changes latency,
    never values.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from ..analysis.lockorder import tracked_lock
from ..errors import SweepTimeoutError
from . import faults


class Cancellation:
    """A cooperative cancel/deadline token polled at iteration boundaries."""

    __slots__ = ("label", "deadline_at", "_cancelled", "_reason")

    def __init__(
        self, budget_seconds: float | None = None, label: str = "sweep"
    ) -> None:
        self.label = label
        self.deadline_at = (
            time.perf_counter() + budget_seconds if budget_seconds is not None else None
        )
        self._cancelled = False
        self._reason = ""

    def cancel(self, reason: str = "cancelled") -> None:
        self._cancelled = True
        self._reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def remaining(self) -> float | None:
        if self.deadline_at is None:
            return None
        return self.deadline_at - time.perf_counter()

    def check(self) -> None:
        """Raise :class:`SweepTimeoutError` if cancelled or past deadline."""
        if self._cancelled:
            raise SweepTimeoutError(
                f"{self.label} cancelled: {self._reason or 'cancelled'}"
            )
        if self.deadline_at is not None and time.perf_counter() >= self.deadline_at:
            raise SweepTimeoutError(
                f"{self.label} exceeded its watchdog budget and was cancelled "
                "at an iteration boundary"
            )


_current = threading.local()


def current_cancellation() -> Cancellation | None:
    return getattr(_current, "token", None)


@contextmanager
def cancellation_scope(token: Cancellation | None) -> Iterator[Cancellation | None]:
    """Install ``token`` as the thread's current cancellation (``None`` = no-op).

    Engines run on the thread that invokes them — including fused multisource
    and streaming sweeps — so a thread-local is exactly the right scope.
    """
    if token is None:
        yield None
        return
    previous = getattr(_current, "token", None)
    _current.token = token
    try:
        yield token
    finally:
        _current.token = previous


def iteration_checkpoint() -> None:
    """Per-iteration hook called by :meth:`TraversalEngine.process_frontier`.

    Fires any armed ``engine.sweep`` fault, then polls the thread's current
    cancellation token.  With chaos off and no token installed this is two
    reads — cheap enough for every iteration of every sweep.
    """
    faults.check("engine.sweep")
    token = getattr(_current, "token", None)
    if token is not None:
        token.check()


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter.

    ``limit`` counts retries *beyond* the first attempt; ``delay(attempt)``
    is ``backoff * multiplier**attempt`` scaled by up to ``jitter`` relative
    noise from the caller-owned RNG (seeded, so chaos runs are replayable).
    """

    limit: int = 2
    backoff_seconds: float = 0.02
    multiplier: float = 2.0
    jitter: float = 0.25

    def delay(self, attempt: int, rng: random.Random) -> float:
        base = self.backoff_seconds * (self.multiplier ** max(0, attempt))
        if self.jitter <= 0:
            return base
        return base * (1.0 + self.jitter * rng.random())


class CircuitBreaker:
    """Closed → open on consecutive failures → half-open probe, thread-safe.

    ``allow()`` answers "may the protected backend be used for this call?".
    In the half-open state exactly one caller wins the probe; everyone else
    stays degraded until :meth:`record_success` closes the circuit or
    :meth:`record_failure` re-opens it (re-arming the cooldown).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        on_transition: Callable[[str], None] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds < 0:
            raise ValueError(f"cooldown_seconds must be >= 0, got {cooldown_seconds}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._on_transition = on_transition
        self._clock = clock
        self._lock = tracked_lock("service.CircuitBreaker._lock")
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_granted = False
        self._transitions = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state_locked()

    def _effective_state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            return self.HALF_OPEN
        return self._state

    def _transition_locked(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        self._transitions += 1
        callback = self._on_transition
        if callback is not None:
            callback(state)

    def allow(self) -> bool:
        with self._lock:
            effective = self._effective_state_locked()
            if effective == self.CLOSED:
                return True
            if effective == self.HALF_OPEN:
                self._transition_locked(self.HALF_OPEN)
                if not self._probe_granted:
                    self._probe_granted = True
                    return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_granted = False
            self._opened_at = None
            self._transition_locked(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probe_granted = False
            if (
                self._state != self.CLOSED
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition_locked(self.OPEN)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._effective_state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "transitions": self._transitions,
            }


#: Numeric encoding of breaker states for the Prometheus gauge.
BREAKER_STATE_CODES = {
    CircuitBreaker.CLOSED: 0,
    CircuitBreaker.HALF_OPEN: 1,
    CircuitBreaker.OPEN: 2,
}
