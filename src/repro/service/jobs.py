"""Job objects tracking one accepted request through its lifecycle.

A job moves ``PENDING → RUNNING → DONE`` (or ``FAILED``); completion is
signalled through a :class:`threading.Event` so any number of clients —
including the duplicates that were coalesced onto this job — can block on the
same result.  Wall-clock timestamps record queueing delay and execution time
separately, which is what the serving benchmark reports as latency.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field

from ..traversal.results import TraversalResult
from .requests import TraversalRequest


class JobStatus(enum.Enum):
    """Lifecycle states of a submitted traversal job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One unit of scheduled work: a request plus its execution state."""

    job_id: str
    request: TraversalRequest
    status: JobStatus = JobStatus.PENDING
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: float | None = None
    finished_at: float | None = None
    result: TraversalResult | None = None
    error: BaseException | None = None
    #: True when the result was served from the result cache without running
    #: the engine.
    from_cache: bool = False
    _event: threading.Event = field(default_factory=threading.Event, repr=False)

    # ------------------------------------------------------------------ #
    # Transitions (called by the service; jobs are passive records)
    # ------------------------------------------------------------------ #
    def mark_running(self) -> None:
        self.status = JobStatus.RUNNING
        self.started_at = time.perf_counter()

    def mark_done(self, result: TraversalResult, from_cache: bool = False) -> None:
        if self.started_at is None:
            self.started_at = time.perf_counter()
        self.result = result
        self.from_cache = from_cache
        self.status = JobStatus.DONE
        self.finished_at = time.perf_counter()
        self._event.set()

    def mark_failed(self, error: BaseException) -> None:
        if self.started_at is None:
            self.started_at = time.perf_counter()
        self.error = error
        self.status = JobStatus.FAILED
        self.finished_at = time.perf_counter()
        self._event.set()

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """True once the job reached a terminal state (DONE or FAILED)."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state; False on timeout."""
        return self._event.wait(timeout)

    @property
    def wait_seconds(self) -> float | None:
        """Wall-clock time spent queued before execution began."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_seconds(self) -> float | None:
        """Wall-clock execution time (0 for cache-served jobs)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def total_seconds(self) -> float | None:
        """Wall-clock latency from submission to completion."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at
