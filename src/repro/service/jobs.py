"""Job objects tracking one accepted request through its lifecycle.

A job moves ``PENDING → RUNNING → DONE`` (or ``FAILED``); completion is
signalled through a :class:`threading.Event` so any number of clients —
including the duplicates that were coalesced onto this job — can block on the
same result.  Wall-clock timestamps record queueing delay and execution time
separately, which is what the serving benchmark reports as latency.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field

from ..traversal.results import TraversalResult
from .requests import TraversalRequest


class JobStatus(enum.Enum):
    """Lifecycle states of a submitted traversal job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass(eq=False)
class Job:
    """One unit of scheduled work: a request plus its execution state.

    ``eq=False``: jobs compare (and hash) by identity.  Every membership
    check in the serving layer — ``existing in group``, ``group.remove(job)``
    — means *this* job object, and a generated field-wise ``__eq__`` would
    instead compare exceptions, events and timestamps on every queue
    operation (and could conflate two distinct jobs mid-transition).
    """

    job_id: str
    request: TraversalRequest
    status: JobStatus = JobStatus.PENDING
    submitted_at: float = field(default_factory=time.perf_counter)
    #: Wall-clock epoch time of submission, captured once alongside
    #: ``submitted_at``.  Latency math stays purely on the monotonic
    #: ``perf_counter`` timeline; this anchor only exists so exported spans
    #: can carry real timestamps (see :meth:`wall_clock`).
    submitted_wall: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: When the job entered the pending queue (end of admission work);
    #: equals ``submitted_at`` for cache hits and rejected submissions.
    enqueued_at: float | None = None
    #: When engine work (or the cache lookup) finished, before result-cache
    #: fill and completion bookkeeping; ``None`` until terminal.
    compute_finished_at: float | None = None
    #: Trace id assigned at submission when this request was sampled for
    #: span recording; ``None`` means no spans are emitted for this job.
    trace_id: str | None = None
    #: Span id of the shared engine sweep this job rode (fused/deduped jobs
    #: point at the same sweep), plus its sibling/lane context.
    sweep_ref: str | None = None
    #: Number of other jobs executed in the same engine sweep.
    sweep_siblings: int = 0
    #: Lane count of the word/platform batch that executed this job.
    sweep_lanes: int = 0
    #: Earliest waiter deadline (same clock as the other timestamps), derived
    #: from the request's relative ``deadline`` at enqueue and tightened when
    #: more urgent duplicates join; ``None`` if no waiter carries a deadline.
    #: This is the job's *scheduling* urgency (EDF priority, met/missed
    #: accounting).
    deadline_at: float | None = None
    #: Latest waiter deadline, past which the job is useless to *every*
    #: waiter and may be expired in the queue; ``None`` means never expire —
    #: either no deadline was requested or a deadline-free duplicate joined
    #: and is still owed the result.
    expire_at: float | None = None
    #: Absolute deadline of every waiter that carried one (the original
    #: request plus joined duplicates), so met/missed accounting can judge
    #: each waiter against its *own* budget instead of the tightest.
    deadline_waiters: list = field(default_factory=list)
    result: TraversalResult | None = None
    error: BaseException | None = None
    #: True when the result was served from the result cache without running
    #: the engine.
    from_cache: bool = False
    #: Bookkeeping flag (owned by the service, mutated under its lock): the
    #: job has been entered into the retention-pruning order exactly once.
    retention_noted: bool = field(default=False, repr=False)
    _event: threading.Event = field(default_factory=threading.Event, repr=False)

    def __post_init__(self) -> None:
        if self.deadline_at is None and self.request.deadline is not None:
            self.deadline_at = self.submitted_at + self.request.deadline
            self.expire_at = self.deadline_at
        if self.deadline_at is not None and not self.deadline_waiters:
            self.deadline_waiters.append(self.deadline_at)

    def note_joined(self, other: "Job") -> None:
        """Fold a deduplicated duplicate's deadline into this shared job.

        Called under the queue lock when ``other`` joins this in-flight job.
        The most urgent waiter drives scheduling (``deadline_at`` only ever
        tightens), while expiry only survives if *every* waiter carries a
        deadline: a deadline-free duplicate is owed the result no matter how
        late it arrives, so joining one makes the job unexpirable
        (``expire_at = None``); otherwise the job stays useful until the
        *latest* waiter deadline.
        """
        if other.deadline_at is not None:
            self.deadline_waiters.append(other.deadline_at)
            if self.deadline_at is None or other.deadline_at < self.deadline_at:
                self.deadline_at = other.deadline_at
        if other.deadline_at is None or self.expire_at is None:
            self.expire_at = None
        elif other.deadline_at > self.expire_at:
            self.expire_at = other.deadline_at

    # ------------------------------------------------------------------ #
    # Transitions (called by the service; jobs are passive records)
    # ------------------------------------------------------------------ #
    def mark_running(self) -> None:
        self.status = JobStatus.RUNNING
        self.started_at = time.perf_counter()

    def mark_done(self, result: TraversalResult, from_cache: bool = False) -> None:
        if self.started_at is None:
            self.started_at = time.perf_counter()
        self.result = result
        self.from_cache = from_cache
        self.status = JobStatus.DONE
        self.finished_at = time.perf_counter()
        self._event.set()

    def mark_failed(self, error: BaseException) -> None:
        if self.started_at is None:
            self.started_at = time.perf_counter()
        self.error = error
        self.status = JobStatus.FAILED
        self.finished_at = time.perf_counter()
        self._event.set()

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """True once the job reached a terminal state (DONE or FAILED)."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state; False on timeout."""
        return self._event.wait(timeout)

    @property
    def wait_seconds(self) -> float | None:
        """Wall-clock time spent queued before execution began."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def run_seconds(self) -> float | None:
        """Wall-clock execution time (0 for cache-served jobs)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def total_seconds(self) -> float | None:
        """Wall-clock latency from submission to completion."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def wall_clock(self, monotonic: float) -> float:
        """Map a ``perf_counter`` reading onto the wall-clock epoch timeline.

        Uses the submission-time anchor, so every timestamp of one job shares
        a single clock offset and span durations remain exact perf_counter
        differences (a wall-clock step mid-job cannot skew them).
        """
        return self.submitted_wall + (monotonic - self.submitted_at)

    def expired(self, now: float | None = None) -> bool:
        """True once the job is useless to every waiter and still unfinished."""
        if self.expire_at is None or self.done:
            return False
        return (time.perf_counter() if now is None else now) > self.expire_at

    @property
    def met_deadline(self) -> bool | None:
        """Did the job complete within its *tightest* waiter deadline?

        ``None`` while unfinished or when no waiter carries a deadline; a job
        that failed (including queue expiry) counts as a miss.  Service stats
        judge each waiter against its own budget via ``deadline_waiters``.
        """
        if self.deadline_at is None or self.finished_at is None:
            return None
        return self.status is JobStatus.DONE and self.finished_at <= self.deadline_at
