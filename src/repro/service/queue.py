"""Pending-request queue with in-flight deduplication and batch grouping.

Two serving optimizations live here:

* **Deduplication** — an index over in-flight jobs by result identity
  (:attr:`TraversalRequest.cache_key`) lets a new identical request join the
  job that is already queued or running instead of enqueueing a second
  execution.
* **Batching** — pending jobs are grouped by
  :attr:`TraversalRequest.batch_key` (same graph / application / strategy /
  platform, sources free), and a worker drains a whole group at once.  The
  group shares one registry lookup and one warm engine configuration, the
  amortization the paper's 64-source ``run_average`` experiments rely on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from .jobs import Job


class RequestQueue:
    """Thread-safe FIFO of batch groups plus the in-flight dedup index."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._groups: OrderedDict[tuple, list[Job]] = OrderedDict()
        self._inflight: dict[tuple, Job] = {}

    def push_or_join(
        self, job: Job, cache_lookup: Callable[[tuple], object] | None = None
    ) -> tuple[str, object]:
        """Enqueue ``job``, join the identical in-flight job, or hit the cache.

        Returns one of::

            ("queued", job)        the job was enqueued for execution
            ("joined", existing)   an identical request is pending or running
            ("cached", result)     ``cache_lookup`` found a finished result

        All three checks happen atomically under the queue lock.  Workers
        publish a finished result to the cache *before* releasing the dedup
        entry, so as long as the cache can hold the entry, every identical
        request finds either the in-flight job or the cached result and never
        re-executes.  (With caching disabled or the entry evicted, a
        duplicate arriving after completion re-runs — correct, just not
        amortized.)
        """
        key = job.request.cache_key
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                return "joined", existing
            if cache_lookup is not None:
                cached = cache_lookup(key)
                if cached is not None:
                    return "cached", cached
            self._inflight[key] = job
            self._groups.setdefault(job.request.batch_key, []).append(job)
            return "queued", job

    def pop_batch(self) -> list[Job]:
        """Remove and return the oldest batch group (empty list if idle).

        The entire group is handed to one worker; groups enqueued later can be
        drained concurrently by other workers.
        """
        with self._lock:
            if not self._groups:
                return []
            _, jobs = self._groups.popitem(last=False)
            return jobs

    def discard(self, job: Job) -> bool:
        """Withdraw a still-pending job (used when dispatch fails).

        Removes the job from its batch group and the dedup index; returns
        False if a worker already picked the job up (in which case the worker
        owns its completion).
        """
        with self._lock:
            group = self._groups.get(job.request.batch_key)
            if group is None or job not in group:
                return False
            group.remove(job)
            if not group:
                del self._groups[job.request.batch_key]
            if self._inflight.get(job.request.cache_key) is job:
                del self._inflight[job.request.cache_key]
            return True

    def release(self, job: Job) -> None:
        """Drop a finished job from the dedup index.

        Called after the job's result has been published to the result cache,
        so identical requests always find either the in-flight job or the
        cached result.
        """
        key = job.request.cache_key
        with self._lock:
            if self._inflight.get(key) is job:
                del self._inflight[key]

    def find_inflight(self, cache_key: tuple) -> Job | None:
        with self._lock:
            return self._inflight.get(cache_key)

    def pending_count(self) -> int:
        """Jobs enqueued but not yet picked up by a worker."""
        with self._lock:
            return sum(len(jobs) for jobs in self._groups.values())

    def inflight_count(self) -> int:
        """Jobs queued or running (the dedup window)."""
        with self._lock:
            return len(self._inflight)

    def __len__(self) -> int:
        return self.pending_count()
