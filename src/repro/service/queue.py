"""Pending-request queue: dedup, batch grouping, admission, scheduling.

Three serving concerns meet here:

* **Deduplication** — an index over in-flight jobs by result identity
  (:attr:`TraversalRequest.cache_key`) lets a new identical request join the
  job that is already queued or running instead of enqueueing a second
  execution.
* **Batching** — pending jobs are grouped by
  :attr:`TraversalRequest.batch_key` (same graph / application / strategy /
  platform, sources free), and a worker drains a whole group at once.  The
  group shares one registry lookup and one warm engine configuration, the
  amortization the paper's 64-source ``run_average`` experiments rely on.
* **Admission + scheduling** — enqueueing is bounded (global queue limit,
  per-tenant quotas; over-limit submissions raise
  :class:`~repro.errors.AdmissionError` atomically with the enqueue attempt),
  and *which* group a worker drains next is delegated to a pluggable
  :class:`~repro.service.scheduler.SchedulingPolicy`.
"""

from __future__ import annotations

import logging
import math
from collections import OrderedDict
from typing import Callable

from ..analysis.lockorder import tracked_lock
from ..errors import AdmissionError, InfeasibleDeadlineError
from .costmodel import CostModel
from .jobs import Job
from .scheduler import SchedulingPolicy, group_deadline, make_policy

logger = logging.getLogger(__name__)


class RequestQueue:
    """Thread-safe queue of batch groups plus the in-flight dedup index.

    The optional ``cost_model`` powers infeasible-deadline admission
    (:meth:`push_or_join` with ``reject_infeasible``); pass the same instance
    to a ``"wfq"`` policy so ordering and admission share one view of
    predicted costs.
    """

    def __init__(
        self,
        policy: SchedulingPolicy | str | None = None,
        cost_model: CostModel | None = None,
        on_policy_fallback: Callable[[], None] | None = None,
    ) -> None:
        self._lock = tracked_lock("service.RequestQueue._lock")
        self._policy = make_policy(policy, cost_model=cost_model)
        self._cost_model = cost_model
        #: Invoked (outside any hot loop, still under the queue lock) every
        #: time the policy names a non-pending group and the queue falls back
        #: to arrival order — wired to a service counter so policy bugs are
        #: visible instead of silently absorbed.
        self._on_policy_fallback = on_policy_fallback
        self._groups: OrderedDict[tuple, list[Job]] = OrderedDict()
        #: Most urgent absolute deadline per pending group (inf when none),
        #: maintained incrementally on push/join/discard so deadline-aware
        #: policies select in O(groups) instead of rescanning every job.
        self._group_deadlines: dict[tuple, float] = {}
        self._inflight: dict[tuple, Job] = {}
        self._pending = 0
        self._pending_by_tenant: dict[str | None, int] = {}

    @property
    def policy(self) -> SchedulingPolicy:
        return self._policy

    def push_or_join(
        self,
        job: Job,
        cache_lookup: Callable[[tuple], object] | None = None,
        queue_limit: int | None = None,
        tenant_quota: int | None = None,
        reject_infeasible: bool = False,
        workers: int = 1,
    ) -> tuple[str, object]:
        """Enqueue ``job``, join the identical in-flight job, or hit the cache.

        Returns one of::

            ("queued", job)        the job was enqueued for execution
            ("joined", existing)   an identical request is pending or running
            ("cached", result)     ``cache_lookup`` found a finished result

        All checks happen atomically under the queue lock.  Workers publish a
        finished result to the cache *before* releasing the dedup entry, so as
        long as the cache can hold the entry, every identical request finds
        either the in-flight job or the cached result and never re-executes.
        (With caching disabled or the entry evicted, a duplicate arriving
        after completion re-runs — correct, just not amortized.)

        Admission control applies only to the "queued" outcome: joining an
        in-flight job or being answered from cache consumes no queue capacity,
        so those submissions are always admitted.  A full queue
        (``queue_limit``) or exhausted tenant quota (``tenant_quota``;
        tenant-less requests share the anonymous ``None`` bucket) raises
        :class:`AdmissionError` without enqueueing anything.

        With ``reject_infeasible`` (and a cost model), a deadline-carrying
        job whose estimated wait — the whole pending backlog's predicted
        drain cost spread over ``workers``, plus its own execution — already
        exceeds its budget raises :class:`InfeasibleDeadlineError` at
        arrival instead of expiring in the queue later.  The backlog bound
        is deliberately policy-agnostic and conservative (every pending
        group might drain first); a hopeless request is refused in
        microseconds while a merely tight one is admitted and given to the
        deadline-aware policies.
        """
        key = job.request.cache_key
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                # Merge the duplicate's urgency into the shared job: the most
                # urgent waiter drives EDF priority, and a deadline-free
                # waiter makes the job unexpirable (it is owed the result).
                existing.note_joined(job)
                batch_key = existing.request.batch_key
                if (
                    existing.deadline_at is not None
                    and existing.deadline_at
                    < self._group_deadlines.get(batch_key, math.inf)
                    and existing in self._groups.get(batch_key, ())
                ):
                    # The shared job is still pending: its tightened urgency
                    # promotes the whole group.  (A running job's deadline
                    # must not leak into the group left behind.)
                    self._group_deadlines[batch_key] = existing.deadline_at
                return "joined", existing
            if cache_lookup is not None:
                cached = cache_lookup(key)
                if cached is not None:
                    return "cached", cached
            tenant = job.request.tenant
            if queue_limit is not None and self._pending >= queue_limit:
                raise AdmissionError(
                    f"queue full: {self._pending} jobs pending "
                    f"(queue_limit={queue_limit})",
                    tenant=tenant,
                )
            if tenant_quota is not None:
                held = self._pending_by_tenant.get(tenant, 0)
                if held >= tenant_quota:
                    raise AdmissionError(
                        f"tenant {tenant!r} has {held} jobs pending "
                        f"(tenant_quota={tenant_quota})",
                        tenant=tenant,
                    )
            if (
                reject_infeasible
                and self._cost_model is not None
                and job.request.deadline is not None
            ):
                backlog = sum(
                    self._cost_model.estimate_group(group_key, len(group_jobs))
                    for group_key, group_jobs in self._groups.items()
                )
                estimated = backlog / max(1, workers) + self._cost_model.estimate_job(
                    job.request.batch_key
                )
                if estimated > job.request.deadline:
                    raise InfeasibleDeadlineError(
                        f"deadline of {job.request.deadline:g}s cannot be met: "
                        f"estimated backlog wait + execution is {estimated:.3f}s "
                        f"({self._pending} jobs pending; {job.request.describe()})",
                        tenant=tenant,
                    )
            self._inflight[key] = job
            batch_key = job.request.batch_key
            self._groups.setdefault(batch_key, []).append(job)
            self._group_deadlines[batch_key] = min(
                self._group_deadlines.get(batch_key, math.inf),
                job.deadline_at if job.deadline_at is not None else math.inf,
            )
            self._pending += 1
            self._pending_by_tenant[tenant] = (
                self._pending_by_tenant.get(tenant, 0) + 1
            )
            return "queued", job

    def _forget_pending(self, job: Job) -> None:
        """Update the pending counters for one dequeued job (lock held)."""
        self._pending -= 1
        tenant = job.request.tenant
        remaining = self._pending_by_tenant.get(tenant, 0) - 1
        if remaining > 0:
            self._pending_by_tenant[tenant] = remaining
        else:
            self._pending_by_tenant.pop(tenant, None)

    def pop_batch(self) -> list[Job]:
        """Remove and return the next batch group (empty list if idle).

        The scheduling policy chooses the group; the entire group is handed
        to one worker, and groups left behind can be drained concurrently by
        other workers.
        """
        with self._lock:
            if not self._groups:
                return []
            key = self._policy.select(self._groups, self._group_deadlines)
            jobs = self._groups.pop(key, None)
            if jobs is None:
                # Defensive: a policy named a non-pending group; fall back to
                # arrival order rather than dropping the wakeup — but loudly,
                # so a buggy policy cannot hide behind the safety net.
                logger.warning(
                    "scheduling policy %r selected non-pending group %r; "
                    "falling back to arrival order",
                    self._policy.name,
                    key,
                )
                if self._on_policy_fallback is not None:
                    self._on_policy_fallback()
                key, jobs = self._groups.popitem(last=False)
            self._group_deadlines.pop(key, None)
            for job in jobs:
                self._forget_pending(job)
            return jobs

    def snapshot_groups(self) -> dict[tuple, tuple[Job, ...]]:
        """Point-in-time copy of the pending backlog, keyed by batch key.

        Fusion planning input: the caller enumerates candidate plans over the
        snapshot *without* holding the queue lock, then claims the groups a
        chosen plan needs through :meth:`claim_groups` — which tolerates any
        group another worker drained in between.  Job tuples are copies; the
        queue's own group lists are never exposed.
        """
        with self._lock:
            return {key: tuple(jobs) for key, jobs in self._groups.items()}

    def claim_groups(self, keys) -> dict[tuple, list[Job]]:
        """Atomically pop the named groups for rider execution in a fused plan.

        Returns only the groups still pending — a key drained by a concurrent
        worker since the snapshot is simply absent from the result, and the
        caller's plan must adjust.  Each claimed group is reported to
        :meth:`SchedulingPolicy.forget_group`: the rider rides along with a
        group the policy already selected and charged for, so stateful
        policies (WFQ) refund any virtual time booked for it — the plan
        accounting that keeps fairness exact under fusion.
        """
        with self._lock:
            claimed: dict[tuple, list[Job]] = {}
            for key in keys:
                jobs = self._groups.pop(key, None)
                if jobs is None:
                    continue
                self._group_deadlines.pop(key, None)
                for job in jobs:
                    self._forget_pending(job)
                self._policy.forget_group(key, jobs)
                claimed[key] = jobs
            return claimed

    def pop_plan(self, build):
        """Pop the policy-selected group, then claim the riders ``build`` names.

        ``build(anchor_jobs, snapshot)`` runs *without* the queue lock (it may
        consult the cost model freely) and returns ``(plan, rider_keys)``;
        the plan object is opaque to the queue.  Returns ``(plan, claimed)``
        where ``claimed`` maps each successfully claimed rider key to its
        jobs, or ``None`` when the queue was idle.  The scheduling policy
        stays in charge of *which* work drains next — planning only decides
        what rides along with its selection.
        """
        anchor = self.pop_batch()
        if not anchor:
            return None
        plan, rider_keys = build(anchor, self.snapshot_groups())
        claimed = self.claim_groups(rider_keys) if rider_keys else {}
        return plan, claimed

    def discard(self, job: Job) -> bool:
        """Withdraw a still-pending job (used when dispatch fails).

        Removes the job from its batch group and the dedup index; returns
        False if a worker already picked the job up (in which case the worker
        owns its completion).
        """
        with self._lock:
            group = self._groups.get(job.request.batch_key)
            if group is None or job not in group:
                return False
            group.remove(job)
            self._forget_pending(job)
            if not group:
                del self._groups[job.request.batch_key]
                self._group_deadlines.pop(job.request.batch_key, None)
            elif job.deadline_at is not None:
                # The withdrawn job may have been the group's most urgent
                # member; recompute from the survivors (rare path, small
                # group) so the cache never overstates urgency.
                self._group_deadlines[job.request.batch_key] = group_deadline(group)
            if self._inflight.get(job.request.cache_key) is job:
                del self._inflight[job.request.cache_key]
            return True

    def expire(self, job: Job, now: float) -> bool:
        """Atomically decide expiry and retire the dedup entry.

        The expiry check and the in-flight removal happen under one lock so
        a deadline-free duplicate can never join the job *after* it was
        judged expired (it either joined earlier — clearing ``expire_at``,
        making this return False — or misses the dedup entry entirely and
        enqueues its own execution).  Returns True when the caller now owns
        failing the job; no further :meth:`release` is needed.
        """
        with self._lock:
            if not job.expired(now):
                return False
            if self._inflight.get(job.request.cache_key) is job:
                del self._inflight[job.request.cache_key]
            return True

    def release(self, job: Job) -> None:
        """Drop a finished job from the dedup index.

        Called after the job's result has been published to the result cache,
        so identical requests always find either the in-flight job or the
        cached result.
        """
        key = job.request.cache_key
        with self._lock:
            if self._inflight.get(key) is job:
                del self._inflight[key]

    def find_inflight(self, cache_key: tuple) -> Job | None:
        with self._lock:
            return self._inflight.get(cache_key)

    def pending_count(self) -> int:
        """Jobs enqueued but not yet picked up by a worker."""
        with self._lock:
            return self._pending

    def pending_by_tenant(self) -> dict[str | None, int]:
        """Snapshot of queued-job counts per tenant (``None`` = anonymous)."""
        with self._lock:
            return dict(self._pending_by_tenant)

    def inflight_count(self) -> int:
        """Jobs queued or running (the dedup window)."""
        with self._lock:
            return len(self._inflight)

    def __len__(self) -> int:
        return self.pending_count()
