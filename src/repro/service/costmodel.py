"""Online cost model: predicted engine seconds per batch family.

Scheduling and admission decisions need to know *how long work will take
before running it*: weighted-fair queueing charges each tenant its drain
cost, and deadline-aware admission must reject a request whose backlog
already exceeds its budget.  Neither can afford to run the work to find out,
so this module learns costs online from the executions the service performs
anyway.

A **batch family** is everything that determines a group's execution profile:
:attr:`~repro.service.requests.TraversalRequest.batch_key`, i.e. ``(graph,
application, strategy, system)``.  Jobs in one family differ only in their
source vertex, and a drained group pays its frontier sweeps once for the
whole group — so the model tracks two EWMAs per family:

* ``group_seconds`` — observed wall-clock engine seconds of one drained
  group (the shared per-sweep cost), and
* ``job_seconds`` — observed engine seconds divided by the group's width
  (the marginal per-job cost at typical batch sizes).

A group of ``n`` jobs is estimated as ``max(group_ewma, n * job_ewma)``: near
the typical width the shared-sweep term dominates (batching amortizes), while
far above it the marginal term takes over, keeping wide-burst estimates from
collapsing to one sweep's cost.

Families with no samples yet are **bootstrapped from graph size**: the
simulated engines sweep vertex and edge arrays, so seconds scale with
``num_edges`` and ``num_vertices``.  The constants below only need the right
order of magnitude — one observation later, the EWMA takes over.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable

from ..analysis.lockorder import tracked_lock
from ..errors import ConfigurationError

#: Bootstrap engine-seconds per edge / per vertex of the target graph, used
#: until a family has real samples.  Calibrated to the order of magnitude of
#: the pure-python simulated engines on the repo's scaled-down graphs.
BOOTSTRAP_SECONDS_PER_EDGE = 1e-7
BOOTSTRAP_SECONDS_PER_VERTEX = 5e-7
#: Bootstrap per-job estimate when even the graph's size is unknown (the
#: graph is registered but not resident, so peeking at it would force a load).
DEFAULT_BOOTSTRAP_SECONDS = 2e-3

#: Fraction of a drained group's wall-clock attributed to the *shared*
#: per-sweep work (frontier unions, whole-stream passes) that fused lanes
#: ride for free; the remainder scales with per-lane work fusion cannot
#: amortize (result materialization, per-lane accounting).  Calibrated
#: against the simulated engines, where the shared numpy sweeps dominate.
SHARED_PASS_FRACTION = 0.7

#: Resolves a graph name to ``(num_vertices, num_edges)`` or None; estimates
#: must never force a graph load, so "unknown" is an expected answer.
GraphSizeLookup = Callable[[str], "tuple[int, int] | None"]


@dataclass
class _FamilyEstimate:
    """EWMA state of one batch family (internal, guarded by the model lock)."""

    group_seconds: float = 0.0
    job_seconds: float = 0.0
    samples: int = 0

    def update(self, jobs: int, seconds: float, alpha: float) -> None:
        per_job = seconds / jobs
        if self.samples == 0:
            self.group_seconds = seconds
            self.job_seconds = per_job
        else:
            self.group_seconds += alpha * (seconds - self.group_seconds)
            self.job_seconds += alpha * (per_job - self.job_seconds)
        self.samples += 1


@dataclass(frozen=True)
class SharedEstimate:
    """Predicted cost of draining several batch families as one fused pass.

    Produced by :meth:`CostModel.estimate_shared` and consumed by the fusion
    planner: ``solo_seconds`` is what running every family separately would
    cost, ``shared_seconds`` what the fused execution is predicted to cost,
    and ``margin_seconds`` the model's own mean absolute estimate error —
    the planner only trusts a predicted saving larger than the model's
    typical mistake.
    """

    shared_seconds: float
    solo_seconds: float
    margin_seconds: float

    @property
    def savings_seconds(self) -> float:
        return self.solo_seconds - self.shared_seconds

    @property
    def confident(self) -> bool:
        """True when the predicted saving exceeds the model's typical error."""
        return self.shared_seconds + self.margin_seconds < self.solo_seconds


@dataclass(frozen=True)
class CostModelStats:
    """Snapshot of the cost model's coverage and accuracy."""

    #: Batch families with at least one observed execution.
    families: int = 0
    #: Total observations fed into the EWMAs.
    samples: int = 0
    #: Mean absolute error of the estimate made *before* each observation
    #: (bootstrapped first-contact estimates included), in seconds.
    mean_abs_error_seconds: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.families} families / {self.samples} samples, "
            f"mean abs estimate error {self.mean_abs_error_seconds * 1e3:.2f} ms"
        )


class CostModel:
    """Thread-safe online estimator of per-family engine seconds.

    ``alpha`` is the EWMA weight of the newest observation; the optional
    ``graph_size_lookup`` supplies ``(num_vertices, num_edges)`` for
    bootstrap estimates of never-observed families (it must be cheap and
    side-effect free — see :meth:`GraphRegistry.peek`).
    """

    def __init__(
        self,
        alpha: float = 0.25,
        graph_size_lookup: GraphSizeLookup | None = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"cost model alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self._graph_size_lookup = graph_size_lookup
        self._lock = tracked_lock("service.CostModel._lock")
        self._families: dict[Hashable, _FamilyEstimate] = {}
        #: Kernel-counter feature: EWMA of traversal iterations per family,
        #: fed by the service's per-sweep counters.  A fused sweep runs until
        #: its slowest lane converges, so relative iteration counts tell
        #: :meth:`estimate_shared` how much fusing stretches the fast lanes.
        self._iterations: dict[Hashable, float] = {}
        self._error_sum = 0.0
        self._error_samples = 0

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #
    def observe(self, family: Hashable, jobs: int, seconds: float) -> float | None:
        """Fold one observed group execution into the family's EWMAs.

        ``jobs`` is the group's width and ``seconds`` the wall-clock engine
        time of draining it.  The estimate the model *would have given* for
        this group is scored against the observation first, so the accuracy
        snapshot reflects predictions, not hindsight.  Returns that
        observation's absolute estimate error in seconds (the quantity the
        metrics registry exports as a per-observation series), or ``None``
        when the sample was discarded.
        """
        if jobs <= 0 or seconds < 0 or not math.isfinite(seconds):
            return None  # defensive: never let a clock glitch poison the EWMAs
        with self._lock:
            predicted = self._estimate_group_locked(family, jobs)
            error = abs(predicted - seconds)
            self._error_sum += error
            self._error_samples += 1
            estimate = self._families.get(family)
            if estimate is None:
                estimate = self._families[family] = _FamilyEstimate()
            estimate.update(jobs, seconds, self.alpha)
            return error

    def note_counters(self, family: Hashable, iterations: int) -> None:
        """Fold one sweep's kernel iteration count into the family's EWMA.

        Iterations are the kernel-counter feature :meth:`estimate_shared`
        uses to price the stretch a fused sweep imposes on lanes that would
        have converged earlier on their own.
        """
        if iterations <= 0:
            return
        with self._lock:
            known = self._iterations.get(family)
            if known is None:
                self._iterations[family] = float(iterations)
            else:
                self._iterations[family] = known + self.alpha * (iterations - known)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def estimate_group(self, family: Hashable, jobs: int) -> float:
        """Predicted engine seconds to drain a group of ``jobs`` jobs."""
        with self._lock:
            return self._estimate_group_locked(family, max(1, jobs))

    def estimate_job(self, family: Hashable) -> float:
        """Predicted marginal engine seconds of one job of this family."""
        return self.estimate_group(family, 1)

    def estimate_shared(
        self, families: "list[tuple[Hashable, int]]", words: int = 1
    ) -> SharedEstimate:
        """Price running several ``(family, width)`` groups as one fused pass.

        The solo cost is each family's own group estimate, summed.  The
        shared cost models what fusion actually changes: per execution word
        the :data:`SHARED_PASS_FRACTION` of the sweep work is paid *once* —
        by the most expensive participating lane, stretched to the slowest
        lane's iteration count when the kernel counters have taught the
        model per-family iterations — while the remaining per-lane fraction
        is still paid by everyone.  ``margin_seconds`` carries the model's
        lifetime mean absolute estimate error (the
        ``repro_costmodel_abs_error_seconds`` series), so callers can demand
        a saving larger than the model's typical mistake.
        """
        with self._lock:
            solo = 0.0
            sweep = 0.0
            max_iterations = 0.0
            best_per_iteration = 0.0
            for family, jobs in families:
                solo += self._estimate_group_locked(family, max(1, jobs))
                single = self._estimate_group_locked(family, 1)
                sweep = max(sweep, single)
                iterations = self._iterations.get(family, 0.0)
                if iterations > 0:
                    max_iterations = max(max_iterations, iterations)
                    best_per_iteration = max(best_per_iteration, single / iterations)
            if max_iterations > 0 and best_per_iteration > 0:
                # The fused sweep runs max(iterations) passes; price them at
                # the most expensive known per-iteration rate.
                sweep = max(sweep, max_iterations * best_per_iteration)
            shared = (
                max(1, words) * SHARED_PASS_FRACTION * sweep
                + (1.0 - SHARED_PASS_FRACTION) * solo
            )
            margin = (
                self._error_sum / self._error_samples if self._error_samples else 0.0
            )
            return SharedEstimate(
                shared_seconds=shared, solo_seconds=solo, margin_seconds=margin
            )

    def _estimate_group_locked(self, family: Hashable, jobs: int) -> float:
        estimate = self._families.get(family)
        if estimate is not None and estimate.samples > 0:
            return max(estimate.group_seconds, jobs * estimate.job_seconds)
        return jobs * self._bootstrap_job_seconds(family)

    def _bootstrap_job_seconds(self, family: Hashable) -> float:
        """Size-based prior for a family with no samples yet.

        The family key's first element is the graph name by construction
        (:attr:`TraversalRequest.batch_key`); anything else falls back to the
        flat default, as does a graph the lookup does not know.
        """
        if self._graph_size_lookup is not None and isinstance(family, tuple) and family:
            graph = family[0]
            if isinstance(graph, str):
                size = self._graph_size_lookup(graph)
                if size is not None:
                    num_vertices, num_edges = size
                    return (
                        num_edges * BOOTSTRAP_SECONDS_PER_EDGE
                        + num_vertices * BOOTSTRAP_SECONDS_PER_VERTEX
                    )
        return DEFAULT_BOOTSTRAP_SECONDS

    # ------------------------------------------------------------------ #
    # Persistence (durable store warm restarts)
    # ------------------------------------------------------------------ #
    def family_state(self, family: Hashable) -> dict | None:
        """The family's current EWMA state, or ``None`` before any sample.

        The dict shape matches :meth:`seed` entries — it is what the durable
        store appends to its cost-history table after every observation.
        """
        with self._lock:
            estimate = self._families.get(family)
            if estimate is None or estimate.samples == 0:
                return None
            return {
                "family": family,
                "group_seconds": estimate.group_seconds,
                "job_seconds": estimate.job_seconds,
                "samples": estimate.samples,
                "iterations": self._iterations.get(family),
            }

    def seed(self, entries: "list[dict]") -> int:
        """Install persisted EWMA state for families with no live samples.

        Each entry carries ``family``, ``group_seconds``, ``job_seconds``,
        ``samples`` and optional ``iterations`` (the shapes
        :meth:`family_state` exports).  Families that already accumulated
        live observations are left alone — fresh evidence beats history.
        Returns the number of families seeded.
        """
        seeded = 0
        with self._lock:
            for entry in entries:
                family = entry["family"]
                samples = int(entry.get("samples", 0))
                group_seconds = float(entry.get("group_seconds", 0.0))
                job_seconds = float(entry.get("job_seconds", 0.0))
                if (
                    samples <= 0
                    or not math.isfinite(group_seconds)
                    or not math.isfinite(job_seconds)
                    or group_seconds < 0
                    or job_seconds < 0
                ):
                    continue
                existing = self._families.get(family)
                if existing is not None and existing.samples > 0:
                    continue
                self._families[family] = _FamilyEstimate(
                    group_seconds=group_seconds,
                    job_seconds=job_seconds,
                    samples=samples,
                )
                iterations = entry.get("iterations")
                if iterations is not None and float(iterations) > 0:
                    self._iterations.setdefault(family, float(iterations))
                seeded += 1
        return seeded

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def family_samples(self, family: Hashable) -> int:
        """Observations recorded for one family (0 = still bootstrapped)."""
        with self._lock:
            estimate = self._families.get(family)
            return estimate.samples if estimate is not None else 0

    def stats(self) -> CostModelStats:
        with self._lock:
            return CostModelStats(
                families=len(self._families),
                samples=sum(e.samples for e in self._families.values()),
                mean_abs_error_seconds=(
                    self._error_sum / self._error_samples
                    if self._error_samples
                    else 0.0
                ),
            )
