"""Hashable, normalized traversal requests.

A :class:`TraversalRequest` is the unit of work the serving layer accepts: it
names a registered graph instead of carrying one, and every field is
canonicalized on construction (strings coerced to enums, CC sources collapsed
to ``None``, numpy integers converted to plain ``int``).  Because two requests
for the same work always compare and hash equal, deduplication and result
caching fall out of ordinary dict/set membership.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import SystemConfig
from ..traversal.api import (
    normalize_application,
    normalize_deadline,
    normalize_source,
    normalize_strategy,
    normalize_tenant,
)
from ..types import AccessStrategy, Application, EMOGI_STRATEGY

#: Fingerprint used in cache keys when a request has no explicit platform and
#: therefore runs on whatever the service's default system is.
DEFAULT_SYSTEM_KEY = "default"


@dataclass(frozen=True)
class TraversalRequest:
    """One traversal to serve: application + graph name + source + config."""

    application: Application
    graph: str
    source: int | None = None
    strategy: AccessStrategy = EMOGI_STRATEGY
    system: SystemConfig | None = None
    #: Latency budget in seconds from submission; ``None`` means "whenever".
    #: Purely a scheduling hint: the EDF policy orders by it, and jobs whose
    #: budget lapses while queued are failed before execution.
    deadline: float | None = None
    #: Owning tenant for per-tenant admission quotas; ``None`` is anonymous.
    tenant: str | None = None

    def __post_init__(self) -> None:
        application = normalize_application(self.application)
        object.__setattr__(self, "application", application)
        object.__setattr__(self, "strategy", normalize_strategy(self.strategy))
        object.__setattr__(self, "source", normalize_source(application, self.source))
        object.__setattr__(self, "deadline", normalize_deadline(self.deadline))
        object.__setattr__(self, "tenant", normalize_tenant(self.tenant))
        if not isinstance(self.graph, str) or not self.graph:
            raise ValueError(f"graph must be a non-empty name, got {self.graph!r}")

    @property
    def system_key(self) -> str:
        """Stable fingerprint of the requested platform (or ``"default"``)."""
        if self.system is None:
            return DEFAULT_SYSTEM_KEY
        return self.system.fingerprint()

    @property
    def cache_key(self) -> tuple:
        """Identity of this request's *result*: same key, same answer.

        ``deadline`` and ``tenant`` are deliberately excluded: they change
        *when* and *whether* the work runs, never what the answer is, so two
        requests differing only in urgency or ownership still deduplicate
        onto one execution and share cached results.
        """
        return (
            self.graph,
            self.application.value,
            self.source,
            self.strategy.value,
            self.system_key,
        )

    @property
    def batch_key(self) -> tuple:
        """Identity of this request's *configuration*, ignoring the source.

        Requests sharing a batch key differ only in their source vertex, so
        the scheduler can execute them back to back against one resident graph
        — the same amortization ``run_average`` performs for the paper's
        64-source experiments.
        """
        return (self.graph, self.application.value, self.strategy.value, self.system_key)

    def with_system(self, system: SystemConfig) -> "TraversalRequest":
        """Pin an unpinned request to a concrete platform."""
        return replace(self, system=system)

    def describe(self) -> str:
        source = "-" if self.source is None else str(self.source)
        extras = ""
        if self.deadline is not None:
            extras += f", deadline={self.deadline:g}s"
        if self.tenant is not None:
            extras += f", tenant={self.tenant}"
        return (
            f"{self.application.value}({self.graph}, source={source}, "
            f"strategy={self.strategy.value}, system={self.system_key}{extras})"
        )
