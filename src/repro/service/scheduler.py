"""Pluggable scheduling policies: which pending batch group runs next.

The request queue groups pending jobs by :attr:`TraversalRequest.batch_key`
(:mod:`repro.service.queue`); whenever a worker frees up it drains exactly one
group.  *Which* group is the scheduling decision, and under a deep queue it is
the difference between a server that merely stays busy and one that spends its
engine sweeps where they matter.  Four policies ship:

``fifo``
    Arrival order of the groups — exactly the pre-policy behaviour, and the
    default.  Predictable and starvation-free, but a deep backlog of bulk
    work delays every latecomer, deadline or not.
``largest``
    The group with the most pending jobs first.  Multi-source batched
    execution pays each frontier sweep once per *group*, so draining the
    widest group maximizes jobs retired per sweep (throughput), at the cost
    of letting small groups wait.
``edf``
    Earliest deadline first: the group whose most urgent member job expires
    soonest.  Groups with no deadlines sort last (among themselves: FIFO).
    Classic EDF is optimal for meeting feasible deadlines on one machine,
    and under the skewed workloads of ``BENCH_scheduler.json`` it meets
    deadlines strict FIFO cannot.
``wfq``
    Start-time weighted-fair queueing over *tenants*.  Each group is charged
    its estimated drain cost (:mod:`repro.service.costmodel`) divided by its
    tenant's configured weight, and the group with the smallest virtual
    finish time drains next.  A backlogged burst from one tenant advances
    that tenant's virtual clock far ahead, so a polite tenant's next group
    wins immediately instead of waiting out the whole burst — the workload
    isolation HTAP systems engineer for between transactional and analytical
    traffic, applied to traversal serving.

Policies only *order* work; admission control (queue limits, tenant quotas,
infeasible-deadline rejection) lives in :meth:`RequestQueue.push_or_join`
and expiry of already-missed deadlines in :meth:`Service._drain_one_batch`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Mapping, Sequence

from ..config import SCHEDULING_POLICIES, normalize_tenant_weights
from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .costmodel import CostModel
    from .jobs import Job

#: Effective deadline of a group none of whose jobs carry one: sorts last.
_NO_DEADLINE = float("inf")


class SchedulingPolicy(abc.ABC):
    """Strategy object choosing the next batch group to drain.

    ``select`` receives the queue's live group mapping (batch key -> pending
    jobs, iteration order = group creation order) and returns the key of the
    group a worker should execute next.  It is called under the queue lock:
    implementations must be fast, must not block, and must treat the mapping
    as read-only.  The mapping is never empty.
    """

    #: Stable name used by :class:`~repro.config.ServiceConfig.policy`.
    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self,
        groups: Mapping[tuple, Sequence["Job"]],
        group_deadlines: Mapping[tuple, float] | None = None,
    ) -> tuple:
        """Return the batch key of the group to drain next.

        ``group_deadlines`` is the queue's incrementally maintained map of
        each group's most urgent absolute deadline (inf when none), letting
        deadline-aware policies stay O(groups) instead of rescanning every
        pending job; policies that don't need it ignore it, and it may be
        omitted (EDF then derives the same values from the jobs).
        """

    def forget_group(self, key: tuple, jobs: Sequence["Job"]) -> None:
        """Note that ``key`` was dequeued without being selected.

        Called under the queue lock when a group leaves the queue outside
        :meth:`select` — the fusion planner claiming a rider group
        (:meth:`RequestQueue.claim_groups`) to ride along with a group the
        policy already selected.  Stateless policies ignore it; stateful
        ones (WFQ) refund any bookkeeping already charged for the group,
        since it will consume no separately scheduled drain — the plan
        accounting that keeps virtual time exact under fusion.
        """


class FifoPolicy(SchedulingPolicy):
    """Drain groups in arrival order — the historical default behaviour."""

    name = "fifo"

    def select(
        self,
        groups: Mapping[tuple, Sequence["Job"]],
        group_deadlines: Mapping[tuple, float] | None = None,
    ) -> tuple:
        return next(iter(groups))


class LargestBatchPolicy(SchedulingPolicy):
    """Drain the widest group first; ties break toward the older group."""

    name = "largest"

    def select(
        self,
        groups: Mapping[tuple, Sequence["Job"]],
        group_deadlines: Mapping[tuple, float] | None = None,
    ) -> tuple:
        best_key = None
        best_size = -1
        for key, jobs in groups.items():
            if len(jobs) > best_size:
                best_key, best_size = key, len(jobs)
        return best_key


def group_deadline(jobs: Sequence["Job"]) -> float:
    """Absolute deadline of a group: its most urgent member (inf if none)."""
    return min(
        (job.deadline_at for job in jobs if job.deadline_at is not None),
        default=_NO_DEADLINE,
    )


class EdfPolicy(SchedulingPolicy):
    """Earliest-deadline-first over groups; deadline-free groups go last."""

    name = "edf"

    def select(
        self,
        groups: Mapping[tuple, Sequence["Job"]],
        group_deadlines: Mapping[tuple, float] | None = None,
    ) -> tuple:
        best_key = None
        best_deadline = None
        for key, jobs in groups.items():
            if group_deadlines is not None:
                deadline = group_deadlines.get(key, _NO_DEADLINE)
            else:
                deadline = group_deadline(jobs)
            # Strict < keeps ties (and the all-inf case) in arrival order.
            if best_deadline is None or deadline < best_deadline:
                best_key, best_deadline = key, deadline
        return best_key


class WeightedFairPolicy(SchedulingPolicy):
    """Start-time fair queueing over tenants, charged by estimated cost.

    Classic SFQ bookkeeping: when a group first becomes visible it is
    assigned a virtual *start* tag ``S = max(V, tail(tenant))`` — the current
    virtual time, or the finish tag most recently assigned to the same
    tenant, whichever is later — and a *finish* tag ``F = S + cost/weight``.
    The pending group with the smallest finish tag drains next (ties in
    arrival order), and virtual time advances to the winner's start tag.
    Tags are assigned **once** and kept until the group drains: a tenant's
    pending groups chain their tags forward (`tail`), so a deep burst books
    virtual time far into the future while a polite tenant's next group is
    tagged near ``V`` and wins immediately.  Recomputing tags at every
    selection instead would silently drag an unserved tenant's start tag up
    to ``V`` and could starve it — the exact failure fair queueing exists to
    prevent.

    ``cost`` is the cost model's estimated engine seconds to drain the whole
    group, frozen at tag time (jobs joining a pending group later ride along
    free, consistent with how batching amortizes them); without a model every
    group costs its width, degrading gracefully to per-job fairness.  A group
    is charged to the tenant of its **oldest member** — batch keys
    deliberately ignore tenants (so cross-tenant duplicates still batch and
    dedup), making a group's tenant an attribution choice, and the member
    that created the group is the natural owner.  Tenants without a
    configured weight, including the anonymous ``None`` tenant, get weight 1.

    The virtual clocks make this policy **stateful**: one instance belongs to
    one queue.  ``select`` commits clock updates because the queue pops the
    chosen group immediately (selection *is* dispatch).
    """

    name = "wfq"

    #: Fair-queueing share of tenants absent from the configured weights.
    DEFAULT_WEIGHT = 1.0

    def __init__(
        self,
        tenant_weights=None,
        cost_model: "CostModel | None" = None,
    ) -> None:
        self._weights = dict(normalize_tenant_weights(tenant_weights) or ())
        self._cost_model = cost_model
        self._virtual_time = 0.0
        #: Finish tag most recently *assigned* (not served) per tenant.
        self._tenant_tail: dict[str | None, float] = {}
        #: Assigned ``(start, finish, first_job)`` tags of still-pending
        #: groups.  The first-job reference detects a batch key that was
        #: emptied (discard) and recreated by a different submission between
        #: two selects: the recreated group must be tagged afresh, not
        #: inherit the vanished group's priority.
        self._group_tags: dict[tuple, tuple[float, float, "Job"]] = {}

    def weight_of(self, tenant: str | None) -> float:
        return self._weights.get(tenant, self.DEFAULT_WEIGHT)

    def _group_cost(self, key: tuple, jobs: Sequence["Job"]) -> float:
        if self._cost_model is None:
            return float(len(jobs))
        return self._cost_model.estimate_group(key, len(jobs))

    def select(
        self,
        groups: Mapping[tuple, Sequence["Job"]],
        group_deadlines: Mapping[tuple, float] | None = None,
    ) -> tuple:
        # Groups can vanish without being selected (withdrawn by discard, or
        # drained through the queue's defensive fallback); their stale tags
        # must not poison a later group that reuses the batch key, so a tag
        # survives only while its key is pending AND still anchored by the
        # job it was assigned for.
        self._group_tags = {
            key: tags
            for key, tags in self._group_tags.items()
            if key in groups and any(job is tags[2] for job in groups[key])
        }
        best = None
        for key, jobs in groups.items():
            tags = self._group_tags.get(key)
            if tags is None:
                # First sight ≈ arrival: the queue consults the policy on
                # every drain, so a group is tagged before anything that
                # arrived after it can be selected.
                tenant = jobs[0].request.tenant
                start = max(self._virtual_time, self._tenant_tail.get(tenant, 0.0))
                finish = start + self._group_cost(key, jobs) / self.weight_of(tenant)
                tags = self._group_tags[key] = (start, finish, jobs[0])
                self._tenant_tail[tenant] = finish
            # Strict < keeps ties in arrival order.
            if best is None or tags[1] < best[1][1]:
                best = (key, tags)
        key, (start, _finish, _anchor) = best
        del self._group_tags[key]
        self._virtual_time = max(self._virtual_time, start)
        return key

    def forget_group(self, key: tuple, jobs: Sequence["Job"]) -> None:
        """Refund a fused-away group's booked virtual time.

        Tagging charged the group's ``cost/weight`` to its tenant's tail;
        when the group rides along with a sibling instead of consuming its
        own drain, that charge would permanently deprioritize the tenant's
        future groups.  The refund shrinks the tail by exactly the booked
        interval (``finish - start``); tags already chained on top of it
        keep their order, only the tenant's *next* tag benefits.
        """
        tags = self._group_tags.pop(key, None)
        if tags is None:
            return
        start, finish, anchor = tags
        if not any(job is anchor for job in jobs):
            # The tag belonged to a vanished earlier incarnation of this
            # batch key (same staleness rule select applies): nothing of
            # these jobs was ever charged.
            return
        tenant = anchor.request.tenant
        tail = self._tenant_tail.get(tenant)
        if tail is not None:
            self._tenant_tail[tenant] = max(tail - (finish - start), 0.0)


_POLICY_CLASSES: dict[str, type[SchedulingPolicy]] = {
    policy.name: policy
    for policy in (FifoPolicy, LargestBatchPolicy, EdfPolicy, WeightedFairPolicy)
}
assert set(_POLICY_CLASSES) == set(SCHEDULING_POLICIES), (
    "repro.config.SCHEDULING_POLICIES and repro.service.scheduler drifted apart"
)


def make_policy(
    policy: str | SchedulingPolicy | None,
    tenant_weights=None,
    cost_model: "CostModel | None" = None,
) -> SchedulingPolicy:
    """Resolve a policy name (or pass through an instance; ``None`` = FIFO).

    ``tenant_weights`` and ``cost_model`` configure the ``"wfq"`` policy and
    are ignored by the stateless ones (an explicitly passed-through instance
    keeps whatever it was constructed with).
    """
    if policy is None:
        return FifoPolicy()
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        cls = _POLICY_CLASSES[policy]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown scheduling policy {policy!r}; "
            f"choose one of: {', '.join(SCHEDULING_POLICIES)}"
        ) from None
    if cls is WeightedFairPolicy:
        return WeightedFairPolicy(tenant_weights=tenant_weights, cost_model=cost_model)
    return cls()
