"""Pluggable scheduling policies: which pending batch group runs next.

The request queue groups pending jobs by :attr:`TraversalRequest.batch_key`
(:mod:`repro.service.queue`); whenever a worker frees up it drains exactly one
group.  *Which* group is the scheduling decision, and under a deep queue it is
the difference between a server that merely stays busy and one that spends its
engine sweeps where they matter.  Three policies ship:

``fifo``
    Arrival order of the groups — exactly the pre-policy behaviour, and the
    default.  Predictable and starvation-free, but a deep backlog of bulk
    work delays every latecomer, deadline or not.
``largest``
    The group with the most pending jobs first.  Multi-source batched
    execution pays each frontier sweep once per *group*, so draining the
    widest group maximizes jobs retired per sweep (throughput), at the cost
    of letting small groups wait.
``edf``
    Earliest deadline first: the group whose most urgent member job expires
    soonest.  Groups with no deadlines sort last (among themselves: FIFO).
    Classic EDF is optimal for meeting feasible deadlines on one machine,
    and under the skewed workloads of ``BENCH_scheduler.json`` it meets
    deadlines strict FIFO cannot.

Policies only *order* work; admission control (queue limits, tenant quotas)
lives in :meth:`RequestQueue.push_or_join` and expiry of already-missed
deadlines in :meth:`Service._drain_one_batch`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Mapping, Sequence

from ..config import SCHEDULING_POLICIES
from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .jobs import Job

#: Effective deadline of a group none of whose jobs carry one: sorts last.
_NO_DEADLINE = float("inf")


class SchedulingPolicy(abc.ABC):
    """Strategy object choosing the next batch group to drain.

    ``select`` receives the queue's live group mapping (batch key -> pending
    jobs, iteration order = group creation order) and returns the key of the
    group a worker should execute next.  It is called under the queue lock:
    implementations must be fast, must not block, and must treat the mapping
    as read-only.  The mapping is never empty.
    """

    #: Stable name used by :class:`~repro.config.ServiceConfig.policy`.
    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self,
        groups: Mapping[tuple, Sequence["Job"]],
        group_deadlines: Mapping[tuple, float] | None = None,
    ) -> tuple:
        """Return the batch key of the group to drain next.

        ``group_deadlines`` is the queue's incrementally maintained map of
        each group's most urgent absolute deadline (inf when none), letting
        deadline-aware policies stay O(groups) instead of rescanning every
        pending job; policies that don't need it ignore it, and it may be
        omitted (EDF then derives the same values from the jobs).
        """


class FifoPolicy(SchedulingPolicy):
    """Drain groups in arrival order — the historical default behaviour."""

    name = "fifo"

    def select(
        self,
        groups: Mapping[tuple, Sequence["Job"]],
        group_deadlines: Mapping[tuple, float] | None = None,
    ) -> tuple:
        return next(iter(groups))


class LargestBatchPolicy(SchedulingPolicy):
    """Drain the widest group first; ties break toward the older group."""

    name = "largest"

    def select(
        self,
        groups: Mapping[tuple, Sequence["Job"]],
        group_deadlines: Mapping[tuple, float] | None = None,
    ) -> tuple:
        best_key = None
        best_size = -1
        for key, jobs in groups.items():
            if len(jobs) > best_size:
                best_key, best_size = key, len(jobs)
        return best_key


def group_deadline(jobs: Sequence["Job"]) -> float:
    """Absolute deadline of a group: its most urgent member (inf if none)."""
    return min(
        (job.deadline_at for job in jobs if job.deadline_at is not None),
        default=_NO_DEADLINE,
    )


class EdfPolicy(SchedulingPolicy):
    """Earliest-deadline-first over groups; deadline-free groups go last."""

    name = "edf"

    def select(
        self,
        groups: Mapping[tuple, Sequence["Job"]],
        group_deadlines: Mapping[tuple, float] | None = None,
    ) -> tuple:
        best_key = None
        best_deadline = None
        for key, jobs in groups.items():
            if group_deadlines is not None:
                deadline = group_deadlines.get(key, _NO_DEADLINE)
            else:
                deadline = group_deadline(jobs)
            # Strict < keeps ties (and the all-inf case) in arrival order.
            if best_deadline is None or deadline < best_deadline:
                best_key, best_deadline = key, deadline
        return best_key


_POLICY_CLASSES: dict[str, type[SchedulingPolicy]] = {
    policy.name: policy for policy in (FifoPolicy, LargestBatchPolicy, EdfPolicy)
}
assert set(_POLICY_CLASSES) == set(SCHEDULING_POLICIES), (
    "repro.config.SCHEDULING_POLICIES and repro.service.scheduler drifted apart"
)


def make_policy(policy: str | SchedulingPolicy | None) -> SchedulingPolicy:
    """Resolve a policy name (or pass through an instance; ``None`` = FIFO)."""
    if policy is None:
        return FifoPolicy()
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return _POLICY_CLASSES[policy]()
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown scheduling policy {policy!r}; "
            f"choose one of: {', '.join(SCHEDULING_POLICIES)}"
        ) from None
