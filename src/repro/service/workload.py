"""Declarative JSON workloads for driving a :class:`~repro.service.Service`.

A workload file names the graphs to register and the requests to fire::

    {
      "workers": 4,
      "registry_budget_mib": 64,
      "graphs": [
        {"name": "GK", "dataset": "GK", "scale": 40000},
        {"name": "rmat", "generator": "rmat", "vertices": 400, "edges": 3000}
      ],
      "requests": [
        {"app": "bfs", "graph": "GK", "sources": [0, 1, 2]},
        {"app": "cc", "graph": "rmat", "repeat": 4},
        {"app": "sssp", "graph": "GK", "random_sources": 2, "seed": 7}
      ]
    }

Graphs come either from the paper's Table 2 dataset analogs (``dataset``) or
from the synthetic generators (``generator``: rmat / uniform / powerlaw /
web).  Request entries expand multiplicatively: ``sources`` fans one entry out
per source, ``random_sources`` draws sources from the graph, and ``repeat``
duplicates the request — the natural way to exercise deduplication and the
result cache from a workload file.

Scheduling and admission knobs ride along: top-level ``policy`` ("fifo" /
"largest" / "edf" / "wfq"), ``queue_limit``, ``tenant_quota``,
``tenant_weights`` (a tenant→share object for WFQ), ``cost_alpha`` (cost
model EWMA) and ``reject_infeasible`` (reject deadlines the cost model deems
unmeetable at arrival) configure the service, and per-request ``deadline``
(seconds) / ``tenant`` mark entries for deadline-aware ordering and
per-tenant accounting.  Submissions shed by admission control are reported,
not fatal.

Resilience knobs ride the same way: top-level ``fault_plan`` (a
``REPRO_FAULTS``-format spec string, see :mod:`repro.service.faults`),
``retry_limit``, ``sweep_timeout`` / ``sweep_timeout_multiplier``, and
``breaker_threshold`` / ``breaker_cooldown``.  Durability too: top-level
``store_path`` (SQLite file for the durable serving store, see
:mod:`repro.service.store`) and ``store_flush_interval`` — the CLI's
``--store PATH`` maps onto the former.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from ..config import ServiceConfig
from ..errors import (
    AdmissionError,
    InfeasibleDeadlineError,
    RetryableError,
    ServiceError,
)
from ..graph.datasets import get_spec, pick_sources
from ..graph.generators import (
    powerlaw_graph,
    rmat_graph,
    uniform_random_graph,
    web_graph,
)
from ..types import EMOGI_STRATEGY
from .jobs import JobStatus
from .requests import TraversalRequest
from .service import Service
from .stats import LatencyStats, ServiceStats

_GENERATORS = {
    "rmat": rmat_graph,
    "uniform": uniform_random_graph,
    "powerlaw": powerlaw_graph,
    "web": web_graph,
}


@dataclass(frozen=True)
class WorkloadReport:
    """Outcome of one workload run, ready for a throughput/latency report."""

    total_requests: int
    unique_results: int
    wall_seconds: float
    latencies: tuple[float, ...]
    failures: int
    stats: ServiceStats
    #: Submissions refused by admission control (queue limit / tenant quota /
    #: infeasible deadline).
    rejected: int = 0
    #: The subset of ``rejected`` refused for an unmeetable deadline.
    rejected_infeasible: int = 0
    #: Spans drained from the service at the end of the run (JSON-ready
    #: dicts, oldest first; empty when tracing is disabled or sampled out).
    traces: tuple = ()
    #: The service's metrics registry with gauges refreshed at run end
    #: (``None`` only for reports built by legacy callers).
    metrics: object | None = None

    @property
    def requests_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_requests / self.wall_seconds

    @property
    def latency_stats(self) -> LatencyStats:
        """Percentile summary of the per-request latencies (one formula,
        shared with :class:`~repro.service.stats.ServiceStats`)."""
        return LatencyStats.from_samples(self.latencies)

    def to_table(self) -> str:
        latency = self.latency_stats
        lines = [
            "Serving workload report",
            "=" * 55,
            f"requests served     : {self.total_requests} "
            f"({self.unique_results} unique results, {self.failures} failed, "
            f"{self.rejected} rejected at admission, "
            f"{self.rejected_infeasible} of those infeasible deadlines)",
            f"wall time           : {self.wall_seconds:.3f} s",
            f"throughput          : {self.requests_per_second:.1f} requests/s",
            f"latency mean/p50/p95: {latency.mean_seconds * 1e3:.2f} / "
            f"{latency.p50_seconds * 1e3:.2f} / "
            f"{latency.p95_seconds * 1e3:.2f} ms",
            "-" * 55,
            self.stats.describe(),
        ]
        return "\n".join(lines)


def load_workload(path: str | Path) -> dict:
    """Read and structurally validate a workload JSON file."""
    spec = json.loads(Path(path).read_text())
    if not isinstance(spec, dict):
        raise ServiceError("workload file must contain a JSON object")
    for section in ("graphs", "requests"):
        if not isinstance(spec.get(section), list) or not spec[section]:
            raise ServiceError(f"workload must define a non-empty {section!r} list")
    return spec


def config_from_spec(
    spec: dict,
    workers: int | None = None,
    budget_mib: float | None = None,
    cache_entries: int | None = None,
    policy: str | None = None,
    queue_limit: int | None = None,
    tenant_quota: int | None = None,
    tenant_weights: dict | None = None,
    cost_alpha: float | None = None,
    reject_infeasible: bool | None = None,
    trace_sample: float | None = None,
    fault_plan: str | None = None,
    retry_limit: int | None = None,
    sweep_timeout: float | None = None,
    sweep_timeout_multiplier: float | None = None,
    breaker_threshold: int | None = None,
    breaker_cooldown: float | None = None,
    planner: bool | None = None,
    store_path: str | None = None,
    store_flush_interval: float | None = None,
) -> ServiceConfig:
    """Service knobs from a workload spec, with optional (CLI) overrides."""
    if budget_mib is None:
        budget_mib = spec.get("registry_budget_mib")
    if policy is None:
        # `or` also maps an explicit JSON null onto the default, matching
        # how null queue_limit/tenant_quota mean "use the default" below.
        policy = spec.get("policy") or "fifo"
    if queue_limit is None:
        queue_limit = spec.get("queue_limit")
    if tenant_quota is None:
        tenant_quota = spec.get("tenant_quota")
    if tenant_weights is None:
        tenant_weights = spec.get("tenant_weights")
    if cost_alpha is None:
        cost_alpha = spec.get("cost_alpha")
    if reject_infeasible is None:
        reject_infeasible = spec.get("reject_infeasible")
    if trace_sample is None:
        trace_sample = spec.get("trace_sample")
    if fault_plan is None:
        fault_plan = spec.get("fault_plan")
    if retry_limit is None:
        retry_limit = spec.get("retry_limit")
    if sweep_timeout is None:
        sweep_timeout = spec.get("sweep_timeout")
    if sweep_timeout_multiplier is None:
        sweep_timeout_multiplier = spec.get("sweep_timeout_multiplier")
    if breaker_threshold is None:
        breaker_threshold = spec.get("breaker_threshold")
    if breaker_cooldown is None:
        breaker_cooldown = spec.get("breaker_cooldown")
    if planner is None:
        planner = spec.get("planner")
    if store_path is None:
        store_path = spec.get("store_path")
    if store_flush_interval is None:
        store_flush_interval = spec.get("store_flush_interval")
    # Only forward the knobs that were actually given, so ServiceConfig's
    # own defaults stay the single source of truth.
    extra = {}
    if tenant_weights is not None:
        extra["tenant_weights"] = tenant_weights
    if cost_alpha is not None:
        extra["cost_alpha"] = float(cost_alpha)
    if reject_infeasible is not None:
        extra["reject_infeasible"] = bool(reject_infeasible)
    if trace_sample is not None:
        extra["trace_sample"] = float(trace_sample)
    if fault_plan is not None:
        extra["fault_plan"] = str(fault_plan)
    if retry_limit is not None:
        extra["retry_limit"] = int(retry_limit)
    if sweep_timeout is not None:
        extra["sweep_timeout"] = float(sweep_timeout)
    if sweep_timeout_multiplier is not None:
        extra["sweep_timeout_multiplier"] = float(sweep_timeout_multiplier)
    if breaker_threshold is not None:
        extra["breaker_threshold"] = int(breaker_threshold)
    if breaker_cooldown is not None:
        extra["breaker_cooldown"] = float(breaker_cooldown)
    if planner is not None:
        extra["planner"] = bool(planner)
    if store_path is not None:
        extra["store_path"] = str(store_path)
    if store_flush_interval is not None:
        extra["store_flush_interval"] = float(store_flush_interval)
    return ServiceConfig(
        max_workers=int(workers if workers is not None else spec.get("workers", 4)),
        registry_budget_bytes=(
            int(budget_mib * 1024**2) if budget_mib is not None else None
        ),
        result_cache_entries=int(
            cache_entries
            if cache_entries is not None
            else spec.get("result_cache_entries", 1024)
        ),
        policy=str(policy),
        queue_limit=int(queue_limit) if queue_limit is not None else None,
        tenant_quota=int(tenant_quota) if tenant_quota is not None else None,
        **extra,
    )


def build_service(spec: dict, config: ServiceConfig | None = None, **overrides) -> Service:
    """Construct a service with every graph in the workload registered.

    ``overrides`` are forwarded to :func:`config_from_spec` when no explicit
    config is given.
    """
    if config is None:
        config = config_from_spec(spec, **overrides)
    service = Service(config=config)
    for entry in spec["graphs"]:
        _register_graph(service, entry)
    return service


def _register_graph(service: Service, entry: dict) -> None:
    name = entry.get("name")
    if "dataset" in entry:
        get_spec(entry["dataset"])  # fail fast on unknown symbols
        kwargs = {
            key: entry[key]
            for key in ("scale", "element_bytes", "with_weights")
            if key in entry
        }
        service.registry.register_dataset(entry["dataset"], name=name, **kwargs)
        return
    if "generator" in entry:
        kind = entry["generator"]
        try:
            generator = _GENERATORS[kind]
        except KeyError:
            raise ServiceError(
                f"unknown generator {kind!r}; available: {', '.join(sorted(_GENERATORS))}"
            ) from None
        if name is None:
            raise ServiceError("generator graphs need an explicit 'name'")
        vertices = int(entry.get("vertices", 400))
        edges = int(entry.get("edges", 4000))
        seed = int(entry.get("seed", 7))
        service.registry.register(
            name, lambda: generator(vertices, edges, seed=seed, name=name)
        )
        return
    raise ServiceError(f"graph entry needs 'dataset' or 'generator': {entry!r}")


def _get_graph_for_sampling(service: Service, graph: str):
    """Resolve a graph for source sampling, riding out transient loads.

    Source sampling runs at workload-setup time, before any request enters
    the drain loop's retry machinery — so a transient registry fault (a
    chaos drill, a storage hiccup) gets the same bounded retry treatment
    here instead of aborting the whole run.
    """
    attempt = 0
    while True:
        try:
            return service.registry.get(graph)
        except RetryableError:
            attempt += 1
            if attempt > _SAMPLING_RETRY_LIMIT:
                raise
            time.sleep(_SAMPLING_RETRY_BACKOFF * attempt)


#: Bounded retries for setup-time graph resolution (see above).
_SAMPLING_RETRY_LIMIT = 3
_SAMPLING_RETRY_BACKOFF = 0.02


def expand_requests(service: Service, spec: dict) -> list[TraversalRequest]:
    """Expand the workload's request entries into concrete requests."""
    requests: list[TraversalRequest] = []
    for entry in spec["requests"]:
        application = entry.get("app") or entry.get("application")
        graph = entry.get("graph")
        if application is None or graph is None:
            raise ServiceError(f"request entry needs 'app' and 'graph': {entry!r}")
        strategy = entry.get("strategy", EMOGI_STRATEGY)
        repeat = int(entry.get("repeat", 1))
        if str(application).lower() in ("cc", "pagerank"):
            # Streaming applications are source-free; collapsing here keeps
            # every such request identical for dedup regardless of the entry.
            sources: list[int | None] = [None]
        elif "sources" in entry:
            sources = [int(s) for s in entry["sources"]]
        elif "random_sources" in entry:
            picked = pick_sources(
                _get_graph_for_sampling(service, graph),
                int(entry["random_sources"]),
                seed=int(entry.get("seed", 42)),
            )
            sources = [int(s) for s in picked]
        else:
            sources = [int(entry.get("source", 0))]
        deadline = entry.get("deadline")
        tenant = entry.get("tenant")
        for source in sources:
            requests.extend(
                TraversalRequest(
                    application=application,
                    graph=graph,
                    source=source,
                    strategy=strategy,
                    deadline=deadline,
                    tenant=tenant,
                )
                for _ in range(repeat)
            )
    return requests


def run_workload(
    service: Service, requests: list[TraversalRequest], timeout: float | None = None
) -> WorkloadReport:
    """Fire every request at the service and wait for all of them.

    Submissions refused by admission control (queue limit / tenant quota)
    are counted in the report's ``rejected`` field rather than aborting the
    run — an open-loop driver keeps firing when the server sheds load.
    """
    started = time.perf_counter()
    jobs = []
    rejected = 0
    rejected_infeasible = 0
    for request in requests:
        try:
            jobs.append(service.submit(request))
        except AdmissionError as exc:
            rejected += 1
            if isinstance(exc, InfeasibleDeadlineError):
                rejected_infeasible += 1
    if not service.wait_all(timeout):
        raise ServiceError(f"workload did not finish within {timeout}s")
    wall = time.perf_counter() - started
    latencies = tuple(
        job.total_seconds for job in jobs if job.total_seconds is not None
    )
    failures = sum(1 for job in jobs if job.status is JobStatus.FAILED)
    unique = len(
        {job.request.cache_key for job in jobs if job.status is JobStatus.DONE}
    )
    return WorkloadReport(
        total_requests=len(jobs),
        unique_results=unique,
        wall_seconds=wall,
        latencies=latencies,
        failures=failures,
        stats=service.stats(),
        rejected=rejected,
        rejected_infeasible=rejected_infeasible,
        traces=tuple(service.drain_traces()),
        metrics=service.collect_metrics(),
    )


def serve_workload_file(
    path: str | Path,
    config: ServiceConfig | None = None,
    timeout: float | None = None,
    **overrides,
) -> WorkloadReport:
    """One-call driver: load, build, run, report (used by ``repro serve-batch``)."""
    spec = load_workload(path)
    with build_service(spec, config=config, **overrides) as service:
        requests = expand_requests(service, spec)
        try:
            return run_workload(service, requests, timeout=timeout)
        except ServiceError:
            # On timeout, drop queued-but-unstarted work so the error reaches
            # the caller promptly instead of after the whole backlog drains.
            service.close(wait=False, cancel_pending=True)
            raise
