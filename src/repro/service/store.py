"""Durable serving state on SQLite/WAL: catalog, result cache, cost history.

A :class:`ServingStore` makes the three pieces of serving state that used to
die with the process survive restarts:

Graph catalog
    One row per registered graph name: content fingerprint (sha1 over the
    CSR arrays and structural fields), byte size, degree statistics from
    :mod:`repro.graph.analysis`, generator parameters (``graph.meta``), and
    load/eviction accounting.  The fingerprint recorded at the *last actual
    load* is the version every cached result is validated against.

Result cache
    One row per :attr:`TraversalRequest.cache_key`, payload pickled, tagged
    with the graph fingerprint current when the result was computed.  A
    lookup joins against the catalog so a row whose fingerprint no longer
    matches the graph's last-load fingerprint is *detected as stale and
    treated as a miss*, never served; :meth:`record_load` purges mismatched
    rows the moment a graph's content is observed to have changed.

Cost-model history
    Append-only rows of per-family EWMA state (group/job seconds, sample
    count, iterations EWMA) written every time the live model absorbs an
    observation.  :meth:`load_cost_seed` returns the latest row per family
    so a restarted :class:`~repro.service.costmodel.CostModel` starts from
    learned estimates instead of the size-based bootstrap.

Pragma discipline follows the Paper-Scanner schema in SNIPPETS.md:
``journal_mode=WAL``, ``foreign_keys=ON``, ``synchronous=NORMAL``,
``busy_timeout=30000`` ms, booleans as INTEGER 0/1, timestamps as TEXT UTC
ISO-8601.

Robustness model
----------------

The store must never make a request fail:

* All writes are **asynchronous**: producers enqueue small op tuples onto a
  bounded queue (pickling deferred to the flush thread, so the request hot
  path pays one ``put_nowait``); a daemon flush thread batches them into
  single transactions.  A full queue drops the newest op and counts it.
* Every SQLite touch runs behind a **circuit breaker**.  Consecutive
  failures (including armed ``store.*`` faults) open it: reads answer
  ``None`` immediately, write batches are re-queued and retried after the
  cooldown's half-open probe.  While open the service is exactly the old
  in-memory-only system — *degraded, not failing*.
* :meth:`open` runs ``PRAGMA integrity_check`` first.  A corrupt or torn
  database (a crash mid-write, a truncated file) is **quarantined**: the
  database and its ``-wal``/``-shm`` sidecars are renamed aside and a fresh
  store is initialized, so the service always boots.
* Chaos drills arm the ``store.open`` / ``store.read`` / ``store.write`` /
  ``store.checkpoint`` fault sites through the ordinary ``REPRO_FAULTS``
  plans (see :mod:`repro.service.faults`).

The store reports its condition as one of ``ok`` (durable), ``degraded``
(breaker open or connection lost — in-memory behavior), ``quarantined``
(durable again, but a corrupt predecessor was renamed aside this boot).
A detached service reports ``disabled``.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import queue
import sqlite3
import threading
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

from ..analysis.lockorder import tracked_lock
from ..errors import StoreError
from ..graph.analysis import degree_stats
from ..graph.csr import CSRGraph
from ..traversal.results import TraversalResult
from . import faults
from .resilience import CircuitBreaker

SCHEMA_VERSION = 1

#: Numeric encoding of store states for the ``repro_store_state`` gauge.
STORE_STATE_CODES = {
    "ok": 0,
    "degraded": 1,
    "quarantined": 2,
    "disabled": 3,
}

#: Pending-write queue bound: beyond this, the newest op is dropped (and
#: counted) instead of blocking a request thread.
DEFAULT_QUEUE_LIMIT = 4096

#: Max ops folded into one flush transaction.
FLUSH_BATCH_LIMIT = 256

#: Seconds the flush thread waits for work before re-checking shutdown.
DEFAULT_FLUSH_INTERVAL = 0.05

#: Flush attempts a result op survives while waiting for its graph's
#: catalog upsert to land (see :meth:`ServingStore._apply_op`).
RESULT_DEFER_LIMIT = 8

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS graph_catalog (
    name TEXT PRIMARY KEY,
    fingerprint TEXT NOT NULL,
    num_vertices INTEGER NOT NULL,
    num_edges INTEGER NOT NULL,
    total_bytes INTEGER NOT NULL,
    average_degree REAL NOT NULL,
    median_degree REAL NOT NULL,
    max_degree INTEGER NOT NULL,
    min_degree INTEGER NOT NULL,
    std_degree REAL NOT NULL,
    params TEXT NOT NULL,
    resident INTEGER NOT NULL DEFAULT 0,
    loads INTEGER NOT NULL DEFAULT 0,
    evictions INTEGER NOT NULL DEFAULT 0,
    first_loaded_at TEXT NOT NULL,
    last_loaded_at TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS result_cache (
    graph TEXT NOT NULL,
    application TEXT NOT NULL,
    source TEXT NOT NULL,
    strategy TEXT NOT NULL,
    system TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    payload BLOB NOT NULL,
    created_at TEXT NOT NULL,
    PRIMARY KEY (graph, application, source, strategy, system)
);
CREATE TABLE IF NOT EXISTS cost_history (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    family TEXT NOT NULL,
    group_seconds REAL NOT NULL,
    job_seconds REAL NOT NULL,
    samples INTEGER NOT NULL,
    iterations REAL,
    recorded_at TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_cost_history_family
    ON cost_history (family, id);
"""


def _utcnow() -> str:
    """TEXT UTC ISO-8601 timestamp, the store's only wall-clock format."""
    return datetime.now(timezone.utc).isoformat()


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content hash of a CSR graph: arrays plus the structural fields.

    Two graphs with identical topology, weights, direction and simulated
    element size fingerprint identically regardless of name or metadata —
    the version tag cached results are validated against.
    """
    digest = hashlib.sha1()
    digest.update(graph.offsets.tobytes())
    digest.update(graph.edges.tobytes())
    if graph.weights is not None:
        digest.update(graph.weights.tobytes())
    digest.update(
        f"|d={int(graph.directed)}|b={graph.element_bytes}".encode("ascii")
    )
    return digest.hexdigest()[:16]


def family_to_text(family) -> str:
    """Canonical JSON encoding of a (possibly nested-tuple) family key."""

    def convert(value):
        if isinstance(value, tuple):
            return {"__tuple__": [convert(item) for item in value]}
        if isinstance(value, list):
            return [convert(item) for item in value]
        return value

    return json.dumps(convert(family), sort_keys=True)


def family_from_text(text: str):
    """Inverse of :func:`family_to_text` (tuples restored as tuples)."""

    def restore(value):
        if isinstance(value, dict) and set(value) == {"__tuple__"}:
            return tuple(restore(item) for item in value["__tuple__"])
        if isinstance(value, list):
            return [restore(item) for item in value]
        return value

    return restore(json.loads(text))


def _key_columns(key: tuple) -> tuple[str, str, str, str, str]:
    """Flatten a request cache key into the result_cache key columns.

    ``source`` may be ``None`` (streaming applications); the primary key
    cannot hold NULL so it is stored as ``"-"``, matching how requests
    render a missing source.
    """
    graph, application, source, strategy, system = key
    return (
        str(graph),
        str(application),
        "-" if source is None else str(int(source)),
        str(strategy),
        str(system),
    )


@dataclass(frozen=True)
class StoreStats:
    """Counter snapshot for ``stats()`` / health / metrics exposition."""

    state: str
    path: str
    hits: int
    misses: int
    writes: int
    flushes: int
    dropped: int
    errors: int
    backfilled: int
    pending: int
    quarantined: bool
    breaker_state: str
    catalog_rows: int
    result_rows: int
    history_rows: int


class ServingStore:
    """SQLite/WAL durability layer behind a circuit breaker.

    ``on_event`` (optional) receives ``(kind, labels)`` for every countable
    event — ``op`` (labels op/outcome), ``hit``, ``flush``, ``drop``,
    ``breaker`` (label state) — which is how the service maps store activity
    onto its pre-registered ``repro_store_*`` metric series without the
    store importing the metrics registry.
    """

    def __init__(
        self,
        path: str | Path,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 2.0,
        on_event: Callable[[str, dict], None] | None = None,
    ) -> None:
        if not str(path):
            raise StoreError("store path must be a non-empty filesystem path")
        self.path = Path(path)
        self._on_event = on_event
        self._db_lock = tracked_lock("service.ServingStore._db_lock")
        #: Reads run on their own WAL connection behind their own lock, so a
        #: hot-path lookup never waits for the flush thread's write
        #: transaction — the concurrency WAL mode exists to provide.
        self._read_lock = tracked_lock("service.ServingStore._read_lock")
        self._state_lock = tracked_lock("service.ServingStore._state_lock")
        self._conn: sqlite3.Connection | None = None
        self._read_conn: sqlite3.Connection | None = None
        self._quarantined_from: str | None = None
        self._closed = False
        self._final_state = "ok"
        #: Key columns of every row in ``result_cache``, maintained by this
        #: process's writes.  A miss is decided from this set without
        #: touching SQLite at all: on a service whose workers hold the GIL
        #: in numpy kernels, even a sub-50us C call from the request thread
        #: costs a GIL handoff (~0.5ms wall per call), so the common case —
        #: cold lookups that will miss — must stay pure Python.  Accurate
        #: for a single serving process per database; the sharded tier will
        #: need cross-process invalidation here.
        self._known_keys: set[tuple[str, str, str, str, str]] = set()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._flushes = 0
        self._dropped = 0
        self._errors = 0
        self._backfilled = 0
        self._breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            cooldown_seconds=breaker_cooldown,
            on_transition=self._note_breaker,
        )
        self._pending: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._stop = threading.Event()
        # Set by flush()/close() to cut the flusher's coalescing wait
        # short; the flusher clears it after each wakeup.
        self._kick = threading.Event()
        self._flush_interval = max(0.001, float(flush_interval))
        # First open happens inline so a corrupt database is quarantined
        # before the service accepts any request; failures degrade rather
        # than raise (the breaker's half-open probe retries later).
        self._try_open(initial=True)
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-store-flush", daemon=True
        )
        self._flusher.start()

    # ------------------------------------------------------------------ #
    # Open / recovery
    # ------------------------------------------------------------------ #
    def _try_open(self, initial: bool = False) -> bool:
        """Open (or re-open) the database; True on success.

        Runs the ``store.open`` fault site, then ``PRAGMA integrity_check``.
        A corrupt database is quarantined (renamed aside with its WAL/SHM
        sidecars) and a fresh one initialized in its place — boot always
        succeeds unless the open itself keeps failing, in which case the
        store degrades to a no-op and the breaker schedules re-probes.
        """
        try:
            with self._db_lock:
                faults.check("store.open", path=str(self.path))
                self.path.parent.mkdir(parents=True, exist_ok=True)
                try:
                    conn = self._connect()
                    healthy = self._integrity_ok(conn)
                except sqlite3.DatabaseError:
                    # A file so damaged the connection pragmas themselves
                    # fail is corruption, not an environment error.
                    conn = None
                    healthy = False
                if not healthy:
                    if conn is not None:
                        conn.close()
                    self._quarantine()
                    conn = self._connect()
                self._init_schema(conn)
                if self._conn is not None:
                    try:
                        self._conn.close()
                    except sqlite3.Error:
                        pass
                self._conn = conn
            with self._read_lock:
                if self._read_conn is not None:
                    try:
                        self._read_conn.close()
                    except sqlite3.Error:
                        pass
                self._read_conn = self._connect()
                rows = self._read_conn.execute(
                    "SELECT graph, application, source, strategy, system"
                    " FROM result_cache"
                ).fetchall()
            with self._state_lock:
                self._known_keys = {tuple(row) for row in rows}
        except Exception:
            self._count_error()
            self._breaker.record_failure()
            self._emit("op", {"op": "open", "outcome": "error"})
            if initial:
                # Leave a breadcrumb in the counters; the service stays up.
                self._conn = None
            return False
        self._breaker.record_success()
        self._emit("op", {"op": "open", "outcome": "ok"})
        return True

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            str(self.path), timeout=30.0, check_same_thread=False
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA foreign_keys=ON")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        return conn

    def _integrity_ok(self, conn: sqlite3.Connection) -> bool:
        try:
            row = conn.execute("PRAGMA integrity_check").fetchone()
            if row is None or row[0] != "ok":
                return False
        except sqlite3.Error:
            return False
        try:
            version = conn.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.OperationalError:
            # Fresh (or pre-schema) database: no meta table yet is fine,
            # _init_schema will create it.
            return True
        except sqlite3.Error:
            return False
        if version is not None and int(version[0]) != SCHEMA_VERSION:
            return False
        return True

    def _quarantine(self) -> None:
        """Rename a corrupt database (and sidecars) aside, keep its name."""
        stamp = _utcnow().replace(":", "").replace("+", "Z")
        target = self.path.with_name(f"{self.path.name}.quarantined-{stamp}")
        self.path.rename(target)
        for suffix in ("-wal", "-shm"):
            sidecar = Path(str(self.path) + suffix)
            if sidecar.exists():
                sidecar.rename(Path(str(target) + suffix))
        with self._state_lock:
            self._quarantined_from = str(target)

    def _init_schema(self, conn: sqlite3.Connection) -> None:
        conn.executescript(_SCHEMA)
        conn.execute(
            "INSERT OR REPLACE INTO store_meta (key, value) VALUES (?, ?)",
            ("schema_version", str(SCHEMA_VERSION)),
        )
        conn.execute(
            "INSERT OR REPLACE INTO store_meta (key, value) VALUES (?, ?)",
            ("opened_at", _utcnow()),
        )
        conn.commit()

    def _guarded_connection(self, op: str) -> sqlite3.Connection | None:
        """The live connection, gated by the breaker.

        An open breaker answers ``None`` immediately (the op is skipped, not
        attempted); a half-open breaker lets one probe through.  A lost
        connection is re-opened on the spot when the breaker allows — the
        store self-heals from transient open failures.
        """
        if self._closed:
            return None
        if not self._breaker.allow():
            self._emit("op", {"op": op, "outcome": "skipped"})
            return None
        if self._conn is None:
            self._try_open()
        return self._conn

    def _guarded_read_connection(self, op: str) -> sqlite3.Connection | None:
        """Like :meth:`_guarded_connection`, for the read-only connection."""
        if self._guarded_connection(op) is None:
            return None
        return self._read_conn

    # ------------------------------------------------------------------ #
    # State / stats
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """``ok`` | ``degraded`` | ``quarantined`` (see module docstring)."""
        if self._closed:
            # Post-mortem reads see the condition the store closed in; a
            # clean shutdown's torn-down connection is not degradation.
            return self._final_state
        if self._conn is None or self._breaker.state != CircuitBreaker.CLOSED:
            return "degraded"
        with self._state_lock:
            if self._quarantined_from is not None:
                return "quarantined"
        return "ok"

    @property
    def quarantined_path(self) -> str | None:
        with self._state_lock:
            return self._quarantined_from

    def stats(self) -> StoreStats:
        catalog = results = history = 0
        conn = self._read_conn
        if conn is not None and self._breaker.state == CircuitBreaker.CLOSED:
            try:
                with self._read_lock:
                    catalog = conn.execute(
                        "SELECT COUNT(*) FROM graph_catalog"
                    ).fetchone()[0]
                    results = conn.execute(
                        "SELECT COUNT(*) FROM result_cache"
                    ).fetchone()[0]
                    history = conn.execute(
                        "SELECT COUNT(*) FROM cost_history"
                    ).fetchone()[0]
            except sqlite3.Error:
                pass
        with self._state_lock:
            quarantined = self._quarantined_from is not None
            counters = (
                self._hits,
                self._misses,
                self._writes,
                self._flushes,
                self._dropped,
                self._errors,
                self._backfilled,
            )
        # ``self.state`` re-takes the (non-reentrant) state lock, so it must
        # be read after the counter snapshot, never inside it.
        return StoreStats(
            state=self.state,
            path=str(self.path),
            hits=counters[0],
            misses=counters[1],
            writes=counters[2],
            flushes=counters[3],
            dropped=counters[4],
            errors=counters[5],
            backfilled=counters[6],
            pending=self._pending.qsize(),
            quarantined=quarantined,
            breaker_state=self._breaker.snapshot()["state"],
            catalog_rows=catalog,
            result_rows=results,
            history_rows=history,
        )

    def _count_error(self) -> None:
        with self._state_lock:
            self._errors += 1

    def _note_breaker(self, state: str) -> None:
        self._emit("breaker", {"state": state})

    def _emit(self, kind: str, labels: dict | None = None) -> None:
        callback = self._on_event
        if callback is None:
            return
        try:
            callback(kind, labels or {})
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Reads (request path: fast, absorb everything)
    # ------------------------------------------------------------------ #
    def lookup(self, key: tuple) -> TraversalResult | None:
        """Persistent-cache read validated against the catalog fingerprint.

        The join makes staleness *detection* part of the query: a row whose
        fingerprint differs from the graph's last-load fingerprint can never
        be returned.  Any store trouble — armed fault, locked file, broken
        connection — is absorbed into a miss.
        """
        conn = self._guarded_read_connection("read")
        if conn is None:
            return None
        columns = _key_columns(key)
        # Misses are decided from the in-memory key set — no SQLite, no GIL
        # handoff to a C call — because on a loaded service the miss is the
        # common case and the request thread competes with numpy kernels.
        with self._state_lock:
            if columns not in self._known_keys:
                self._misses += 1
                return None
        try:
            with self._read_lock:
                faults.check("store.read", table="result_cache")
                row = conn.execute(
                    "SELECT r.payload FROM result_cache r"
                    " JOIN graph_catalog g"
                    "   ON g.name = r.graph AND g.fingerprint = r.fingerprint"
                    " WHERE r.graph = ? AND r.application = ? AND r.source = ?"
                    "   AND r.strategy = ? AND r.system = ?",
                    columns,
                ).fetchone()
            if row is None:
                with self._state_lock:
                    self._misses += 1
                self._breaker.record_success()
                self._emit("op", {"op": "read", "outcome": "ok"})
                return None
            result = pickle.loads(row[0])
        except Exception:
            self._count_error()
            self._breaker.record_failure()
            self._emit("op", {"op": "read", "outcome": "error"})
            return None
        with self._state_lock:
            self._hits += 1
        self._breaker.record_success()
        self._emit("op", {"op": "read", "outcome": "ok"})
        self._emit("hit", {})
        return result

    def load_cost_seed(self) -> list[dict]:
        """Latest history row per cost-model family, decoded for seeding."""
        conn = self._guarded_read_connection("read")
        if conn is None:
            return []
        try:
            with self._read_lock:
                faults.check("store.read", table="cost_history")
                rows = conn.execute(
                    "SELECT family, group_seconds, job_seconds, samples,"
                    "       iterations"
                    " FROM cost_history WHERE id IN"
                    " (SELECT MAX(id) FROM cost_history GROUP BY family)"
                ).fetchall()
        except Exception:
            self._count_error()
            self._breaker.record_failure()
            self._emit("op", {"op": "read", "outcome": "error"})
            return []
        self._breaker.record_success()
        self._emit("op", {"op": "read", "outcome": "ok"})
        seeds = []
        for family_text, group_seconds, job_seconds, samples, iterations in rows:
            try:
                family = family_from_text(family_text)
            except (ValueError, TypeError):
                continue
            seeds.append(
                {
                    "family": family,
                    "group_seconds": float(group_seconds),
                    "job_seconds": float(job_seconds),
                    "samples": int(samples),
                    "iterations": (
                        float(iterations) if iterations is not None else None
                    ),
                }
            )
        return seeds

    # ------------------------------------------------------------------ #
    # Graph lifecycle (load path: synchronous reads are fine here)
    # ------------------------------------------------------------------ #
    def record_load(
        self, name: str, graph: CSRGraph
    ) -> list[tuple[tuple, TraversalResult]]:
        """Catalog a completed graph load; return rows to backfill.

        Upserts the catalog row (enqueued, async), purges cached results
        whose fingerprint no longer matches the loaded content, and reads
        back the still-valid rows so the service can warm its in-memory
        cache — restart repeats then hit at memory speed.
        """
        fingerprint = graph_fingerprint(graph)
        stats = degree_stats(graph)
        params = json.dumps(dict(graph.meta), sort_keys=True, default=str)
        self._enqueue(
            (
                "catalog_load",
                name,
                fingerprint,
                stats.num_vertices,
                stats.num_edges,
                graph.total_bytes,
                stats.average_degree,
                stats.median_degree,
                stats.max_degree,
                stats.min_degree,
                stats.std_degree,
                params,
            )
        )
        self._enqueue(("purge_stale", name, fingerprint))
        return self._backfill_rows(name, fingerprint)

    def _backfill_rows(
        self, name: str, fingerprint: str
    ) -> list[tuple[tuple, TraversalResult]]:
        conn = self._guarded_read_connection("read")
        if conn is None:
            return []
        try:
            with self._read_lock:
                faults.check("store.read", table="result_cache")
                rows = conn.execute(
                    "SELECT graph, application, source, strategy, system,"
                    "       payload"
                    " FROM result_cache WHERE graph = ? AND fingerprint = ?",
                    (name, fingerprint),
                ).fetchall()
        except Exception:
            self._count_error()
            self._breaker.record_failure()
            self._emit("op", {"op": "read", "outcome": "error"})
            return []
        self._breaker.record_success()
        self._emit("op", {"op": "read", "outcome": "ok"})
        entries = []
        for graph, application, source, strategy, system, payload in rows:
            try:
                result = pickle.loads(payload)
            except Exception:
                continue
            key = (
                graph,
                application,
                None if source == "-" else int(source),
                strategy,
                system,
            )
            entries.append((key, result))
        with self._state_lock:
            self._backfilled += len(entries)
        return entries

    def record_eviction(self, name: str) -> None:
        self._enqueue(("catalog_evict", name))

    # ------------------------------------------------------------------ #
    # Writes (hot path: enqueue only)
    # ------------------------------------------------------------------ #
    def enqueue_result(self, key: tuple, result: TraversalResult) -> None:
        """Write-through a finished result (pickled later, off-thread)."""
        self._enqueue(("result", key, result))

    def enqueue_cost(self, family, state: dict) -> None:
        """Append one cost-history row for a family's current EWMA state."""
        self._enqueue(
            (
                "cost",
                family_to_text(family),
                float(state["group_seconds"]),
                float(state["job_seconds"]),
                int(state["samples"]),
                state.get("iterations"),
            )
        )

    def _enqueue(self, op: tuple) -> None:
        if self._closed or self._stop.is_set():
            return
        try:
            self._pending.put_nowait(op)
        except queue.Full:
            with self._state_lock:
                self._dropped += 1
            self._emit("drop", {})

    # ------------------------------------------------------------------ #
    # Flush thread
    # ------------------------------------------------------------------ #
    def _flush_loop(self) -> None:
        while not self._stop.is_set():
            batch = self._collect_batch(timeout=self._flush_interval)
            if not batch:
                continue
            if not self._stop.is_set() and len(batch) < FLUSH_BATCH_LIMIT:
                # The get() above wakes on a burst's *first* op.  Hold the
                # batch open for one flush interval so the rest of the
                # burst coalesces into the same transaction — without this
                # a lightly loaded service commits once per op, and those
                # per-op WAL commits (not the request path) are what shows
                # up as serving overhead.  flush()/close() kick the event
                # to cut the wait short for synchronous drains; clearing
                # *before* the wait discards a kick left over from an
                # already-finished drain (a live flush() re-sets it every
                # millisecond, so no cut-short is ever lost).
                self._kick.clear()
                self._kick.wait(self._flush_interval)
                batch.extend(self._collect_batch(timeout=0.0))
            ok, deferred = self._write_batch(batch)
            if not ok:
                # Batch retained for the breaker's next probe window.
                self._requeue(batch)
            elif deferred:
                # Give the racing catalog upsert one flush interval to
                # arrive instead of spinning the deferral budget dry.
                self._requeue(deferred)
            self._finish(batch)
            if not ok or deferred:
                self._stop.wait(self._flush_interval)

    def _collect_batch(self, timeout: float | None) -> list[tuple]:
        batch: list[tuple] = []
        try:
            batch.append(self._pending.get(timeout=timeout))
        except queue.Empty:
            return batch
        while len(batch) < FLUSH_BATCH_LIMIT:
            try:
                batch.append(self._pending.get_nowait())
            except queue.Empty:
                break
        kept = []
        for op in batch:
            if op is None:
                # close()'s wake sentinel: account for its put, drop it.
                self._pending.task_done()
            else:
                kept.append(op)
        return kept

    def _requeue(self, batch: list[tuple]) -> None:
        for op in batch:
            try:
                self._pending.put_nowait(op)
            except queue.Full:
                with self._state_lock:
                    self._dropped += 1
                self._emit("drop", {})

    def _finish(self, batch: list[tuple]) -> None:
        """Balance the queue's unfinished-task count for one batch.

        Every op collected from the queue is marked done exactly once,
        *after* any re-queue ``put`` for it — so ``unfinished_tasks`` only
        reaches zero when no op is queued or held in flight by a flushing
        thread.  :meth:`flush` relies on that to know a drain is complete.
        """
        for _ in batch:
            self._pending.task_done()

    def _write_batch(self, batch: list[tuple]) -> "tuple[bool, list[tuple]]":
        """Apply one batch in a single transaction.

        Returns ``(ok, deferred)``: ``ok`` False keeps the whole batch
        queued (transaction failed); ``deferred`` holds result ops that
        raced their graph's catalog upsert and should be retried after it
        lands (each carries a decremented retry budget).
        """
        conn = self._guarded_connection("write")
        if conn is None:
            return False, []
        deferred: list[tuple] = []
        # Result ops are applied *after* everything else in the batch, as
        # one prefetch SELECT plus one executemany: they then see every
        # catalog upsert the batch carries (fewer spurious deferrals), a
        # current-fingerprint row trivially survives its own graph's
        # purge_stale, and — the reason this is worth the asymmetry — a
        # burst of N results costs two GIL release/re-acquire round-trips
        # instead of N+1.  Each re-acquire stalls behind whatever compute
        # thread holds the interpreter, so per-op INSERTs made the flush
        # thread's wall cost scale with the sweep load beside it.
        results: list[tuple] = []
        try:
            with self._db_lock:
                faults.check("store.write", ops=len(batch))
                for op in batch:
                    if op[0] == "result":
                        results.append(op)
                    else:
                        self._apply_op(conn, op, deferred)
                if results:
                    self._apply_results(conn, results, deferred)
                conn.commit()
        except Exception:
            try:
                with self._db_lock:
                    conn.rollback()
            except Exception:
                pass
            self._count_error()
            self._breaker.record_failure()
            self._emit("op", {"op": "write", "outcome": "error"})
            return False, []
        retained = [op for op in deferred if op[3] > 0]
        exhausted = len(deferred) - len(retained)
        with self._state_lock:
            self._writes += len(batch) - len(deferred)
            self._flushes += 1
            self._dropped += exhausted
        for _ in range(exhausted):
            self._emit("drop", {})
        self._breaker.record_success()
        self._emit("op", {"op": "write", "outcome": "ok"})
        self._emit("flush", {})
        return True, retained

    def _apply_results(
        self, conn: sqlite3.Connection, ops: list[tuple], deferred: list[tuple]
    ) -> None:
        """Insert a batch of result ops with two statements total.

        One prefetch maps each distinct graph to its catalog fingerprint;
        ops whose graph has no catalog row yet are deferred — a worker
        that *joined* a load can finish and enqueue its result before the
        loader thread's listener enqueues the catalog upsert, and an
        unversionable row would be unservable, so it retries (bounded
        budget) rather than dropping.  The rest land in one executemany.
        """
        now = _utcnow()
        names = sorted({_key_columns(op[1])[0] for op in ops})
        placeholders = ", ".join("?" for _ in names)
        fingerprints = dict(
            conn.execute(
                "SELECT name, fingerprint FROM graph_catalog"
                f" WHERE name IN ({placeholders})",
                names,
            ).fetchall()
        )
        rows: list[tuple] = []
        inserted: list[tuple] = []
        for op in ops:
            _, key, result = op[:3]
            remaining = op[3] if len(op) > 3 else RESULT_DEFER_LIMIT
            columns = _key_columns(key)
            fingerprint = fingerprints.get(columns[0])
            if fingerprint is None:
                deferred.append(("result", key, result, remaining - 1))
                continue
            rows.append((*columns, fingerprint, pickle.dumps(result), now))
            inserted.append(columns)
        if rows:
            conn.executemany(
                "INSERT OR REPLACE INTO result_cache"
                " (graph, application, source, strategy, system,"
                "  fingerprint, payload, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            # Keys registered before the transaction commits are at worst
            # transient false positives: the lookup pays one SQLite miss.
            with self._state_lock:
                self._known_keys.update(inserted)

    def _apply_op(
        self, conn: sqlite3.Connection, op: tuple, deferred: list[tuple]
    ) -> None:
        kind = op[0]
        now = _utcnow()
        if kind == "catalog_load":
            (
                _,
                name,
                fingerprint,
                num_vertices,
                num_edges,
                total_bytes,
                average_degree,
                median_degree,
                max_degree,
                min_degree,
                std_degree,
                params,
            ) = op
            conn.execute(
                "INSERT INTO graph_catalog"
                " (name, fingerprint, num_vertices, num_edges, total_bytes,"
                "  average_degree, median_degree, max_degree, min_degree,"
                "  std_degree, params, resident, loads, evictions,"
                "  first_loaded_at, last_loaded_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 1, 1, 0, ?, ?)"
                " ON CONFLICT(name) DO UPDATE SET"
                "  fingerprint = excluded.fingerprint,"
                "  num_vertices = excluded.num_vertices,"
                "  num_edges = excluded.num_edges,"
                "  total_bytes = excluded.total_bytes,"
                "  average_degree = excluded.average_degree,"
                "  median_degree = excluded.median_degree,"
                "  max_degree = excluded.max_degree,"
                "  min_degree = excluded.min_degree,"
                "  std_degree = excluded.std_degree,"
                "  params = excluded.params,"
                "  resident = 1,"
                "  loads = graph_catalog.loads + 1,"
                "  last_loaded_at = excluded.last_loaded_at",
                (
                    name,
                    fingerprint,
                    num_vertices,
                    num_edges,
                    total_bytes,
                    average_degree,
                    median_degree,
                    max_degree,
                    min_degree,
                    std_degree,
                    params,
                    now,
                    now,
                ),
            )
        elif kind == "purge_stale":
            _, name, fingerprint = op
            conn.execute(
                "DELETE FROM result_cache WHERE graph = ? AND fingerprint != ?",
                (name, fingerprint),
            )
            survivors = conn.execute(
                "SELECT graph, application, source, strategy, system"
                " FROM result_cache WHERE graph = ?",
                (name,),
            ).fetchall()
            with self._state_lock:
                self._known_keys = {
                    k for k in self._known_keys if k[0] != name
                } | {tuple(row) for row in survivors}
        elif kind == "catalog_evict":
            _, name = op
            conn.execute(
                "UPDATE graph_catalog SET resident = 0,"
                " evictions = evictions + 1 WHERE name = ?",
                (name,),
            )
        elif kind == "cost":
            _, family_text, group_seconds, job_seconds, samples, iterations = op
            conn.execute(
                "INSERT INTO cost_history"
                " (family, group_seconds, job_seconds, samples, iterations,"
                "  recorded_at)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    family_text,
                    group_seconds,
                    job_seconds,
                    samples,
                    iterations,
                    now,
                ),
            )
        else:  # pragma: no cover - enqueue sites are the only producers
            raise StoreError(f"unknown store op {kind!r}")

    # ------------------------------------------------------------------ #
    # Checkpoint / close
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> bool:
        """Flush the WAL back into the main database file."""
        conn = self._conn
        if conn is None or not self._breaker.allow():
            self._emit("op", {"op": "checkpoint", "outcome": "skipped"})
            return False
        try:
            with self._db_lock:
                faults.check("store.checkpoint", path=str(self.path))
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except Exception:
            self._count_error()
            self._breaker.record_failure()
            self._emit("op", {"op": "checkpoint", "outcome": "error"})
            return False
        self._breaker.record_success()
        self._emit("op", {"op": "checkpoint", "outcome": "ok"})
        return True

    def flush(self) -> None:
        """Drain every pending write synchronously (best effort).

        While the flush thread is alive it stays the *only* consumer: a
        second drainer stealing ops from the queue would break FIFO order
        (a result op can then retry against a catalog upsert still held in
        the flusher's open batch, spinning its deferral budget dry), so
        this path just kicks the flusher out of its coalescing wait and
        waits for the queue to settle.  The inline drain below is for
        after the flusher has exited (close) or died.
        """
        if self._flusher.is_alive() and not self._stop.is_set():
            errors_before = self._errors
            deadline = time.monotonic() + 5.0
            while self._pending.unfinished_tasks:
                if self._errors > errors_before:
                    # The store is failing writes; stay best-effort like
                    # the inline path and leave retries to the flusher.
                    return
                if time.monotonic() > deadline:
                    # Breaker-open stores fail writes without counting
                    # errors; don't wait out their probe cadence forever.
                    return
                self._kick.set()
                time.sleep(0.001)
            return
        while True:
            batch = self._collect_batch(timeout=0.0)
            if not batch:
                # The queue looks empty, but the flush thread may hold a
                # collected batch it has not committed yet — the queue's
                # unfinished-task count covers exactly that window.  Failed
                # or deferred ops come back as visible puts, so this wait
                # cannot outlive the in-flight transaction.
                if self._pending.unfinished_tasks == 0:
                    return
                time.sleep(0.001)
                continue
            ok, deferred = self._write_batch(batch)
            if not ok:
                # Keep durability best-effort on a broken store: the ops are
                # requeued once so close() doesn't spin, then abandoned.
                self._requeue(batch)
                self._finish(batch)
                return
            if deferred:
                # Decrementing retry budgets guarantee this loop terminates
                # even if the catalog row never arrives.
                self._requeue(deferred)
            self._finish(batch)

    def close(self) -> None:
        """Drain pending writes, checkpoint the WAL, close the connection."""
        if self._closed:
            return
        self._stop.set()
        self._kick.set()
        try:
            # Wake the flusher out of its blocking get immediately — with a
            # long flush interval the join below would otherwise wait out
            # the whole interval (or its 5s cap) for nothing.
            self._pending.put_nowait(None)
        except queue.Full:
            pass
        if self._flusher.is_alive():
            self._flusher.join(timeout=5.0)
        self.flush()
        self.checkpoint()
        self._final_state = self.state
        self._closed = True
        for attribute in ("_conn", "_read_conn"):
            conn = getattr(self, attribute)
            setattr(self, attribute, None)
            if conn is not None:
                try:
                    conn.close()
                except sqlite3.Error:
                    pass

    def __enter__(self) -> "ServingStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Operator helpers (the `repro store` subcommand)
# ---------------------------------------------------------------------- #
def store_verify(path: str | Path) -> tuple[bool, str]:
    """Run ``PRAGMA integrity_check``; ``(ok, detail)``."""
    target = Path(path)
    if not target.exists():
        return False, f"no database at {target}"
    try:
        conn = sqlite3.connect(str(target), timeout=30.0)
        try:
            conn.execute("PRAGMA busy_timeout=30000")
            rows = conn.execute("PRAGMA integrity_check").fetchall()
        finally:
            conn.close()
    except sqlite3.Error as exc:
        return False, f"integrity check failed to run: {exc}"
    detail = "; ".join(str(row[0]) for row in rows)
    return detail == "ok", detail


def store_info(path: str | Path) -> dict:
    """Table counts, pragmas and catalog summary for ``repro store info``."""
    target = Path(path)
    if not target.exists():
        raise StoreError(f"no database at {target}")
    conn = sqlite3.connect(str(target), timeout=30.0)
    try:
        conn.execute("PRAGMA busy_timeout=30000")
        info: dict = {
            "path": str(target),
            "bytes": target.stat().st_size,
            "journal_mode": conn.execute("PRAGMA journal_mode").fetchone()[0],
        }
        meta = dict(conn.execute("SELECT key, value FROM store_meta"))
        info["schema_version"] = meta.get("schema_version")
        info["opened_at"] = meta.get("opened_at")
        for table in ("graph_catalog", "result_cache", "cost_history"):
            info[table] = conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0]
        info["graphs"] = [
            {
                "name": name,
                "fingerprint": fingerprint,
                "num_vertices": num_vertices,
                "num_edges": num_edges,
                "resident": bool(resident),
                "loads": loads,
                "evictions": evictions,
            }
            for name, fingerprint, num_vertices, num_edges, resident, loads, evictions in conn.execute(
                "SELECT name, fingerprint, num_vertices, num_edges,"
                " resident, loads, evictions FROM graph_catalog ORDER BY name"
            )
        ]
        return info
    except sqlite3.Error as exc:
        raise StoreError(f"store info failed: {exc}") from exc
    finally:
        conn.close()


def store_vacuum(path: str | Path) -> None:
    """Checkpoint the WAL and VACUUM the database file."""
    target = Path(path)
    if not target.exists():
        raise StoreError(f"no database at {target}")
    conn = sqlite3.connect(str(target), timeout=30.0)
    try:
        conn.execute("PRAGMA busy_timeout=30000")
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        conn.execute("VACUUM")
    except sqlite3.Error as exc:
        raise StoreError(f"vacuum failed: {exc}") from exc
    finally:
        conn.close()
