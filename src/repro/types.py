"""Shared enums and light-weight value types used across the package."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

#: Integer dtype used for vertex identifiers and CSR offsets.
VERTEX_DTYPE = np.int64

#: Integer dtype used for edge destinations stored in the CSR edge list.
EDGE_DTYPE = np.int64

#: Dtype used for edge weights (the paper stores weights as 4-byte values).
WEIGHT_DTYPE = np.float32


class MemorySpace(enum.Enum):
    """Where a simulated array lives.

    ``DEVICE``
        GPU global memory; accesses never cross the PCIe link.
    ``HOST_PINNED``
        Pinned host memory accessed with zero-copy (cache-line granularity).
    ``UVM``
        Unified Virtual Memory; accesses are served by 4KB page migration.
    """

    DEVICE = "device"
    HOST_PINNED = "host_pinned"
    UVM = "uvm"


class AccessStrategy(enum.Enum):
    """The four edge-list access implementations compared by the paper (§5.1.2).

    ``UVM``
        Edge list in UVM space marked ``cudaMemAdviseSetReadMostly``.
    ``NAIVE``
        Zero-copy with one thread per vertex (uncoalesced, Listing 1).
    ``MERGED``
        Zero-copy with one warp per vertex (coalesced, §4.3.1).
    ``MERGED_ALIGNED``
        Zero-copy, warp per vertex, warp start shifted down to the closest
        128-byte boundary (§4.3.2).  This is "EMOGI" in the figures.
    """

    UVM = "uvm"
    NAIVE = "naive"
    MERGED = "merged"
    MERGED_ALIGNED = "merged_aligned"

    @property
    def is_zero_copy(self) -> bool:
        """True for the three strategies that read host memory directly."""
        return self is not AccessStrategy.UVM


#: Strategies in the order the paper plots them.
ALL_STRATEGIES = (
    AccessStrategy.UVM,
    AccessStrategy.NAIVE,
    AccessStrategy.MERGED,
    AccessStrategy.MERGED_ALIGNED,
)

#: The fully optimized configuration, i.e. what the paper calls "EMOGI".
EMOGI_STRATEGY = AccessStrategy.MERGED_ALIGNED


class Application(enum.Enum):
    """Graph traversal applications evaluated in the paper.

    BFS and SSSP are *frontier* applications (per-source work, batchable
    across sources); CC and PageRank are *streaming* applications (every
    vertex active every iteration, no source, batchable across platform
    lanes).
    """

    BFS = "bfs"
    SSSP = "sssp"
    CC = "cc"
    PAGERANK = "pagerank"

    @property
    def is_streaming(self) -> bool:
        """True for source-less whole-graph applications (CC, PageRank)."""
        return self in (Application.CC, Application.PAGERANK)


@dataclass(frozen=True)
class ByteSize:
    """A byte count with human-readable rendering helpers."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("byte sizes cannot be negative")

    @property
    def kib(self) -> float:
        return self.value / 1024.0

    @property
    def mib(self) -> float:
        return self.value / 1024.0**2

    @property
    def gib(self) -> float:
        return self.value / 1024.0**3

    def __str__(self) -> str:
        if self.value >= 1024**3:
            return f"{self.gib:.2f} GiB"
        if self.value >= 1024**2:
            return f"{self.mib:.2f} MiB"
        if self.value >= 1024:
            return f"{self.kib:.2f} KiB"
        return f"{self.value} B"


def gigabytes(value: float) -> int:
    """Convert a GB figure (decimal, as used for bandwidth) to bytes."""
    return int(value * 1e9)


def gibibytes(value: float) -> int:
    """Convert a GiB figure (binary, as used for capacities) to bytes."""
    return int(value * 1024**3)
