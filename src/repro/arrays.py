"""Small vectorized array utilities shared across the package."""

from __future__ import annotations

import numpy as np


def ragged_gather_indices(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[start, start+length)`` index ranges, fully vectorized.

    Equivalent to ``np.concatenate([np.arange(s, s + l) for s, l in ...])`` but
    runs in O(total output length) without a Python loop.  Empty ranges are
    skipped.
    """
    starts = np.asarray(starts, dtype=np.int64).ravel()
    lengths = np.asarray(lengths, dtype=np.int64).ravel()
    if starts.size != lengths.size:
        raise ValueError("starts and lengths must have the same shape")
    if np.any(lengths < 0):
        raise ValueError("lengths cannot be negative")
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nonzero = lengths > 0
    starts_nz = starts[nonzero]
    lengths_nz = lengths[nonzero]
    out_starts = np.concatenate(([0], np.cumsum(lengths_nz)[:-1]))
    increments = np.ones(total, dtype=np.int64)
    if starts_nz.size > 1:
        previous_end = starts_nz[:-1] + lengths_nz[:-1]
        increments[out_starts[1:]] = starts_nz[1:] - previous_end + 1
    increments[0] = starts_nz[0]
    return np.cumsum(increments)


def repeat_by_counts(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``np.repeat`` with validation, used to expand per-vertex data per edge."""
    values = np.asarray(values)
    counts = np.asarray(counts, dtype=np.int64)
    if values.shape[0] != counts.shape[0]:
        raise ValueError("values and counts must have the same length")
    if np.any(counts < 0):
        raise ValueError("counts cannot be negative")
    return np.repeat(values, counts)
