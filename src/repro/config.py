"""Hardware and calibration configuration for the simulated EMOGI testbed.

The paper's evaluation platform (Table 1) is a dual-socket Cascade Lake server
with an NVIDIA V100 16GB attached over PCIe 3.0 x16, plus a DGX A100 used for
the PCIe 4.0 scaling study (Figure 12).  We reproduce both platforms as
*calibrated analytical models*: every constant below is either taken directly
from the paper (TLP header size, tag width, measured cudaMemcpy peak, DDR4
sequential bandwidth, round-trip latency range) or chosen so the derived
bandwidth envelope matches the figures in Section 3.3.

Because the evaluation graphs are scaled down by :data:`DATASET_SCALE`, the
simulated GPU memory capacity is scaled by the same factor so the ratio of
graph size to device memory — the quantity that actually drives thrashing and
I/O amplification — matches the paper.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import astuple, dataclass, field, replace
from pathlib import Path

from .errors import ConfigurationError
from .types import gibibytes

#: Factor by which the paper's billion-edge graphs (and the 16 GiB V100
#: memory) are scaled down so experiments run in seconds on a laptop.
DATASET_SCALE = 2000.0


@dataclass(frozen=True)
class PCIeConfig:
    """Analytical model of a PCIe x16 link used for GPU zero-copy reads.

    The model exposes two ceilings for a stream of fixed-size read requests:

    * a *payload ceiling*: the raw link bandwidth discounted by the 18-byte
      transaction-layer-packet (TLP) header carried by every completion
      (§3.3: "fetching 32-byte of data makes the PCIe overhead ratio of at
      least 36%"), and
    * a *latency ceiling*: with an 8-bit tag field only 256 read requests can
      be outstanding, so small requests cannot cover the ~1.0-1.6us round
      trip (§3.3: "the maximum bandwidth we can achieve with only 32-byte
      requests and 1.0us of RTT is merely 7.63GB/s").
    """

    generation: int
    lanes: int = 16
    #: Raw payload bandwidth ceiling in GB/s before per-TLP header overhead.
    raw_payload_gbps: float = 14.0
    tlp_header_bytes: int = 18
    max_outstanding_reads: int = 256
    round_trip_time_us: float = 1.5
    #: Largest single read request the GPU issues (one 128B cache line).
    max_read_request_bytes: int = 128

    def __post_init__(self) -> None:
        if self.generation not in (3, 4, 5):
            raise ConfigurationError(f"unsupported PCIe generation: {self.generation}")
        if self.raw_payload_gbps <= 0:
            raise ConfigurationError("raw_payload_gbps must be positive")
        if self.max_outstanding_reads <= 0:
            raise ConfigurationError("max_outstanding_reads must be positive")
        if self.round_trip_time_us <= 0:
            raise ConfigurationError("round_trip_time_us must be positive")

    def header_efficiency(self, request_bytes: float) -> float:
        """Fraction of link throughput that is payload for a request size."""
        if request_bytes <= 0:
            raise ConfigurationError("request_bytes must be positive")
        return request_bytes / (request_bytes + self.tlp_header_bytes)

    def payload_limited_gbps(self, request_bytes: float) -> float:
        """Payload bandwidth ceiling imposed by TLP header overhead."""
        return self.raw_payload_gbps * self.header_efficiency(request_bytes)

    def latency_limited_gbps(self, request_bytes: float) -> float:
        """Payload bandwidth ceiling imposed by the outstanding-request limit."""
        if request_bytes <= 0:
            raise ConfigurationError("request_bytes must be positive")
        rtt_seconds = self.round_trip_time_us * 1e-6
        return (request_bytes * self.max_outstanding_reads / rtt_seconds) / 1e9

    def effective_read_gbps(self, request_bytes: float) -> float:
        """Achievable payload bandwidth for a homogeneous read-request stream."""
        return min(
            self.payload_limited_gbps(request_bytes),
            self.latency_limited_gbps(request_bytes),
        )

    @property
    def block_transfer_gbps(self) -> float:
        """Peak bandwidth of a bulk ``cudaMemcpy``-style transfer.

        Bulk copies use maximum-size packets, so this equals the payload
        ceiling at the largest request size (≈12.3 GB/s on the paper's
        PCIe 3.0 platform, ≈24.6 GB/s on PCIe 4.0).
        """
        return self.payload_limited_gbps(self.max_read_request_bytes)


@dataclass(frozen=True)
class DRAMConfig:
    """Host DDR4 model: minimum access granularity and sequential bandwidth."""

    min_access_bytes: int = 64
    #: Aggregate host-memory bandwidth available to the PCIe DMA engine.  The
    #: paper's server has quad-channel DDR4-2933 (~94 GB/s theoretical); the
    #: effective figure here leaves the link, not the DIMMs, as the bottleneck
    #: for well-formed request streams, while the 64-byte minimum access still
    #: doubles the DRAM traffic of a 32-byte request stream (§3.3).
    sequential_bandwidth_gbps: float = 75.0

    def __post_init__(self) -> None:
        if self.min_access_bytes <= 0:
            raise ConfigurationError("min_access_bytes must be positive")
        if self.sequential_bandwidth_gbps <= 0:
            raise ConfigurationError("sequential_bandwidth_gbps must be positive")

    def bytes_touched(self, request_bytes: int) -> int:
        """DRAM bytes actually read to serve a PCIe request of a given size."""
        if request_bytes <= 0:
            raise ConfigurationError("request_bytes must be positive")
        blocks = -(-request_bytes // self.min_access_bytes)
        return blocks * self.min_access_bytes


@dataclass(frozen=True)
class GPUConfig:
    """Simulated GPU: SIMT geometry, memory capacity and compute throughput."""

    name: str = "Tesla V100 (scaled)"
    memory_bytes: int = int(gibibytes(16.0) / DATASET_SCALE)
    warp_size: int = 32
    cacheline_bytes: int = 128
    sector_bytes: int = 32
    num_sms: int = 80
    kernel_launch_overhead_us: float = 8.0
    #: Edge-processing throughput when data is already on chip (edges/s).
    compute_edges_per_second: float = 10e9
    #: Throughput of simple per-vertex bookkeeping work (vertices/s).
    compute_vertices_per_second: float = 50e9
    #: Probability that a Naive (strided) thread's next element access within
    #: the same 32-byte sector still hits the GPU cache.  §3.3 observes that
    #: the strided pattern "will likely occupy GPU cache and can be evicted
    #: before all elements are traversed due to cache thrashing", causing the
    #: same sector to be re-fetched; this calibration constant reproduces the
    #: measured effect (Naive transferring more bytes than the dataset and
    #: landing at ~0.73x of UVM in Figure 9) without a cycle-level cache model.
    strided_sector_hit_rate: float = 0.5

    def __post_init__(self) -> None:
        if self.warp_size <= 0:
            raise ConfigurationError("warp_size must be positive")
        if self.cacheline_bytes % self.sector_bytes != 0:
            raise ConfigurationError("cacheline_bytes must be a multiple of sector_bytes")
        if self.memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")

    @property
    def sectors_per_line(self) -> int:
        return self.cacheline_bytes // self.sector_bytes


@dataclass(frozen=True)
class UVMConfig:
    """Unified Virtual Memory model (§2.2).

    Every 4KB migration pays a CPU-side driver overhead in addition to the
    link transfer.  The overhead is independent of the link generation, which
    is what prevents UVM from scaling with PCIe 4.0 in Figure 12.
    """

    page_bytes: int = 4096
    #: CPU-side driver cost per migrated page (fault handling, mapping).
    fault_service_overhead_us: float = 0.12
    #: Model cudaMemAdviseSetReadMostly: read-only duplication, no write-back.
    read_mostly: bool = True
    #: Pages migrated together when a fault is serviced.  The UVM driver does
    #: not move single 4KB pages for dense fault batches: its tree-based
    #: prefetcher migrates naturally-aligned multi-page blocks, which is a
    #: major source of the I/O read amplification the paper measures for
    #: sparse neighbor-list accesses (Figure 10).  16 pages = 64KB, the
    #: granularity the open-source UVM driver uses for its prefetch blocks.
    prefetch_pages: int = 16

    def __post_init__(self) -> None:
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigurationError("page_bytes must be a positive power of two")
        if self.fault_service_overhead_us < 0:
            raise ConfigurationError("fault_service_overhead_us cannot be negative")
        if self.prefetch_pages <= 0:
            raise ConfigurationError("prefetch_pages must be positive")


@dataclass(frozen=True)
class HostConfig:
    """Host CPU model used by the Subway-style baseline (§5.6).

    Subway compacts the active subgraph on the host before each transfer; the
    compaction is a gather over the active edges whose throughput is bounded
    by the CPU, not the link.
    """

    dram: DRAMConfig = field(default_factory=DRAMConfig)
    #: Cost of compacting one active edge into the Subway-style subgraph.
    #: Calibrated so subgraph generation dominates the transfer roughly 2:1,
    #: as the Subway comparison in Table 3 implies.
    subgraph_gather_ns_per_edge: float = 0.8
    #: Per-iteration cost of rebuilding the compacted offset array: Subway
    #: scans every vertex's activeness to lay out the new subgraph, so deep
    #: traversals (SSSP, high-diameter BFS) pay this repeatedly.
    subgraph_build_ns_per_vertex: float = 4.0
    memcpy_launch_overhead_us: float = 10.0


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated platform: GPU + interconnect + host."""

    name: str
    gpu: GPUConfig
    pcie: PCIeConfig
    host: HostConfig
    uvm: UVMConfig

    def with_pcie(self, pcie: PCIeConfig) -> "SystemConfig":
        """Return a copy of this platform with a different interconnect."""
        return replace(self, pcie=pcie, name=f"{self.name} (PCIe {pcie.generation}.0)")

    def with_gpu_memory(self, memory_bytes: int) -> "SystemConfig":
        """Return a copy with a different simulated device-memory capacity."""
        return replace(self, gpu=replace(self.gpu, memory_bytes=memory_bytes))

    def fingerprint(self) -> str:
        """Short stable digest of every model parameter of this platform.

        Two platforms share a fingerprint exactly when all their nested
        configuration values are equal, so the digest is safe to use in cache
        keys where the human-readable ``name`` is not (two differently named
        configs may be physically identical, and vice versa).
        """
        return hashlib.sha1(repr(astuple(self)).encode()).hexdigest()[:12]


#: Scheduling policies accepted by :attr:`ServiceConfig.policy`; the
#: implementations live in :mod:`repro.service.scheduler` (which validates
#: against this tuple so the two cannot drift apart).
SCHEDULING_POLICIES = ("fifo", "largest", "edf", "wfq")


def normalize_tenant_weights(weights) -> tuple[tuple[str, float], ...] | None:
    """Canonicalize a tenant→weight mapping for weighted-fair queueing.

    Accepts any mapping (or an already-normalized item tuple) and returns a
    sorted, immutable ``((tenant, weight), ...)`` tuple so the frozen
    :class:`ServiceConfig` stays hashable and two configs with the same
    weights compare equal regardless of dict ordering.  Weights are relative
    shares — only their ratios matter — so no rescaling is applied; each must
    be a positive finite number and each tenant a non-empty string.
    """
    if weights is None:
        return None
    items = weights.items() if hasattr(weights, "items") else weights
    normalized = []
    for tenant, weight in items:
        if not isinstance(tenant, str) or not tenant:
            raise ConfigurationError(
                f"tenant_weights keys must be non-empty tenant names, got {tenant!r}"
            )
        if isinstance(weight, bool) or not isinstance(weight, (int, float)):
            raise ConfigurationError(
                f"tenant_weights[{tenant!r}] must be a number, got {weight!r}"
            )
        weight = float(weight)
        if not math.isfinite(weight) or weight <= 0:
            raise ConfigurationError(
                f"tenant_weights[{tenant!r}] must be positive and finite, "
                f"got {weight!r}"
            )
        normalized.append((tenant, weight))
    deduped = dict(normalized)
    if len(deduped) != len(normalized):
        raise ConfigurationError("tenant_weights names a tenant twice")
    return tuple(sorted(deduped.items()))


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the :mod:`repro.service` traversal-serving layer.

    These are deliberately kept next to the hardware models: a deployment is
    one :class:`SystemConfig` (what we simulate) plus one :class:`ServiceConfig`
    (how we serve it).
    """

    #: Width of the worker pool executing traversal jobs.
    max_workers: int = 4
    #: Byte budget for resident graphs in the registry (simulated footprint,
    #: i.e. :attr:`repro.graph.csr.CSRGraph.total_bytes`).  ``None`` disables
    #: eviction.
    registry_budget_bytes: int | None = None
    #: Maximum number of traversal results kept by the LRU result cache.
    result_cache_entries: int = 1024
    #: Maximum finished jobs kept addressable by id; the oldest finished jobs
    #: beyond this are pruned so a long-running server's memory stays bounded.
    job_retention: int = 4096
    #: Which pending batch group a free worker drains next: ``"fifo"``
    #: (arrival order, the default), ``"largest"`` (most jobs first, maximizing
    #: multi-source amortization per engine sweep), ``"edf"`` (earliest
    #: deadline first), or ``"wfq"`` (start-time weighted-fair queueing over
    #: tenants, charged by predicted drain cost).  See
    #: :mod:`repro.service.scheduler`.
    policy: str = "fifo"
    #: Relative fair-queueing shares per tenant for the ``"wfq"`` policy,
    #: given as a mapping (canonicalized to a sorted item tuple).  A tenant
    #: absent from the mapping — including the anonymous ``None`` tenant —
    #: gets weight 1.0.  Only ratios matter: ``{"a": 3, "b": 1}`` lets tenant
    #: ``a`` drain three units of estimated engine cost for every one of
    #: ``b``'s while both are backlogged.
    tenant_weights: tuple | None = None
    #: EWMA smoothing factor of the online cost model
    #: (:mod:`repro.service.costmodel`): weight of the newest observation.
    #: Must be in (0, 1].
    cost_alpha: float = 0.25
    #: Reject deadline-carrying submissions whose estimated queue wait plus
    #: execution already exceeds their budget
    #: (:class:`~repro.errors.InfeasibleDeadlineError` at ``submit``) instead
    #: of letting them expire in the queue.
    reject_infeasible: bool = False
    #: Maximum jobs waiting in the queue; a submit beyond this raises
    #: :class:`~repro.errors.AdmissionError` instead of growing the backlog
    #: without bound.  ``None`` disables the limit.
    queue_limit: int | None = None
    #: Maximum *pending* jobs per tenant (requests without a tenant share the
    #: anonymous bucket); a submit beyond this raises
    #: :class:`~repro.errors.AdmissionError`.  ``None`` disables quotas.
    tenant_quota: int | None = None
    #: Number of recently finished jobs whose queueing/total latencies feed
    #: the percentile estimates in :class:`~repro.service.stats.ServiceStats`.
    latency_window: int = 2048
    #: Fraction of requests that receive a full span trace, in [0, 1].
    #: Sampling is systematic (every ``1/trace_sample``-th request), so low
    #: rates still give deterministic coverage.  Metrics counters are always
    #: on regardless of this knob.
    trace_sample: float = 1.0
    #: Capacity of the span ring buffer; the oldest spans are evicted when an
    #: unattended service outruns ``drain_traces()``.
    trace_buffer: int = 8192
    #: Tracing master switch: ``None`` defers to the ``REPRO_TRACE``
    #: environment variable (enabled unless set to a falsy value), ``False``
    #: disables span recording outright, ``True`` forces it on.
    trace_enabled: bool | None = None
    #: Fault-injection plan: a :class:`repro.service.faults.FaultPlan`, a
    #: spec string in the ``REPRO_FAULTS`` format, or ``None`` (in which case
    #: the service consults the ``REPRO_FAULTS`` environment variable).
    fault_plan: object | None = None
    #: Maximum retries (beyond the first attempt) of a graph load or engine
    #: sweep that failed with a transient
    #: :class:`~repro.errors.RetryableError`.  ``0`` disables retries.
    retry_limit: int = 2
    #: Base of the exponential retry backoff in seconds (doubled per attempt,
    #: plus up to ``retry_jitter`` relative jitter, clipped to the group's
    #: nearest request deadline).
    retry_backoff: float = 0.02
    #: Relative jitter applied to each backoff delay, in [0, 1].
    retry_jitter: float = 0.25
    #: Absolute per-sweep watchdog budget in seconds; a sweep past it raises
    #: :class:`~repro.errors.SweepTimeoutError` at the next iteration
    #: boundary.  ``None`` defers to ``sweep_timeout_multiplier``.
    sweep_timeout: float | None = None
    #: Cost-model-driven watchdog: budget = multiplier x the model's
    #: estimated engine seconds for the group (used when ``sweep_timeout`` is
    #: ``None``; ``None`` disables the watchdog entirely).
    sweep_timeout_multiplier: float | None = None
    #: Cost-model-driven fusion planning on the built-in execution path: each
    #: drain enumerates candidate fused shapes (multi-source words, ≤64-lane
    #: packed cross-config words, streaming platform lanes) over the pending
    #: backlog and executes the cheapest plan whose predicted saving beats
    #: the model's own estimate error (:mod:`repro.service.planner`).  With
    #: ``False`` every policy-selected group drains alone — the
    #: planner-off baseline the scheduler benchmark compares against.
    planner: bool = True
    #: Consecutive native-kernel failures that trip the circuit breaker from
    #: closed to open (degrading sweeps to the bit-identical numpy backend).
    breaker_threshold: int = 3
    #: Seconds the breaker stays open before a half-open probe sweep may try
    #: the native backend again.
    breaker_cooldown: float = 30.0
    #: Filesystem path of the durable serving store
    #: (:mod:`repro.service.store`): an SQLite/WAL database persisting the
    #: graph catalog, result cache and cost-model history across restarts.
    #: ``None`` (the default) disables durability — today's in-memory-only
    #: behavior.
    store_path: str | None = None
    #: Seconds the store's flush thread waits between write-through batches;
    #: smaller flushes sooner at more commit overhead.
    store_flush_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_workers <= 0:
            raise ConfigurationError("max_workers must be positive")
        if self.registry_budget_bytes is not None and self.registry_budget_bytes <= 0:
            raise ConfigurationError("registry_budget_bytes must be positive or None")
        if self.result_cache_entries < 0:
            raise ConfigurationError("result_cache_entries cannot be negative")
        if self.job_retention <= 0:
            raise ConfigurationError("job_retention must be positive")
        if self.policy not in SCHEDULING_POLICIES:
            raise ConfigurationError(
                f"unknown scheduling policy {self.policy!r}; "
                f"choose one of: {', '.join(SCHEDULING_POLICIES)}"
            )
        object.__setattr__(
            self, "tenant_weights", normalize_tenant_weights(self.tenant_weights)
        )
        if not isinstance(self.cost_alpha, (int, float)) or not (
            0.0 < float(self.cost_alpha) <= 1.0
        ):
            raise ConfigurationError(
                f"cost_alpha must be in (0, 1], got {self.cost_alpha!r}"
            )
        if self.queue_limit is not None and self.queue_limit <= 0:
            raise ConfigurationError("queue_limit must be positive or None")
        if self.tenant_quota is not None and self.tenant_quota <= 0:
            raise ConfigurationError("tenant_quota must be positive or None")
        if self.latency_window <= 0:
            raise ConfigurationError("latency_window must be positive")
        if not isinstance(self.trace_sample, (int, float)) or not (
            0.0 <= float(self.trace_sample) <= 1.0
        ):
            raise ConfigurationError(
                f"trace_sample must be in [0, 1], got {self.trace_sample!r}"
            )
        if self.trace_buffer <= 0:
            raise ConfigurationError("trace_buffer must be positive")
        if self.fault_plan is not None and not (
            isinstance(self.fault_plan, str)
            or callable(getattr(self.fault_plan, "check", None))
        ):
            # Duck-typed (a FaultPlan exposes .check) so this module never
            # imports repro.service, which itself imports this module.
            raise ConfigurationError(
                "fault_plan must be a FaultPlan, a REPRO_FAULTS spec string, "
                f"or None, got {self.fault_plan!r}"
            )
        if self.retry_limit < 0:
            raise ConfigurationError("retry_limit cannot be negative")
        if self.retry_backoff < 0:
            raise ConfigurationError("retry_backoff cannot be negative")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ConfigurationError(
                f"retry_jitter must be in [0, 1], got {self.retry_jitter!r}"
            )
        if self.sweep_timeout is not None and self.sweep_timeout <= 0:
            raise ConfigurationError("sweep_timeout must be positive or None")
        if (
            self.sweep_timeout_multiplier is not None
            and self.sweep_timeout_multiplier <= 0
        ):
            raise ConfigurationError(
                "sweep_timeout_multiplier must be positive or None"
            )
        if self.breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")
        if self.breaker_cooldown < 0:
            raise ConfigurationError("breaker_cooldown cannot be negative")
        if self.store_path is not None and (
            not isinstance(self.store_path, (str, Path)) or not str(self.store_path)
        ):
            raise ConfigurationError(
                f"store_path must be a non-empty path or None, got {self.store_path!r}"
            )
        if self.store_flush_interval <= 0:
            raise ConfigurationError("store_flush_interval must be positive")


#: PCIe 3.0 x16 as measured in the paper (cudaMemcpy peak ≈ 12.3 GB/s).
PCIE3_X16 = PCIeConfig(generation=3, raw_payload_gbps=14.0, round_trip_time_us=1.5)

#: PCIe 4.0 x16 as measured on the DGX A100 (peak ≈ 24.6 GB/s).
PCIE4_X16 = PCIeConfig(generation=4, raw_payload_gbps=28.0, round_trip_time_us=1.2)


def volta_pcie3() -> SystemConfig:
    """The paper's primary platform: V100 16GB over PCIe 3.0 (Table 1)."""
    return SystemConfig(
        name="Xeon Gold 6230 + Tesla V100 16GB (PCIe 3.0)",
        gpu=GPUConfig(),
        pcie=PCIE3_X16,
        host=HostConfig(),
        uvm=UVMConfig(),
    )


def ampere_pcie3() -> SystemConfig:
    """DGX A100 with the root port forced to PCIe 3.0 mode (Figure 12)."""
    return SystemConfig(
        name="DGX A100 (PCIe 3.0 mode)",
        gpu=GPUConfig(name="A100 (scaled)", num_sms=108),
        pcie=PCIE3_X16,
        host=HostConfig(),
        uvm=UVMConfig(),
    )


def ampere_pcie4() -> SystemConfig:
    """DGX A100 in its native PCIe 4.0 mode (Figure 12)."""
    return SystemConfig(
        name="DGX A100 (PCIe 4.0 mode)",
        gpu=GPUConfig(name="A100 (scaled)", num_sms=108),
        pcie=PCIE4_X16,
        host=HostConfig(),
        uvm=UVMConfig(),
    )


def titan_xp_pcie3() -> SystemConfig:
    """Titan Xp 12GB platform used only for the HALO comparison (Table 3)."""
    return SystemConfig(
        name="Titan Xp 12GB (PCIe 3.0)",
        gpu=GPUConfig(
            name="Titan Xp (scaled)",
            memory_bytes=int(gibibytes(12.0) / DATASET_SCALE),
            num_sms=60,
            compute_edges_per_second=7e9,
        ),
        pcie=PCIE3_X16,
        host=HostConfig(),
        uvm=UVMConfig(),
    )


def default_system() -> SystemConfig:
    """The platform used by every experiment unless stated otherwise."""
    return volta_pcie3()
