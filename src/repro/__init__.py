"""EMOGI reproduction: zero-copy out-of-memory graph traversal on GPUs.

This package reproduces "EMOGI: Efficient Memory-access for Out-of-memory
Graph-traversal In GPUs" (Min et al., VLDB 2020) as a pure-Python library: the
graph substrate (CSR, generators, datasets), a calibrated simulator of the
GPU/PCIe/UVM memory system, the EMOGI traversal kernels (BFS, SSSP, CC under
four edge-list access strategies), the HALO- and Subway-style baselines, and a
benchmark harness that regenerates every figure and table of the paper's
evaluation.

Quickstart::

    from repro import bfs, load_dataset, AccessStrategy

    graph = load_dataset("GK")
    emogi = bfs(graph, source=0, strategy=AccessStrategy.MERGED_ALIGNED)
    uvm = bfs(graph, source=0, strategy=AccessStrategy.UVM)
    print(f"speedup over UVM: {uvm.seconds / emogi.seconds:.2f}x")
"""

from .config import (
    DATASET_SCALE,
    PCIE3_X16,
    PCIE4_X16,
    SystemConfig,
    ampere_pcie3,
    ampere_pcie4,
    default_system,
    titan_xp_pcie3,
    volta_pcie3,
)
from .errors import (
    AdmissionError,
    AllocationError,
    ConfigurationError,
    DatasetError,
    DeadlineExceededError,
    GraphFormatError,
    InfeasibleDeadlineError,
    ReproError,
    SimulationError,
)
from .graph import (
    CSRGraph,
    DATASET_SYMBOLS,
    dataset_specs,
    from_edge_array,
    from_neighbor_lists,
    load_dataset,
    powerlaw_graph,
    rmat_graph,
    uniform_random_graph,
    web_graph,
)
from .traversal import (
    AccessStrategy,
    Application,
    EMOGI_STRATEGY,
    EngineArena,
    MultiSourceResult,
    TraversalEngine,
    TraversalResult,
    bfs,
    cc,
    run,
    run_average,
    run_batch,
    run_bfs_batch,
    run_pagerank,
    run_sssp_batch,
    run_streaming,
    run_streaming_batch,
    sssp,
)
from .baselines import run_halo, run_subway
from .config import ServiceConfig
from .service import GraphRegistry, Service, TraversalRequest

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # configuration
    "SystemConfig",
    "default_system",
    "volta_pcie3",
    "ampere_pcie3",
    "ampere_pcie4",
    "titan_xp_pcie3",
    "PCIE3_X16",
    "PCIE4_X16",
    "DATASET_SCALE",
    # errors
    "ReproError",
    "ConfigurationError",
    "GraphFormatError",
    "AllocationError",
    "SimulationError",
    "DatasetError",
    "AdmissionError",
    "InfeasibleDeadlineError",
    "DeadlineExceededError",
    # graphs
    "CSRGraph",
    "from_edge_array",
    "from_neighbor_lists",
    "rmat_graph",
    "uniform_random_graph",
    "powerlaw_graph",
    "web_graph",
    "load_dataset",
    "dataset_specs",
    "DATASET_SYMBOLS",
    # traversal
    "AccessStrategy",
    "Application",
    "EMOGI_STRATEGY",
    "bfs",
    "sssp",
    "cc",
    "run",
    "run_average",
    "run_batch",
    "run_streaming",
    "run_streaming_batch",
    "run_bfs_batch",
    "run_sssp_batch",
    "run_pagerank",
    "TraversalEngine",
    "TraversalResult",
    "MultiSourceResult",
    "EngineArena",
    # baselines
    "run_halo",
    "run_subway",
    # serving
    "Service",
    "ServiceConfig",
    "GraphRegistry",
    "TraversalRequest",
]
