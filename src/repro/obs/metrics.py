"""Metrics registry with Prometheus-text and JSON exposition.

Three instrument kinds, deliberately minimal:

* :class:`Counter` — monotonically increasing, optionally labelled.
* :class:`Gauge` — last-write-wins point-in-time value, optionally labelled.
* :class:`Summary` — a bounded sliding window of observations plus cumulative
  ``sum``/``count``.  Quantiles are computed with the exact same ceil-based
  nearest-rank formula as :class:`repro.service.stats.LatencyStats`, so the
  ``p50/p95/p99`` an operator scrapes match the ones ``Service.stats()``
  prints.

The registry renders either Prometheus text exposition format (``# HELP`` /
``# TYPE`` headers, ``{label="value"}`` children, summaries as ``quantile``
series plus ``_sum``/``_count``) or a nested JSON document, behind
``repro.cli stats --format prom|json``.

Everything is guarded by one registry-wide lock; instruments never call back
into the service, so there is no lock-ordering hazard with the service's own
lock.  (Both locks are created through
:func:`repro.analysis.lockorder.tracked_lock`, so ``REPRO_LOCKCHECK=1``
verifies that claim dynamically instead of trusting the comment.)

Every ``repro_*`` series the codebase emits must be pre-registered in
:data:`METRIC_NAMES` below — the ``REPRO106`` lint rule cross-references
instrumentation sites against this catalog, so a typo'd name that would
silently never export fails ``repro.cli lint`` instead.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Mapping

from ..analysis.lockorder import tracked_lock

_LabelKey = tuple[tuple[str, str], ...]

#: Catalog of every ``repro_*`` series this codebase emits: name -> help.
#: Instrumentation sites using a ``repro_*`` literal not present here are
#: rejected by the ``REPRO106`` lint rule (see :mod:`repro.analysis`).
METRIC_NAMES: dict[str, str] = {
    "repro_requests_submitted_total": "Requests accepted by submit().",
    "repro_requests_total": "Requests reaching a terminal state, by outcome.",
    "repro_requests_deduplicated_total": "Requests coalesced onto in-flight jobs.",
    "repro_requests_cache_served_total": "Requests answered from the result cache.",
    "repro_requests_rejected_total": "Submissions refused at admission, by reason.",
    "repro_request_latency_seconds": "End-to-end request latency.",
    "repro_queue_wait_seconds": "Time between enqueue and drain.",
    "repro_batches_total": "Batch groups drained.",
    "repro_executions_total": "Jobs executed (cache misses).",
    "repro_engine_seconds_total": "Wall-clock seconds spent in engine sweeps.",
    "repro_deadlines_total": "Deadline-carrying requests, by outcome.",
    "repro_costmodel_abs_error_seconds": "Absolute cost-model estimate error.",
    "repro_costmodel_observations_total": "Cost-model observations folded in.",
    "repro_kernel_iterations_total": "Traversal iterations executed, by app.",
    "repro_kernel_frontier_vertices_total": "Frontier vertices expanded, by app.",
    "repro_kernel_edges_total": "Edges traversed, by app.",
    "repro_kernel_relax_candidates_total": "Relaxation candidates streamed, by app.",
    "repro_kernel_backend_total": "Sweeps executed, by app and relax backend.",
    "repro_retries_total": "Transient-failure retries, by site.",
    "repro_sweep_timeouts_total": "Sweeps cancelled by the watchdog.",
    "repro_fused_isolations_total": "Fused groups re-run member-by-member.",
    "repro_native_degraded_total": "Sweeps degraded to the numpy backend.",
    "repro_native_breaker_transitions_total": "Circuit-breaker transitions, by state.",
    "repro_faults_injected_total": "Injected faults fired, by site.",
    "repro_cache_errors_total": "Result-cache errors absorbed, by operation.",
    "repro_rejected_after_close_total": "Submissions refused after close().",
    "repro_queue_policy_fallback_total": (
        "Drains where the policy named a non-pending group and the queue "
        "fell back to arrival order."
    ),
    "repro_planner_plans_built_total": "Candidate fusion plans enumerated.",
    "repro_planner_plans_chosen_total": "Fusion plans executed, by kind.",
    "repro_planner_plans_rejected_total": (
        "Candidate fusion plans scored but not chosen."
    ),
    "repro_planner_packed_lanes_total": "Lanes executed inside chosen fused plans.",
    "repro_planner_estimated_savings_seconds": (
        "Estimated solo-minus-shared seconds of each chosen plan."
    ),
    "repro_pending_jobs": "Jobs queued, not yet picked up.",
    "repro_active_workers": "Worker tasks queued or running.",
    "repro_uptime_seconds": "Seconds since service construction.",
    "repro_cache_entries": "Results held by the result cache.",
    "repro_cache_hit_rate": "Result cache hit rate in [0, 1].",
    "repro_costmodel_mean_abs_error_seconds": "Mean absolute cost-model error.",
    "repro_trace_buffered_spans": "Spans buffered in the tracer ring.",
    "repro_native_breaker_state": "Circuit-breaker state code (0/1/2).",
    "repro_store_operations_total": "Durable-store operations, by op and outcome.",
    "repro_store_hits_total": "Requests answered from the persistent result cache.",
    "repro_store_flushes_total": "Write-through batches committed by the flush thread.",
    "repro_store_dropped_writes_total": "Pending store writes dropped (queue full).",
    "repro_store_breaker_transitions_total": "Store breaker transitions, by state.",
    "repro_store_state": "Durable-store state code (0 ok / 1 degraded / 2 quarantined / 3 disabled).",
    "repro_store_pending_writes": "Store writes queued for the flush thread.",
}

#: Quantiles rendered for summaries, matching LatencyStats' fields.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def _label_key(label_names: tuple[str, ...], labels: Mapping[str, Any]) -> _LabelKey:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple((name, str(labels[name])) for name in label_names)


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Instrument:
    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = tracked_lock("obs.Instrument._lock")

    def render_prometheus(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def render_json(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonic counter with optional labels (one child per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: Iterable[str] = ()) -> None:
        super().__init__(name, help, tuple(label_names))
        self._children: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._children.get(key, 0.0)

    def render_prometheus(self) -> list[str]:
        with self._lock:
            children = dict(self._children)
        if not children and not self.label_names:
            children = {(): 0.0}
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in sorted(children.items())
        ]

    def render_json(self) -> Any:
        with self._lock:
            if not self.label_names:
                return self._children.get((), 0.0)
            return [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._children.items())
            ]


class Gauge(_Instrument):
    """Point-in-time value with optional labels; ``set`` is last-write-wins."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", label_names: Iterable[str] = ()) -> None:
        super().__init__(name, help, tuple(label_names))
        self._children: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._children[key] = float(value)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._children.get(key, 0.0)

    def render_prometheus(self) -> list[str]:
        with self._lock:
            children = dict(self._children)
        if not children and not self.label_names:
            children = {(): 0.0}
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in sorted(children.items())
        ]

    def render_json(self) -> Any:
        with self._lock:
            if not self.label_names:
                return self._children.get((), 0.0)
            return [
                {"labels": dict(key), "value": value}
                for key, value in sorted(self._children.items())
            ]


class _SummaryChild:
    __slots__ = ("window", "sum", "count")

    def __init__(self, window: int) -> None:
        self.window: deque[float] = deque(maxlen=window)
        self.sum = 0.0
        self.count = 0


class Summary(_Instrument):
    """Sliding-window observations with LatencyStats-compatible quantiles.

    ``sum``/``count`` are cumulative (Prometheus summary semantics); the
    quantiles come from a bounded window of the most recent observations so a
    long-running service reports current behaviour, exactly like the
    ``latency_window`` the service stats use.
    """

    kind = "summary"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Iterable[str] = (),
        window: int = 1024,
    ) -> None:
        super().__init__(name, help, tuple(label_names))
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._children: dict[_LabelKey, _SummaryChild] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _SummaryChild(self.window)
            child.window.append(float(value))
            child.sum += float(value)
            child.count += 1

    def snapshot(self, **labels: Any) -> "Any":
        """LatencyStats over the current window for one label set."""
        from ..service.stats import LatencyStats  # local: avoids import cycle

        key = _label_key(self.label_names, labels)
        with self._lock:
            child = self._children.get(key)
            samples = list(child.window) if child is not None else []
        return LatencyStats.from_samples(samples)

    def render_prometheus(self) -> list[str]:
        from ..service.stats import LatencyStats  # local: avoids import cycle

        with self._lock:
            children = [
                (key, list(child.window), child.sum, child.count)
                for key, child in sorted(self._children.items())
            ]
        lines: list[str] = []
        for key, samples, total, count in children:
            stats = LatencyStats.from_samples(samples)
            quantile_values = {
                0.5: stats.p50_seconds,
                0.95: stats.p95_seconds,
                0.99: stats.p99_seconds,
            }
            for quantile in SUMMARY_QUANTILES:
                labels = _render_labels(key, (("quantile", _format_value(quantile)),))
                lines.append(
                    f"{self.name}{labels} {_format_value(quantile_values[quantile])}"
                )
            lines.append(f"{self.name}_sum{_render_labels(key)} {_format_value(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines

    def render_json(self) -> Any:
        from ..service.stats import LatencyStats  # local: avoids import cycle

        with self._lock:
            children = [
                (key, list(child.window), child.sum, child.count)
                for key, child in sorted(self._children.items())
            ]
        entries = []
        for key, samples, total, count in children:
            stats = LatencyStats.from_samples(samples)
            entry = {
                "sum": total,
                "count": count,
                "p50": stats.p50_seconds,
                "p95": stats.p95_seconds,
                "p99": stats.p99_seconds,
                "max": stats.max_seconds,
            }
            if self.label_names:
                entries.append({"labels": dict(key), **entry})
            else:
                return entry
        if not self.label_names:
            return {"sum": 0.0, "count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        return entries


class MetricsRegistry:
    """Name-keyed collection of instruments with idempotent constructors.

    ``registry.counter("x")`` returns the existing counter if one is already
    registered under that name (and raises if the name is taken by a different
    kind or label set), so instrumentation sites never need to coordinate
    creation order.
    """

    def __init__(self) -> None:
        self._lock = tracked_lock("obs.MetricsRegistry._lock")
        self._instruments: dict[str, _Instrument] = {}

    def counter(
        self, name: str, help: str = "", label_names: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, tuple(label_names))

    def gauge(self, name: str, help: str = "", label_names: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, tuple(label_names))

    def summary(
        self,
        name: str,
        help: str = "",
        label_names: Iterable[str] = (),
        window: int = 1024,
    ) -> Summary:
        return self._get_or_create(
            Summary, name, help, tuple(label_names), window=window
        )

    def _get_or_create(self, cls, name, help, label_names, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            instrument = cls(name, help, label_names, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def render_prometheus(self) -> str:
        with self._lock:
            instruments = [self._instruments[name] for name in sorted(self._instruments)]
        lines: list[str] = []
        for instrument in instruments:
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            lines.extend(instrument.render_prometheus())
        return "\n".join(lines) + ("\n" if lines else "")

    def render_json(self) -> dict[str, Any]:
        with self._lock:
            instruments = [self._instruments[name] for name in sorted(self._instruments)]
        return {
            instrument.name: {
                "kind": instrument.kind,
                "help": instrument.help,
                "values": instrument.render_json(),
            }
            for instrument in instruments
        }
