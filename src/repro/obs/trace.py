"""Request spans: trace ids, a bounded ring buffer, sampling, JSONL export.

Span model
----------
A :class:`Span` is a flat, JSON-friendly record: ``(trace_id, span_id, name,
start_unix, duration_seconds, parent_id, attributes)``.  Timestamps are
wall-clock epoch seconds — monotonic ``perf_counter`` values are meaningless
once exported — but durations are always differences of ``perf_counter``
readings taken on the same timeline, so latency math is unaffected by clock
steps (see ``Job.wall_clock``).

The service emits one trace per sampled request with four tiling spans
(``admission`` / ``queue`` / ``sweep`` / ``cache``) whose durations sum to the
request's measured latency, plus standalone ``engine_sweep`` spans shared by
every request fused into the same kernel sweep (linked via the per-request
sweep span's ``sweep_ref`` attribute).

Cost discipline
---------------
Recording a span is a dataclass construction plus a locked ``deque.append``;
the ring buffer (``deque(maxlen=...)``) silently evicts the oldest spans so an
unattended service never grows without bound.  Sampling is systematic (an
accumulator, not a PRNG): ``sample=0.25`` traces exactly every 4th request,
which keeps tests deterministic and guarantees coverage at low rates.
``REPRO_TRACE=0`` (mirroring ``REPRO_NATIVE``) disables span recording and
per-iteration kernel logs entirely.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..analysis.lockorder import tracked_lock
from ..envflags import env_flag

#: Environment variable that disables tracing when set to a falsy value.
ENV_SWITCH = "REPRO_TRACE"


def tracing_enabled(default: bool = True) -> bool:
    """True unless ``REPRO_TRACE`` is set falsy (shared envflags contract)."""
    return env_flag(ENV_SWITCH, default)


@dataclass(frozen=True)
class Span:
    """One timed stage of a request (or a shared engine sweep)."""

    trace_id: str
    span_id: str
    name: str
    start_unix: float
    duration_seconds: float
    parent_id: str | None = None
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_seconds": self.duration_seconds,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        return record

    def to_jsonl(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)


class Tracer:
    """Thread-safe span sink with systematic sampling and a bounded buffer."""

    def __init__(
        self,
        capacity: int = 8192,
        sample: float = 1.0,
        enabled: bool | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.capacity = int(capacity)
        self.sample = float(sample)
        # The explicit flag wins; otherwise consult the environment so a
        # deployed service can be silenced without a code change.
        self.enabled = tracing_enabled() if enabled is None else bool(enabled)
        self._spans: deque[Span] = deque(maxlen=self.capacity)
        self._lock = tracked_lock("obs.Tracer._lock")
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._accumulator = 0.0
        self._sampled = 0
        self._skipped = 0
        self._emitted = 0
        self._evicted = 0

    def begin(self, kind: str = "req") -> str | None:
        """Sampling decision for a new trace: an id to record, or ``None``.

        Systematic sampling: an accumulator gains ``sample`` per call and a
        trace is drawn each time it crosses 1, so a rate of ``1/k`` selects
        exactly every ``k``-th request rather than a coin flip per request.
        """
        if not self.enabled or self.sample <= 0.0:
            with self._lock:
                self._skipped += 1
            return None
        with self._lock:
            self._accumulator += self.sample
            if self._accumulator >= 1.0 - 1e-12:
                self._accumulator -= 1.0
                self._sampled += 1
                return f"{kind}-{next(self._trace_ids)}"
            self._skipped += 1
            return None

    def next_span_id(self, prefix: str = "span") -> str:
        return f"{prefix}-{next(self._span_ids)}"

    def emit(self, span: Span) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._append_locked(span)

    def emit_many(self, spans: Iterable[Span]) -> None:
        if not self.enabled:
            return
        with self._lock:
            for span in spans:
                self._append_locked(span)

    def _append_locked(self, span: Span) -> None:
        if len(self._spans) == self.capacity:
            self._evicted += 1
        self._spans.append(span)
        self._emitted += 1

    def drain(self) -> list[Span]:
        """Return and clear every buffered span (oldest first)."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def describe(self) -> dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "sample": self.sample,
                "buffered": len(self._spans),
                "sampled_traces": self._sampled,
                "skipped_traces": self._skipped,
                "emitted_spans": self._emitted,
                "evicted_spans": self._evicted,
            }


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write spans as one JSON object per line; returns the span count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(span.to_jsonl())
            handle.write("\n")
            count += 1
    return count
