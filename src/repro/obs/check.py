"""Validate a drained trace JSONL file (CI smoke gate).

``python -m repro.obs.check trace.jsonl`` asserts that:

* every line parses as a JSON span with the required fields;
* every request trace carries the full lifecycle — ``admission``, ``queue``,
  ``sweep``, and ``cache`` spans;
* the four stage durations tile the request: they sum to the request's
  measured end-to-end latency (the ``latency_seconds`` attribute stamped on
  the ``admission`` span) within 1ms;
* every ``sweep_ref`` attribution link on a per-request sweep span points at
  an ``engine_sweep`` span that actually exists in the file (fused/deduped
  requests share that sweep).

Exits non-zero with one line per violation, so the CI step is a plain
command, not a test framework.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Any

#: Span names every completed request trace must contain.
LIFECYCLE_STAGES = ("admission", "queue", "sweep", "cache")

#: Optional span names that may appear any number of times per trace:
#: ``engine_sweep`` (shared engine invocations), ``retry`` (one per backoff
#: wait on the resilience path), and ``plan`` (one per fusion-planner drain
#: decision, carrying the chosen shape and estimated-vs-actual cost).
AUXILIARY_SPANS = ("engine_sweep", "retry", "plan")

#: Maximum allowed |sum(stage durations) - measured latency|, in seconds.
TILE_TOLERANCE_SECONDS = 1e-3

_REQUIRED_FIELDS = ("trace_id", "span_id", "name", "start_unix", "duration_seconds")


def check_trace_lines(lines: list[str]) -> tuple[int, list[str]]:
    """Validate JSONL span lines; returns ``(request_traces_checked, errors)``."""
    errors: list[str] = []
    traces: dict[str, dict[str, dict[str, Any]]] = defaultdict(dict)
    sweep_span_ids: set[str] = set()
    retry_refs: list[tuple[int, str, str]] = []

    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        missing = [key for key in _REQUIRED_FIELDS if key not in span]
        if missing:
            errors.append(f"line {lineno}: span missing fields {missing}")
            continue
        if span["duration_seconds"] < 0:
            errors.append(
                f"line {lineno}: negative duration {span['duration_seconds']}"
            )
        if span["name"] == "engine_sweep":
            sweep_span_ids.add(span["span_id"])
        elif span["name"] == "retry":
            # Retry spans record backoff waits; they ride a request trace but
            # are not lifecycle stages (a trace may carry zero or many).  A
            # sweep_ref, when present, must resolve like any other.
            ref = span.get("attributes", {}).get("sweep_ref")
            if ref is not None:
                retry_refs.append((lineno, span["trace_id"], ref))
        elif span["name"] == "plan":
            # Plan spans record one fusion decision each; a trace sees one
            # per drain it participated in (zero when untraced jobs anchored).
            pass
        elif span["name"] in LIFECYCLE_STAGES:
            stages = traces[span["trace_id"]]
            if span["name"] in stages:
                errors.append(
                    f"trace {span['trace_id']}: duplicate {span['name']} span"
                )
            stages[span["name"]] = span
        else:
            errors.append(f"line {lineno}: unknown span name {span['name']!r}")

    for trace_id, stages in sorted(traces.items()):
        missing_stages = [name for name in LIFECYCLE_STAGES if name not in stages]
        if missing_stages:
            errors.append(f"trace {trace_id}: missing stages {missing_stages}")
            continue
        total = sum(stages[name]["duration_seconds"] for name in LIFECYCLE_STAGES)
        attrs = stages["admission"].get("attributes", {})
        latency = attrs.get("latency_seconds")
        if latency is None:
            errors.append(
                f"trace {trace_id}: admission span lacks latency_seconds attribute"
            )
        elif abs(total - latency) > TILE_TOLERANCE_SECONDS:
            errors.append(
                f"trace {trace_id}: stage durations sum to {total:.6f}s but "
                f"measured latency is {latency:.6f}s "
                f"(|delta| {abs(total - latency) * 1e3:.3f}ms > 1ms)"
            )
        sweep_attrs = stages["sweep"].get("attributes", {})
        sweep_ref = sweep_attrs.get("sweep_ref")
        if sweep_ref is not None and sweep_ref not in sweep_span_ids:
            errors.append(
                f"trace {trace_id}: sweep_ref {sweep_ref!r} does not match any "
                f"engine_sweep span in the file"
            )

    for lineno, trace_id, ref in retry_refs:
        if ref not in sweep_span_ids:
            errors.append(
                f"line {lineno}: retry span of trace {trace_id} references "
                f"sweep_ref {ref!r} with no matching engine_sweep span"
            )

    return len(traces), errors


def check_trace_file(path: str) -> tuple[int, list[str]]:
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    if not lines:
        return 0, [f"{path}: trace file is empty"]
    return check_trace_lines(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.check",
        description="Validate a drained trace JSONL file.",
    )
    parser.add_argument("path", help="trace file (one JSON span per line)")
    parser.add_argument(
        "--min-traces",
        type=int,
        default=1,
        help="fail unless at least this many request traces are present",
    )
    args = parser.parse_args(argv)

    try:
        checked, errors = check_trace_file(args.path)
    except OSError as exc:
        print(f"TRACE CHECK: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    if checked < args.min_traces:
        errors.append(
            f"{args.path}: only {checked} request traces found "
            f"(need >= {args.min_traces})"
        )
    for error in errors:
        print(f"TRACE CHECK: {error}", file=sys.stderr)
    if errors:
        return 1
    print(f"TRACE CHECK: OK — {checked} request traces, all stages tiled within 1ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
