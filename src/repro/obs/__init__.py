"""Observability: request tracing, kernel counters, metrics exposition.

The serving layer answers *what* was computed; this package answers *where
the time went*.  Three pieces:

* :mod:`repro.obs.trace` — per-request spans (admission / queue / sweep /
  cache) with trace ids, shared engine-sweep spans that fused requests link
  to, a bounded ring buffer, and JSONL export.  Sampling is configurable
  (:attr:`repro.config.ServiceConfig.trace_sample`) and ``REPRO_TRACE=0``
  kills span recording entirely, mirroring ``REPRO_NATIVE``.
* :mod:`repro.obs.metrics` — a registry of counters / gauges / summaries
  (quantiles computed by the same :class:`~repro.service.stats.LatencyStats`
  formula the service stats use) with Prometheus-text and JSON renderers,
  behind ``repro.cli stats --format prom|json``.
* :mod:`repro.obs.check` — validates a drained trace file: every completed
  request must carry the full lifecycle and its span durations must tile its
  measured latency (the CI smoke gate).

Kernel-level counters (per-iteration frontier sizes, edges relaxed,
candidate-stream lengths, chosen relax backend) live on
:class:`repro.traversal.results.KernelCounters`, attached to every
:class:`~repro.traversal.results.TraversalMetrics` by the engines.
"""

from .metrics import Counter, Gauge, MetricsRegistry, Summary
from .trace import Span, Tracer, tracing_enabled

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Span",
    "Summary",
    "Tracer",
    "tracing_enabled",
]
