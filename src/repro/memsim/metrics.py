"""Timing model: converts counted memory-system events into simulated time.

The traversal engine counts *events* — PCIe read requests by size, UVM page
migrations, block-transfer bytes, edges processed, kernels launched.  The
:class:`TimingModel` converts those counts into seconds using the calibrated
platform description in :mod:`repro.config`, and :class:`TrafficRecord`
accumulates the raw counts a whole run produced (the quantities the paper's
FPGA/VTune measurements report).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SystemConfig
from ..timing import TimeBreakdown
from .coalescer import RequestHistogram
from .interconnect import PCIeLink


@dataclass
class TrafficRecord:
    """Raw traffic counters accumulated over one traversal run."""

    request_histogram: RequestHistogram = field(default_factory=RequestHistogram)
    uvm_migrated_bytes: int = 0
    uvm_migrations: int = 0
    uvm_pages_touched: int = 0
    block_transfer_bytes: int = 0
    block_transfers: int = 0
    dram_bytes: int = 0
    #: Bytes of edge-list data the algorithm actually needed (useful bytes).
    useful_bytes: int = 0
    edges_processed: int = 0
    vertices_processed: int = 0
    kernel_launches: int = 0

    @property
    def zero_copy_bytes(self) -> int:
        return self.request_histogram.total_bytes

    @property
    def host_bytes_read(self) -> int:
        """All bytes moved from host memory to the GPU over the link."""
        return self.zero_copy_bytes + self.uvm_migrated_bytes + self.block_transfer_bytes

    def io_amplification(self, dataset_bytes: int) -> float:
        """Host bytes read divided by the dataset size (Figure 10)."""
        if dataset_bytes <= 0:
            return 0.0
        return self.host_bytes_read / dataset_bytes

    def scaled(self, fraction: float) -> "TrafficRecord":
        """A copy with every counter scaled by ``fraction`` (rounded to ints).

        Attribution helper for batched multi-source runs: the batch engine
        records one shared traffic stream, and each source's share is the
        stream scaled by the fraction of work that source contributed.
        """
        if fraction < 0:
            raise ValueError("fraction cannot be negative")
        histogram = RequestHistogram(
            {
                size: int(round(count * fraction))
                for size, count in self.request_histogram.counts.items()
            }
        )
        return TrafficRecord(
            request_histogram=histogram,
            uvm_migrated_bytes=int(round(self.uvm_migrated_bytes * fraction)),
            uvm_migrations=int(round(self.uvm_migrations * fraction)),
            uvm_pages_touched=int(round(self.uvm_pages_touched * fraction)),
            block_transfer_bytes=int(round(self.block_transfer_bytes * fraction)),
            block_transfers=int(round(self.block_transfers * fraction)),
            dram_bytes=int(round(self.dram_bytes * fraction)),
            useful_bytes=int(round(self.useful_bytes * fraction)),
            edges_processed=int(round(self.edges_processed * fraction)),
            vertices_processed=int(round(self.vertices_processed * fraction)),
            kernel_launches=int(round(self.kernel_launches * fraction)),
        )

    def merge(self, other: "TrafficRecord") -> None:
        self.request_histogram.merge_in_place(other.request_histogram)
        self.uvm_migrated_bytes += other.uvm_migrated_bytes
        self.uvm_migrations += other.uvm_migrations
        self.uvm_pages_touched += other.uvm_pages_touched
        self.block_transfer_bytes += other.block_transfer_bytes
        self.block_transfers += other.block_transfers
        self.dram_bytes += other.dram_bytes
        self.useful_bytes += other.useful_bytes
        self.edges_processed += other.edges_processed
        self.vertices_processed += other.vertices_processed
        self.kernel_launches += other.kernel_launches


class TimingModel:
    """Calibrated cost model for one simulated platform."""

    def __init__(self, system: SystemConfig) -> None:
        self.system = system
        self.link = PCIeLink(system.pcie, system.host.dram)

    # ------------------------------------------------------------------ #
    # Data movement
    # ------------------------------------------------------------------ #
    def zero_copy_time(self, histogram: RequestHistogram) -> TimeBreakdown:
        """Time to serve a zero-copy request stream (overlapped with compute)."""
        result = self.link.transfer_requests(histogram)
        return TimeBreakdown(
            interconnect_seconds=result.link_seconds,
            dram_seconds=result.dram_bytes
            / (self.system.host.dram.sequential_bandwidth_gbps * 1e9),
        )

    def uvm_time(self, migrated_bytes: int, migrations: int) -> TimeBreakdown:
        """Time for a batch of UVM page migrations.

        The link transfer happens at full block-transfer bandwidth, but every
        migration also pays the CPU-side fault-service overhead, which is
        serial and does not shrink with a faster interconnect.
        """
        transfer = self.link.transfer_block(migrated_bytes)
        fault_seconds = migrations * self.system.uvm.fault_service_overhead_us * 1e-6
        return TimeBreakdown(
            interconnect_seconds=transfer.link_seconds,
            dram_seconds=transfer.dram_bytes
            / (self.system.host.dram.sequential_bandwidth_gbps * 1e9),
            fault_handling_seconds=fault_seconds,
        )

    def block_transfer_time(self, num_bytes: int, include_launch: bool = True) -> TimeBreakdown:
        """Time for an explicit ``cudaMemcpy`` (used by the Subway baseline)."""
        transfer = self.link.transfer_block(num_bytes)
        launch = (
            self.system.host.memcpy_launch_overhead_us * 1e-6 if include_launch else 0.0
        )
        return TimeBreakdown(
            interconnect_seconds=transfer.link_seconds,
            dram_seconds=transfer.dram_bytes
            / (self.system.host.dram.sequential_bandwidth_gbps * 1e9),
            host_preprocess_seconds=launch,
        )

    # ------------------------------------------------------------------ #
    # Compute and control
    # ------------------------------------------------------------------ #
    def compute_time(self, edges: int, vertices: int = 0) -> TimeBreakdown:
        """GPU-side processing time once the data is available."""
        gpu = self.system.gpu
        seconds = edges / gpu.compute_edges_per_second
        seconds += vertices / gpu.compute_vertices_per_second
        return TimeBreakdown(compute_seconds=seconds)

    def kernel_launch_time(self, launches: int = 1) -> TimeBreakdown:
        """Host-side launch overhead; one traversal iteration = one kernel (§4.2)."""
        seconds = launches * self.system.gpu.kernel_launch_overhead_us * 1e-6
        return TimeBreakdown(kernel_launch_seconds=seconds)

    def host_gather_time(self, edges: int) -> TimeBreakdown:
        """CPU-side subgraph compaction cost (Subway baseline, §5.6)."""
        seconds = edges * self.system.host.subgraph_gather_ns_per_edge * 1e-9
        return TimeBreakdown(host_preprocess_seconds=seconds)

    # ------------------------------------------------------------------ #
    # Reference figures
    # ------------------------------------------------------------------ #
    @property
    def memcpy_peak_gbps(self) -> float:
        return self.link.memcpy_peak_gbps
