"""PCIe link model: turns request streams into transfer time and bandwidth.

The model follows §3.3 of the paper.  For a stream of read requests the link
is constrained by two ceilings:

* **Header (payload) ceiling** — every completion carries an 18-byte TLP
  header, so small requests waste a large fraction of the raw link bandwidth
  (36% overhead at 32 bytes, 12.3% at 128 bytes).
* **Latency ceiling** — the PCIe 3.0 tag field is 8 bits wide, so at most 256
  read requests can be outstanding; with a 1.0-1.6us round trip, a 32-byte
  request stream cannot exceed roughly 5-8 GB/s no matter how wide the link.

Block transfers (``cudaMemcpy``-style, used by UVM migrations and the Subway
baseline) run at the payload ceiling of maximum-size packets — the paper's
measured 12.3 GB/s (PCIe 3.0) and ~24.6 GB/s (PCIe 4.0).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DRAMConfig, PCIeConfig
from ..errors import SimulationError
from .coalescer import RequestHistogram


@dataclass(frozen=True)
class LinkTransferResult:
    """Outcome of pushing a request stream (or block) through the link model."""

    payload_bytes: int
    wire_bytes: int
    num_requests: int
    link_seconds: float
    dram_bytes: int

    @property
    def achieved_payload_gbps(self) -> float:
        if self.link_seconds <= 0:
            return 0.0
        return self.payload_bytes / self.link_seconds / 1e9


class PCIeLink:
    """Analytical PCIe link shared by the zero-copy and UVM access paths."""

    def __init__(self, config: PCIeConfig, dram: DRAMConfig | None = None) -> None:
        self.config = config
        self.dram = dram or DRAMConfig()

    # ------------------------------------------------------------------ #
    # Zero-copy request streams
    # ------------------------------------------------------------------ #
    def transfer_requests(self, histogram: RequestHistogram) -> LinkTransferResult:
        """Time to serve a stream of cache-line-sector read requests."""
        payload_bytes = histogram.total_bytes
        num_requests = histogram.total_requests
        if num_requests == 0:
            return LinkTransferResult(0, 0, 0, 0.0, 0)

        wire_bytes = payload_bytes + num_requests * self.config.tlp_header_bytes
        header_limited_seconds = wire_bytes / (self.config.raw_payload_gbps * 1e9)

        # Little's law with the 8-bit tag limit: the link cannot have more
        # than max_outstanding_reads requests in flight at once.
        rtt_seconds = self.config.round_trip_time_us * 1e-6
        latency_limited_seconds = (
            num_requests * rtt_seconds / self.config.max_outstanding_reads
        )

        dram_bytes = sum(
            count * self.dram.bytes_touched(size)
            for size, count in histogram.counts.items()
            if count
        )
        link_seconds = max(header_limited_seconds, latency_limited_seconds)
        return LinkTransferResult(
            payload_bytes=payload_bytes,
            wire_bytes=wire_bytes,
            num_requests=num_requests,
            link_seconds=link_seconds,
            dram_bytes=dram_bytes,
        )

    # ------------------------------------------------------------------ #
    # Block transfers (page migrations, cudaMemcpy)
    # ------------------------------------------------------------------ #
    def transfer_block(self, num_bytes: int) -> LinkTransferResult:
        """Time for a bulk DMA transfer of ``num_bytes`` (maximum-size packets)."""
        if num_bytes < 0:
            raise SimulationError("cannot transfer a negative number of bytes")
        if num_bytes == 0:
            return LinkTransferResult(0, 0, 0, 0.0, 0)
        packet_payload = self.config.max_read_request_bytes
        num_packets = -(-num_bytes // packet_payload)
        wire_bytes = num_bytes + num_packets * self.config.tlp_header_bytes
        link_seconds = wire_bytes / (self.config.raw_payload_gbps * 1e9)
        dram_bytes = self.dram.bytes_touched(packet_payload) * num_packets
        return LinkTransferResult(
            payload_bytes=num_bytes,
            wire_bytes=wire_bytes,
            num_requests=num_packets,
            link_seconds=link_seconds,
            dram_bytes=dram_bytes,
        )

    # ------------------------------------------------------------------ #
    # Reference bandwidth figures
    # ------------------------------------------------------------------ #
    @property
    def memcpy_peak_gbps(self) -> float:
        """Measured-equivalent ``cudaMemcpy`` peak (the Figure 8 dashed line)."""
        return self.config.block_transfer_gbps

    def steady_state_gbps(self, request_bytes: int) -> float:
        """Achievable bandwidth for an endless stream of fixed-size requests."""
        return self.config.effective_read_gbps(request_bytes)
