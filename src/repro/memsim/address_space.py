"""Simulated unified address space and array placement.

Zero-copy requires pinning host arrays and mapping their bus addresses into
the GPU page table (§3.1); whether a given warp access is 128-byte aligned
depends on the *byte address*, not just the element index.  The
:class:`AddressSpace` assigns each simulated array a base address (page
aligned, as ``cudaMallocHost``/``cudaMallocManaged`` do) in its memory space
so the coalescer and UVM models can reason about real addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AllocationError
from ..types import MemorySpace
from .gpu_memory import DeviceMemory

#: All simulated allocations start on a 4KB boundary, like the CUDA allocators.
ALLOCATION_ALIGNMENT = 4096


@dataclass(frozen=True)
class Allocation:
    """One simulated array placed in a memory space."""

    name: str
    space: MemorySpace
    base_address: int
    size_bytes: int
    element_bytes: int = 8

    @property
    def end_address(self) -> int:
        return self.base_address + self.size_bytes

    @property
    def num_elements(self) -> int:
        return self.size_bytes // self.element_bytes

    def element_address(self, index: int) -> int:
        """Byte address of the ``index``-th element."""
        if not 0 <= index < max(1, self.num_elements):
            raise AllocationError(
                f"element index {index} out of range for allocation {self.name!r}"
            )
        return self.base_address + index * self.element_bytes

    def contains(self, address: int) -> bool:
        return self.base_address <= address < self.end_address


@dataclass
class AddressSpace:
    """Tracks every simulated allocation and its placement.

    Device allocations are charged against a :class:`DeviceMemory` instance
    (so the UVM page cache shrinks accordingly); host-pinned and UVM
    allocations only consume (modelled, unbounded) host memory.
    """

    device: DeviceMemory
    allocations: dict[str, Allocation] = field(default_factory=dict)
    _next_base: dict[MemorySpace, int] = field(
        default_factory=lambda: {space: ALLOCATION_ALIGNMENT for space in MemorySpace}
    )

    def allocate(
        self,
        name: str,
        size_bytes: int,
        space: MemorySpace,
        element_bytes: int = 8,
        misalign_bytes: int = 0,
    ) -> Allocation:
        """Place an array in the requested space and return its allocation.

        ``misalign_bytes`` deliberately offsets the base address from the 4KB
        boundary; the toy example in §3.3 uses it to reproduce the
        "merged but misaligned" access pattern.
        """
        if name in self.allocations:
            raise AllocationError(f"allocation {name!r} already exists")
        if size_bytes < 0:
            raise AllocationError("allocation size cannot be negative")
        if misalign_bytes < 0 or misalign_bytes >= ALLOCATION_ALIGNMENT:
            raise AllocationError("misalign_bytes must be within one page")
        if space is MemorySpace.DEVICE:
            self.device.allocate(name, size_bytes)
        base = self._next_base[space] + misalign_bytes
        allocation = Allocation(
            name=name,
            space=space,
            base_address=base,
            size_bytes=size_bytes,
            element_bytes=element_bytes,
        )
        self.allocations[name] = allocation
        aligned_size = -(-(size_bytes + misalign_bytes) // ALLOCATION_ALIGNMENT)
        self._next_base[space] += (aligned_size + 1) * ALLOCATION_ALIGNMENT
        return allocation

    def free(self, name: str) -> None:
        allocation = self.allocations.pop(name, None)
        if allocation is None:
            raise AllocationError(f"no allocation named {name!r}")
        if allocation.space is MemorySpace.DEVICE:
            self.device.free(name)

    def get(self, name: str) -> Allocation:
        try:
            return self.allocations[name]
        except KeyError as exc:
            raise AllocationError(f"no allocation named {name!r}") from exc

    def total_bytes(self, space: MemorySpace) -> int:
        return sum(a.size_bytes for a in self.allocations.values() if a.space is space)
