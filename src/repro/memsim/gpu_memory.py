"""Simulated GPU device memory: a capacity-limited allocation pool.

EMOGI keeps the vertex list and the small per-vertex value arrays resident in
device memory (§4.2) while the edge list stays in host memory; the UVM
baseline additionally uses whatever device memory is left over as a page cache
for migrated 4KB pages (§2.2).  :class:`DeviceMemory` tracks both uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AllocationError


@dataclass
class DeviceMemory:
    """Fixed-capacity device memory with named static allocations."""

    capacity_bytes: int
    allocations: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise AllocationError("device memory capacity must be positive")

    @property
    def allocated_bytes(self) -> int:
        return sum(self.allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    def allocate(self, name: str, num_bytes: int) -> None:
        """Reserve ``num_bytes`` for a named array (vertex list, labels, ...)."""
        if num_bytes < 0:
            raise AllocationError("allocation size cannot be negative")
        if name in self.allocations:
            raise AllocationError(f"allocation {name!r} already exists")
        if num_bytes > self.free_bytes:
            raise AllocationError(
                f"cannot allocate {num_bytes} bytes for {name!r}: only "
                f"{self.free_bytes} of {self.capacity_bytes} bytes free"
            )
        self.allocations[name] = num_bytes

    def free(self, name: str) -> None:
        if name not in self.allocations:
            raise AllocationError(f"no allocation named {name!r}")
        del self.allocations[name]

    def can_fit(self, num_bytes: int) -> bool:
        return num_bytes <= self.free_bytes

    def page_cache_capacity(self, page_bytes: int) -> int:
        """Number of UVM pages that fit in the remaining free device memory."""
        if page_bytes <= 0:
            raise AllocationError("page size must be positive")
        return max(0, self.free_bytes // page_bytes)

    def reset(self) -> None:
        self.allocations.clear()
