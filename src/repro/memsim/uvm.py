"""Unified Virtual Memory (UVM) simulator (§2.2).

UVM serves GPU accesses to host-resident data by migrating 4KB pages on
demand.  The model tracks, for one UVM-allocated region (the CSR edge list):

* which pages are currently resident in the GPU's leftover device memory,
* LRU eviction once the resident set exceeds that capacity (page thrashing),
* the number of migrations and migrated bytes (the I/O read-amplification
  numerator of Figure 10), and
* the CPU-side fault-handling cost per migration, which is what keeps UVM
  from scaling with faster interconnects (Figure 12).

``cudaMemAdviseSetReadMostly`` (the paper's best-performing UVM configuration)
is modelled by treating migrations as read-only duplications: pages never need
to be written back on eviction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import UVMConfig
from ..errors import SimulationError
from .address_space import Allocation


@dataclass(frozen=True)
class UVMAccessResult:
    """Outcome of one batch of accesses to a UVM region."""

    pages_touched: int
    page_faults: int
    migrated_bytes: int
    evicted_pages: int

    @property
    def hit_pages(self) -> int:
        return self.pages_touched - self.page_faults


class UVMSpace:
    """Page-granular residency tracking for one UVM-managed region."""

    def __init__(
        self,
        allocation: Allocation,
        config: UVMConfig,
        capacity_pages: int,
    ) -> None:
        if capacity_pages < 0:
            raise SimulationError("capacity_pages cannot be negative")
        self.allocation = allocation
        self.config = config
        self.capacity_pages = capacity_pages
        self.num_pages = max(1, -(-allocation.size_bytes // config.page_bytes))
        self._resident = np.zeros(self.num_pages, dtype=bool)
        self._last_touch = np.zeros(self.num_pages, dtype=np.int64)
        self._clock = 0
        self.total_faults = 0
        self.total_migrated_bytes = 0
        self.total_evictions = 0
        self.total_accessed_pages = 0

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #
    def access_byte_ranges(
        self, start_bytes: np.ndarray, end_bytes: np.ndarray
    ) -> UVMAccessResult:
        """Access a batch of ``[start, end)`` byte ranges within the region.

        Ranges are relative to the allocation base (element offsets times the
        element size) and are processed *in order*, the way a kernel sweeps
        the frontier's neighbor lists: the touched pages stream through the
        LRU page cache in chunks, so a working set larger than the cache
        thrashes within the iteration exactly as the paper describes (§2.2).
        """
        start_bytes = np.asarray(start_bytes, dtype=np.int64).ravel()
        end_bytes = np.asarray(end_bytes, dtype=np.int64).ravel()
        if start_bytes.size != end_bytes.size:
            raise SimulationError("start/end arrays must have the same length")
        valid = end_bytes > start_bytes
        start_bytes, end_bytes = start_bytes[valid], end_bytes[valid]
        if start_bytes.size == 0:
            return UVMAccessResult(0, 0, 0, 0)
        if np.any(start_bytes < 0) or np.any(end_bytes > self.allocation.size_bytes):
            raise SimulationError("access range outside the UVM allocation")

        pages = self._pages_for_ranges(start_bytes, end_bytes)
        return self._touch_streaming(pages)

    def access_pages(self, page_ids: np.ndarray) -> UVMAccessResult:
        """Touch an explicit sequence of page IDs (used by streaming scans)."""
        pages = np.asarray(page_ids, dtype=np.int64).ravel()
        if pages.size and (pages.min() < 0 or pages.max() >= self.num_pages):
            raise SimulationError("page ID outside the UVM allocation")
        return self._touch_streaming(pages)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def resident_pages(self) -> int:
        return int(self._resident.sum())

    @property
    def page_bytes(self) -> int:
        return self.config.page_bytes

    def is_resident(self, page_id: int) -> bool:
        if not 0 <= page_id < self.num_pages:
            raise SimulationError(f"page {page_id} outside the UVM allocation")
        return bool(self._resident[page_id])

    def fault_handling_seconds(self, migrations: int | None = None) -> float:
        """CPU-side driver time for the given (or accumulated) migrations."""
        count = self.total_faults if migrations is None else migrations
        return count * self.config.fault_service_overhead_us * 1e-6

    def reset(self) -> None:
        self._resident[:] = False
        self._last_touch[:] = 0
        self._clock = 0
        self.total_faults = 0
        self.total_migrated_bytes = 0
        self.total_evictions = 0
        self.total_accessed_pages = 0

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _pages_for_ranges(self, start_bytes: np.ndarray, end_bytes: np.ndarray) -> np.ndarray:
        """Pages covered by each range, concatenated in range order.

        Consecutive duplicate pages are dropped from the stream: adjacent
        neighbor-list ranges usually straddle the same page (and high-degree
        frontiers repeat it thousands of times), so without the dedup the
        concatenated stream balloons far beyond the number of distinct page
        touches it encodes.  An immediately repeated touch hits the page that
        was just migrated, so the deduped stream is the more faithful model
        of the fault sequence the driver sees; note it does shift the
        fixed-size chunk boundaries of :meth:`_touch_streaming`, so thrashing
        metrics differ slightly from the pre-dedup formulation (the figure
        tolerances in ``benchmarks/`` cover the recalibration).
        """
        first_page = start_bytes // self.config.page_bytes
        last_page = (end_bytes - 1) // self.config.page_bytes
        counts = last_page - first_page + 1
        total = int(counts.sum())
        range_index = np.repeat(np.arange(first_page.size), counts)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        within = np.arange(total) - np.repeat(offsets, counts)
        pages = first_page[range_index] + within
        if pages.size > 1:
            keep = np.empty(pages.size, dtype=bool)
            keep[0] = True
            np.not_equal(pages[1:], pages[:-1], out=keep[1:])
            pages = pages[keep]
        return pages

    def _touch_streaming(self, pages: np.ndarray) -> UVMAccessResult:
        """Stream an ordered page-touch sequence through the LRU cache."""
        if pages.size == 0:
            return UVMAccessResult(0, 0, 0, 0)
        # Process the sweep in bounded chunks so a working set larger than the
        # page cache actually thrashes (one giant atomic batch would not).
        if self.capacity_pages <= 0:
            chunk_pages = 1024
        else:
            chunk_pages = max(1, self.capacity_pages // 4)
        touched = 0
        faults = 0
        migrated_bytes = 0
        evicted = 0
        for start in range(0, pages.size, chunk_pages):
            chunk = pages[start : start + chunk_pages]
            # Deduplicate within the chunk while preserving first-touch order.
            chunk = chunk[np.sort(np.unique(chunk, return_index=True)[1])]
            result = self._touch_chunk(chunk)
            touched += result.pages_touched
            faults += result.page_faults
            migrated_bytes += result.migrated_bytes
            evicted += result.evicted_pages
        return UVMAccessResult(
            pages_touched=touched,
            page_faults=faults,
            migrated_bytes=migrated_bytes,
            evicted_pages=evicted,
        )

    def _touch_chunk(self, pages: np.ndarray) -> UVMAccessResult:
        if pages.size == 0:
            return UVMAccessResult(0, 0, 0, 0)
        self._clock += 1
        faulting = pages[~self._resident[pages]]
        migrated: np.ndarray = np.empty(0, dtype=np.int64)
        evicted = 0
        if faulting.size:
            migrated = self._expand_to_prefetch_blocks(faulting)
            evicted = self._make_room(migrated.size, protect=pages)
            self._resident[migrated] = True
            self._last_touch[migrated] = self._clock
        self._last_touch[pages] = self._clock
        if self.capacity_pages <= 0 and migrated.size:
            # With no device-side page cache nothing stays resident: every
            # future touch of these pages will fault and migrate again.
            self._resident[migrated] = False
        migrated_bytes = int(migrated.size) * self.config.page_bytes
        self.total_faults += int(faulting.size)
        self.total_migrated_bytes += migrated_bytes
        self.total_evictions += evicted
        self.total_accessed_pages += int(pages.size)
        return UVMAccessResult(
            pages_touched=int(pages.size),
            page_faults=int(migrated.size),
            migrated_bytes=migrated_bytes,
            evicted_pages=evicted,
        )

    def _expand_to_prefetch_blocks(self, faulting_pages: np.ndarray) -> np.ndarray:
        """All non-resident pages of the prefetch blocks containing the faults.

        The driver migrates naturally-aligned ``prefetch_pages``-sized blocks;
        pages of the block that are already resident are not moved again.
        """
        granule = self.config.prefetch_pages
        if granule <= 1:
            return np.unique(faulting_pages)
        blocks = np.unique(faulting_pages // granule)
        candidates = (blocks[:, None] * granule + np.arange(granule)[None, :]).ravel()
        candidates = candidates[candidates < self.num_pages]
        return candidates[~self._resident[candidates]]

    def _make_room(self, incoming: int, protect: np.ndarray) -> int:
        """Evict LRU pages so ``incoming`` new pages fit; returns evictions."""
        if self.capacity_pages <= 0:
            # No page cache at all: everything is migrated and dropped again.
            resident_now = np.flatnonzero(self._resident)
            self._resident[resident_now] = False
            return int(resident_now.size)
        overflow = self.resident_pages + incoming - self.capacity_pages
        if overflow <= 0:
            return 0
        resident_ids = np.flatnonzero(self._resident)
        protected = np.zeros(self.num_pages, dtype=bool)
        protected[protect] = True
        candidates = resident_ids[~protected[resident_ids]]
        if candidates.size == 0:
            return 0
        overflow = min(overflow, candidates.size)
        order = np.argsort(self._last_touch[candidates], kind="stable")
        victims = candidates[order[:overflow]]
        self._resident[victims] = False
        return int(victims.size)
