"""Zero-copy access path: direct cache-line-sized reads of pinned host memory.

A :class:`ZeroCopyRegion` stands in for a pinned host allocation whose bus
address has been mapped into the GPU page table (§3.1).  GPU kernels "access"
the region by describing *which elements* they read and *how* (per-thread
strided, warp-merged, or warp-merged-and-aligned); the region runs those
accesses through the coalescing-unit model and reports the resulting PCIe
request histogram to the traffic monitor.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .address_space import Allocation
from .coalescer import (
    RequestHistogram,
    coalesce_contiguous_spans,
    coalesce_warp_addresses,
    merged_warp_spans,
    naive_thread_spans,
    strided_request_counts,
)
from .monitor import PCIeTrafficMonitor


class ZeroCopyRegion:
    """A pinned host-memory array accessed directly by GPU threads."""

    def __init__(
        self,
        allocation: Allocation,
        monitor: PCIeTrafficMonitor | None = None,
        warp_size: int = 32,
    ) -> None:
        self.allocation = allocation
        self.monitor = monitor
        self.warp_size = warp_size

    @property
    def element_bytes(self) -> int:
        return self.allocation.element_bytes

    @property
    def base_address(self) -> int:
        return self.allocation.base_address

    def _record(self, histogram: RequestHistogram) -> RequestHistogram:
        if self.monitor is not None:
            self.monitor.record_requests(histogram)
        return histogram

    def _check_ranges(self, start_elements: np.ndarray, end_elements: np.ndarray) -> None:
        if start_elements.size == 0:
            return
        if int(np.min(start_elements)) < 0:
            raise SimulationError("element ranges cannot be negative")
        if int(np.max(end_elements)) * self.element_bytes > self.allocation.size_bytes:
            raise SimulationError(
                f"access past the end of zero-copy region {self.allocation.name!r}"
            )

    # ------------------------------------------------------------------ #
    # Access patterns
    # ------------------------------------------------------------------ #
    def access_strided(
        self,
        start_elements: np.ndarray,
        end_elements: np.ndarray,
        intra_sector_hit_rate: float = 1.0,
    ) -> RequestHistogram:
        """Per-thread sequential scans over element ranges (Naive, Listing 1).

        ``intra_sector_hit_rate`` models GPU cache thrashing in the strided
        pattern (§3.3): after a thread fetches a 32-byte sector, each of its
        remaining element accesses within that sector hits the cache only with
        this probability; misses re-fetch the sector.  With the default of 1.0
        every sector is fetched exactly once.
        """
        if not 0.0 <= intra_sector_hit_rate <= 1.0:
            raise SimulationError("intra_sector_hit_rate must be within [0, 1]")
        start_elements = np.asarray(start_elements, dtype=np.int64)
        end_elements = np.asarray(end_elements, dtype=np.int64)
        self._check_ranges(start_elements, end_elements)
        spans = naive_thread_spans(
            start_elements, end_elements, self.element_bytes, self.base_address
        )
        histogram = strided_request_counts(*spans)
        if intra_sector_hit_rate < 1.0:
            total_elements = int(np.sum(np.maximum(end_elements - start_elements, 0)))
            first_touches = histogram.counts[32]
            refetches = int(
                round((total_elements - first_touches) * (1.0 - intra_sector_hit_rate))
            )
            if refetches > 0:
                histogram.add(32, refetches)
        return self._record(histogram)

    def access_merged(
        self,
        start_elements: np.ndarray,
        end_elements: np.ndarray,
        aligned: bool = False,
    ) -> RequestHistogram:
        """Warp-per-range accesses (Merged / Merged+Aligned, Listing 2)."""
        start_elements = np.asarray(start_elements, dtype=np.int64)
        end_elements = np.asarray(end_elements, dtype=np.int64)
        self._check_ranges(start_elements, end_elements)
        spans = merged_warp_spans(
            start_elements,
            end_elements,
            self.element_bytes,
            base_address=self.base_address,
            warp_size=self.warp_size,
            aligned=aligned,
        )
        return self._record(coalesce_contiguous_spans(*spans))

    def access_warp_addresses(
        self, element_indices: np.ndarray, active_mask: np.ndarray | None = None
    ) -> RequestHistogram:
        """One exact warp instruction given per-lane element indices."""
        element_indices = np.asarray(element_indices, dtype=np.int64)
        addresses = self.base_address + element_indices * self.element_bytes
        histogram = coalesce_warp_addresses(
            addresses, access_bytes=self.element_bytes, active_mask=active_mask
        )
        return self._record(histogram)
