"""GPU coalescing-unit model: how warp accesses become PCIe read requests.

This module reproduces the access-size behaviour the paper observes with its
FPGA monitor (§3.3, Figure 3):

* A zero-copy read can be 32, 64, 96 or 128 bytes — one request per 128-byte
  cache line, sized by how many 32-byte *sectors* of that line the warp
  touches at once.
* *Strided* per-thread scans generate an individual 32-byte request every time
  a thread crosses a sector boundary (Figure 3a).
* A warp reading 32 consecutive elements is *merged* by the coalescing unit
  into maximum-size requests (Figure 3b); if the warp's span is not 128-byte
  aligned, the first and last lines produce smaller (e.g. 32B + 96B) requests
  (Figure 3c).

Everything here is pure address arithmetic; the heavy-weight entry points are
vectorized with numpy so multi-million-edge traversals coalesce in bulk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError

#: Size of one GPU cache-line sector — the smallest zero-copy request.
SECTOR_BYTES = 32

#: Size of one full GPU cache line — the largest zero-copy request.
CACHELINE_BYTES = 128

#: Number of sectors per cache line.
SECTORS_PER_LINE = CACHELINE_BYTES // SECTOR_BYTES

#: The four request sizes the FPGA monitor observes (§3.3).
REQUEST_SIZES = tuple(SECTOR_BYTES * i for i in range(1, SECTORS_PER_LINE + 1))


@dataclass
class RequestHistogram:
    """Count of PCIe read requests per request size (32/64/96/128 bytes)."""

    counts: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for size in self.counts:
            self._check_size(size)
        for size in REQUEST_SIZES:
            self.counts.setdefault(size, 0)

    @staticmethod
    def _check_size(size: int) -> None:
        if size not in REQUEST_SIZES:
            raise SimulationError(
                f"invalid PCIe request size {size}; must be one of {REQUEST_SIZES}"
            )

    @classmethod
    def from_array(cls, per_size_counts: np.ndarray) -> "RequestHistogram":
        """Build from a length-4 array ordered ``[32B, 64B, 96B, 128B]``."""
        per_size_counts = np.asarray(per_size_counts).ravel()
        if per_size_counts.size != len(REQUEST_SIZES):
            raise SimulationError("per_size_counts must have four entries")
        return cls(
            {size: int(count) for size, count in zip(REQUEST_SIZES, per_size_counts)}
        )

    @classmethod
    def single(cls, size: int, count: int = 1) -> "RequestHistogram":
        cls._check_size(size)
        return cls({size: count})

    def add(self, size: int, count: int = 1) -> None:
        self._check_size(size)
        if count < 0:
            raise SimulationError("request counts cannot be negative")
        self.counts[size] += count

    def merge(self, other: "RequestHistogram") -> "RequestHistogram":
        """Return a new histogram combining both operands."""
        merged = {size: self.counts[size] + other.counts[size] for size in REQUEST_SIZES}
        return RequestHistogram(merged)

    def merge_in_place(self, other: "RequestHistogram") -> None:
        for size in REQUEST_SIZES:
            self.counts[size] += other.counts[size]

    @property
    def total_requests(self) -> int:
        return sum(self.counts.values())

    @property
    def total_bytes(self) -> int:
        return sum(size * count for size, count in self.counts.items())

    def fraction(self, size: int) -> float:
        """Fraction of requests that have the given size (0 if empty)."""
        self._check_size(size)
        total = self.total_requests
        if total == 0:
            return 0.0
        return self.counts[size] / total

    def distribution(self) -> dict[int, float]:
        """Request-size distribution as fractions (the Figure 5 quantity)."""
        return {size: self.fraction(size) for size in REQUEST_SIZES}

    def as_array(self) -> np.ndarray:
        return np.array([self.counts[size] for size in REQUEST_SIZES], dtype=np.int64)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestHistogram):
            return NotImplemented
        return self.counts == other.counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{size}B: {self.counts[size]}" for size in REQUEST_SIZES)
        return f"RequestHistogram({parts})"


def coalesce_warp_addresses(
    byte_addresses: np.ndarray,
    access_bytes: int = 8,
    active_mask: np.ndarray | None = None,
) -> RequestHistogram:
    """Coalesce one warp memory instruction given per-lane byte addresses.

    This is the exact (per-warp) model: the touched 32-byte sectors are
    grouped by 128-byte cache line and each line produces one request whose
    size covers the touched sectors within it.  Used by the toy-example
    kernels and by tests; the bulk traversal paths use the vectorized
    span-based functions below.
    """
    byte_addresses = np.asarray(byte_addresses, dtype=np.int64).ravel()
    if active_mask is not None:
        active_mask = np.asarray(active_mask, dtype=bool).ravel()
        if active_mask.size != byte_addresses.size:
            raise SimulationError("active_mask must match byte_addresses length")
        byte_addresses = byte_addresses[active_mask]
    if byte_addresses.size == 0:
        return RequestHistogram()
    if np.any(byte_addresses < 0):
        raise SimulationError("byte addresses cannot be negative")
    # Every lane touches the sectors its access spans (usually exactly one).
    first_sector = byte_addresses // SECTOR_BYTES
    last_sector = (byte_addresses + access_bytes - 1) // SECTOR_BYTES
    sectors = np.unique(
        np.concatenate(
            [np.arange(f, l + 1) for f, l in zip(first_sector, last_sector)]
        )
    )
    lines = sectors // SECTORS_PER_LINE
    histogram = RequestHistogram()
    for line in np.unique(lines):
        in_line = sectors[lines == line]
        low = int(in_line.min() % SECTORS_PER_LINE)
        high = int(in_line.max() % SECTORS_PER_LINE)
        histogram.add((high - low + 1) * SECTOR_BYTES)
    return histogram


def coalesce_contiguous_spans(
    span_start_bytes: np.ndarray, span_end_bytes: np.ndarray
) -> RequestHistogram:
    """Coalesce many *contiguous* warp accesses, one request per touched line.

    Each span ``[start, end)`` represents one warp instruction in which the
    active lanes read consecutive bytes (the Merged kernels of §4.3.1).  For
    every 128-byte line a span touches, one request is generated covering the
    touched 32-byte sectors of that line, exactly as in Figure 3(b)/(c).

    Fully vectorized: runs in O(number of spans).
    """
    start = np.asarray(span_start_bytes, dtype=np.int64).ravel()
    end = np.asarray(span_end_bytes, dtype=np.int64).ravel()
    if start.size != end.size:
        raise SimulationError("span start/end arrays must have the same length")
    valid = end > start
    start, end = start[valid], end[valid]
    if start.size == 0:
        return RequestHistogram()
    if np.any(start < 0):
        raise SimulationError("span addresses cannot be negative")

    first_sector = start // SECTOR_BYTES
    last_sector = (end - 1) // SECTOR_BYTES
    first_line = first_sector // SECTORS_PER_LINE
    last_line = last_sector // SECTORS_PER_LINE
    num_lines = last_line - first_line + 1

    counts = np.zeros(len(REQUEST_SIZES), dtype=np.int64)

    # Spans confined to a single cache line: one request sized by the sector span.
    single = num_lines == 1
    if np.any(single):
        sizes = (last_sector[single] - first_sector[single] + 1).astype(np.int64)
        counts += np.bincount(sizes - 1, minlength=len(REQUEST_SIZES))[: len(REQUEST_SIZES)]

    # Spans covering several lines: a head request, full-line middles, a tail request.
    multi = ~single
    if np.any(multi):
        head_sectors = SECTORS_PER_LINE - (first_sector[multi] % SECTORS_PER_LINE)
        tail_sectors = (last_sector[multi] % SECTORS_PER_LINE) + 1
        counts += np.bincount(head_sectors - 1, minlength=len(REQUEST_SIZES))[
            : len(REQUEST_SIZES)
        ]
        counts += np.bincount(tail_sectors - 1, minlength=len(REQUEST_SIZES))[
            : len(REQUEST_SIZES)
        ]
        counts[SECTORS_PER_LINE - 1] += int((num_lines[multi] - 2).sum())

    return RequestHistogram.from_array(counts)


def strided_request_counts(
    span_start_bytes: np.ndarray, span_end_bytes: np.ndarray
) -> RequestHistogram:
    """Requests generated by per-thread sequential scans (Naive / Figure 3a).

    Each span ``[start, end)`` is scanned by a *single* thread one element at
    a time; the thread issues a new 32-byte request whenever it crosses a
    sector boundary, so the span produces one 32-byte request per touched
    sector.  Cross-thread merging is extremely rare in this pattern (§5.3.1
    reports 1.3% of requests larger than 32B on FS) and is ignored here; the
    approximation is documented in DESIGN.md.
    """
    start = np.asarray(span_start_bytes, dtype=np.int64).ravel()
    end = np.asarray(span_end_bytes, dtype=np.int64).ravel()
    if start.size != end.size:
        raise SimulationError("span start/end arrays must have the same length")
    valid = end > start
    start, end = start[valid], end[valid]
    if start.size == 0:
        return RequestHistogram()
    if np.any(start < 0):
        raise SimulationError("span addresses cannot be negative")
    sectors = (end - 1) // SECTOR_BYTES - start // SECTOR_BYTES + 1
    return RequestHistogram.single(SECTOR_BYTES, int(sectors.sum()))


def merged_warp_spans(
    start_elements: np.ndarray,
    end_elements: np.ndarray,
    element_bytes: int,
    base_address: int = 0,
    warp_size: int = 32,
    aligned: bool = False,
    align_bytes: int = CACHELINE_BYTES,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-vertex neighbor ranges into per-warp-iteration byte spans.

    This models the Merged (and Merged+Aligned) kernels of Listing 2: one
    warp walks one vertex's neighbor list ``warp_size`` elements at a time.
    When ``aligned`` is True the walk starts at the closest preceding
    ``align_bytes`` boundary with the leading lanes masked off, so every
    iteration's span begins on a 128-byte boundary.

    Returns two arrays (span start / end byte addresses) with one entry per
    warp iteration across all vertices, ready for
    :func:`coalesce_contiguous_spans`.
    """
    starts = np.asarray(start_elements, dtype=np.int64).ravel()
    ends = np.asarray(end_elements, dtype=np.int64).ravel()
    if starts.size != ends.size:
        raise SimulationError("start/end element arrays must have the same length")
    if element_bytes <= 0 or align_bytes % element_bytes != 0:
        raise SimulationError("element_bytes must divide the alignment boundary")
    nonempty = ends > starts
    starts, ends = starts[nonempty], ends[nonempty]
    if starts.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    elements_per_boundary = align_bytes // element_bytes
    if aligned:
        # Listing 2 aligns the *element index* (start & ~0xF for 8-byte data);
        # this equals address alignment whenever the allocation base is
        # 128-byte aligned, which the CUDA pinned-memory allocators guarantee.
        walk_base = starts - (starts % elements_per_boundary)
    else:
        walk_base = starts

    iterations = -(-(ends - walk_base) // warp_size)
    total = int(iterations.sum())
    vertex_of_iteration = np.repeat(np.arange(starts.size), iterations)
    iteration_offsets = np.concatenate(([0], np.cumsum(iterations)[:-1]))
    local_iteration = np.arange(total) - np.repeat(iteration_offsets, iterations)

    iteration_base = walk_base[vertex_of_iteration] + local_iteration * warp_size
    span_start = np.maximum(iteration_base, starts[vertex_of_iteration])
    span_end = np.minimum(iteration_base + warp_size, ends[vertex_of_iteration])

    span_start_bytes = base_address + span_start * element_bytes
    span_end_bytes = base_address + span_end * element_bytes
    return span_start_bytes, span_end_bytes


def naive_thread_spans(
    start_elements: np.ndarray,
    end_elements: np.ndarray,
    element_bytes: int,
    base_address: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Byte spans scanned by single threads in the Naive kernel (Listing 1)."""
    starts = np.asarray(start_elements, dtype=np.int64).ravel()
    ends = np.asarray(end_elements, dtype=np.int64).ravel()
    if starts.size != ends.size:
        raise SimulationError("start/end element arrays must have the same length")
    return (
        base_address + starts * element_bytes,
        base_address + ends * element_bytes,
    )
