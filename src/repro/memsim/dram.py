"""Host DRAM model (§3.3).

The paper points out that the host DDR4 DIMMs cannot read less than 64 bytes,
so a stream of 32-byte PCIe requests wastes half the DRAM bandwidth.  The
model tracks how many DRAM bytes were actually touched to serve the link
traffic and how long that took at the sequential-bandwidth ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DRAMConfig
from .coalescer import RequestHistogram


@dataclass
class DRAMModel:
    """Accumulates DRAM-side traffic for one simulated run."""

    config: DRAMConfig = field(default_factory=DRAMConfig)
    bytes_touched: int = 0

    def serve_requests(self, histogram: RequestHistogram) -> int:
        """Account for serving a zero-copy request stream; returns DRAM bytes."""
        touched = sum(
            count * self.config.bytes_touched(size)
            for size, count in histogram.counts.items()
            if count
        )
        self.bytes_touched += touched
        return touched

    def serve_block(self, num_bytes: int) -> int:
        """Account for a bulk (page migration / memcpy) read; returns DRAM bytes."""
        if num_bytes < 0:
            raise ValueError("cannot read a negative number of bytes")
        blocks = -(-num_bytes // self.config.min_access_bytes)
        touched = blocks * self.config.min_access_bytes
        self.bytes_touched += touched
        return touched

    def seconds_for(self, num_bytes: int) -> float:
        """Time to stream ``num_bytes`` out of DRAM at the sequential ceiling."""
        return num_bytes / (self.config.sequential_bandwidth_gbps * 1e9)

    @property
    def total_seconds(self) -> float:
        return self.seconds_for(self.bytes_touched)

    def reset(self) -> None:
        self.bytes_touched = 0
