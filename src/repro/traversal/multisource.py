"""Batched multi-source traversal (MS-BFS-style frontier sharing).

The paper's measurement protocol (§5.2) averages every experiment over 64
random source vertices, and the serving layer batches same-configuration
requests — yet a naive implementation still executes one full, independent
traversal per source, paying for every edge gather and every simulated
memory-system sweep once *per source*.

This module restructures the engine around the batch instead: up to 64
sources run together, one bit per source packed into a ``uint64`` word per
vertex (the MS-BFS technique).  Each iteration expands the *union* frontier
once — one edge gather, one :meth:`TraversalEngine.process_frontier` sweep —
and bitwise operations keep every source's frontier evolution exactly what
its solo run would have been:

* **BFS** propagates frontier bits with an OR-scatter over the gathered
  destinations; a vertex's newly set bits are exactly the sources whose solo
  BFS would discover it this iteration, so per-source levels are bit-identical
  to :func:`repro.traversal.bfs.run_bfs`.
* **SSSP** runs on the lane-parallel relaxation kernel of
  :mod:`repro.traversal.relax`: each iteration expands the union frontier's
  lane bit-masks into shared (lane, edge) candidate streams — one ragged
  gather covering every lane at once — and min-reduces every lane's
  candidates into the flattened vertex-major ``destination * lanes + lane``
  key space in a single segmented pass (the shared-candidate relaxation;
  executed by a runtime-compiled C loop over the bit-packed words when the
  host has a compiler, by blocked numpy indexed-ufunc/reduceat passes
  otherwise).  For each source the reduced candidate *multiset* is exactly
  the solo run's, and min over IEEE floats is exactly
  associative/commutative, so distances are bit-identical to
  :func:`repro.traversal.sssp.run_sssp` — including float rounding — under
  every backend.  The kernel's touched-set output doubles as the next
  frontier, so no per-iteration ``np.unique`` or before/after probing is
  needed.

The *streaming* applications (CC, PageRank) batch along the platform axis
instead — one shared algorithm pass replayed into many per-configuration
engines; see :mod:`repro.traversal.streaming`.

Per-source :class:`TraversalMetrics` are derived by *attributing* the shared
traffic: each iteration's time is split across the sources active in it,
proportionally to their share of the edges swept, and the run-level traffic
counters are split by each source's overall share.  Attributed *seconds* sum
exactly to the batch total; the integer traffic counters are rounded per
source, so their sums match the batch totals only to rounding (compare
against ``batch_metrics`` for exact run-level numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig
from ..errors import ConfigurationError
from ..graph.csr import CSRGraph
from ..hotpath import hot_path
from ..timing import TimeBreakdown
from ..types import AccessStrategy, Application, EMOGI_STRATEGY, VERTEX_DTYPE
from .bfs import UNREACHED, _check_source
from .engine import TraversalEngine
from .frontier import frontier_offsets, gather_frontier_destinations
from .relax import active_lane_mask, make_snapshot, relax_lanes
from .results import KernelCounters, TraversalMetrics, TraversalResult
from .sssp import UNREACHABLE

#: Sources packed into one visited word (one bit per source lane).
WORD_BITS = 64

_ONE = np.uint64(1)


@dataclass
class MultiSourceResult:
    """Outcome of one batched multi-source run.

    ``results`` holds one :class:`TraversalResult` per requested source, in
    request order, with attributed per-source metrics; ``batch_metrics`` holds
    the shared engine's run-level metrics for each executed ≤64-source word.
    """

    application: Application
    graph_name: str
    strategy: AccessStrategy
    results: list[TraversalResult] = field(default_factory=list)
    batch_metrics: list[TraversalMetrics] = field(default_factory=list)

    @property
    def num_sources(self) -> int:
        return len(self.results)

    @property
    def num_batches(self) -> int:
        return len(self.batch_metrics)

    @property
    def batch_seconds(self) -> float:
        """Total simulated time of the shared (batched) execution."""
        return sum(metrics.seconds for metrics in self.batch_metrics)


def run_bfs_batch(
    graph: CSRGraph,
    sources,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
    engine: TraversalEngine | None = None,
    arena=None,
) -> MultiSourceResult:
    """Batched BFS over up to 64 sources per frontier sweep.

    Per-source ``values`` are bit-identical to per-source ``run_bfs`` calls.
    """
    return run_batch(
        Application.BFS, graph, sources, strategy=strategy, system=system,
        engine=engine, arena=arena,
    )


def run_sssp_batch(
    graph: CSRGraph,
    sources,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
    engine: TraversalEngine | None = None,
    arena=None,
) -> MultiSourceResult:
    """Batched SSSP; per-source distances bit-identical to ``run_sssp``."""
    return run_batch(
        Application.SSSP, graph, sources, strategy=strategy, system=system,
        engine=engine, arena=arena,
    )


def run_batch(
    application: Application | str,
    graph: CSRGraph,
    sources,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
    engine: TraversalEngine | None = None,
    arena=None,
    relax_method: str | None = None,
) -> MultiSourceResult:
    """Run a batched multi-source traversal, chunking sources into 64-bit words.

    One engine serves the whole batch: either the caller's ``engine``, one
    leased from ``arena`` (an :class:`~repro.traversal.arena.EngineArena`),
    or a private one constructed here.  Between words the engine is recycled
    with :meth:`TraversalEngine.reset` instead of being rebuilt.

    ``relax_method`` selects the SSSP relaxation backend (see
    :data:`repro.traversal.relax.RELAX_METHODS`); ``None`` picks the fastest
    available.  Every backend produces bit-identical per-source values.
    """
    application = Application(application)
    if application is Application.BFS:
        chunk_runner, needs_weights = _bfs_word, False
    elif application is Application.SSSP:
        chunk_runner, needs_weights = _sssp_word, True
    else:
        raise ConfigurationError(
            f"batched execution supports bfs and sssp, not {application.value}"
        )
    source_list = [int(source) for source in np.asarray(list(sources)).ravel()]
    if not source_list:
        raise ConfigurationError("run_batch needs at least one source")
    for source in source_list:
        _check_source(graph, source)

    weights = None
    if application is Application.SSSP and graph.has_weights:
        # Hoisted out of the per-word runner: ONE float64 view of the weight
        # list per batch (float32 -> float64 is exact, so candidates stay
        # bit-identical to the solo runs' upcast-per-add).  Unweighted graphs
        # pass None and relax with the scalar 1.0 — no unit-weight array is
        # materialized at all, per word or otherwise.
        weights = np.ascontiguousarray(graph.weights, dtype=np.float64)

    leased = None
    if engine is None:
        if arena is not None:
            leased = arena.acquire(
                graph, strategy, system=system, needs_weights=needs_weights
            )
            engine = leased
        else:
            engine = TraversalEngine(
                graph, strategy, system=system, needs_weights=needs_weights
            )

    outcome = MultiSourceResult(
        application=application, graph_name=graph.name, strategy=strategy
    )
    try:
        for offset in range(0, len(source_list), WORD_BITS):
            word = source_list[offset : offset + WORD_BITS]
            # Reset before every word (the first included): a caller-supplied
            # engine may carry a previous run's counters, which would
            # contaminate this batch's metrics.  Resetting a fresh engine is
            # a cheap no-op.
            engine.reset()
            values, attribution = chunk_runner(
                graph, word, [engine], None, weights, relax_method
            )
            lane_breakdowns = attribution.breakdowns
            lane_iterations = attribution.iterations
            lane_fractions = attribution.fractions()
            batch_metrics = engine.finalize()
            outcome.batch_metrics.append(batch_metrics)
            batch_counters = batch_metrics.counters
            for lane, source in enumerate(word):
                breakdown = lane_breakdowns[lane]
                # Per-source kernel counters carry the lane's own iteration
                # count and its attributed share of the shared sweep's work;
                # max_frontier is the union frontier's (a batch-level fact),
                # and the relax backend is shared by construction.
                lane_counters = KernelCounters(
                    iterations=int(lane_iterations[lane]),
                    frontier_vertices=int(
                        round(batch_counters.frontier_vertices * lane_fractions[lane])
                    ),
                    edges_traversed=int(
                        round(batch_counters.edges_traversed * lane_fractions[lane])
                    ),
                    max_frontier=batch_counters.max_frontier,
                    relax_candidates=int(
                        round(batch_counters.relax_candidates * lane_fractions[lane])
                    ),
                    relax_backend=batch_counters.relax_backend,
                )
                metrics = TraversalMetrics(
                    seconds=breakdown.total(),
                    breakdown=breakdown,
                    traffic=batch_metrics.traffic.scaled(lane_fractions[lane]),
                    iterations=int(lane_iterations[lane]),
                    dataset_bytes=engine.dataset_bytes,
                    strategy=strategy,
                    system_name=engine.system.name,
                    counters=lane_counters,
                )
                outcome.results.append(
                    TraversalResult(
                        application=application,
                        graph_name=graph.name,
                        strategy=strategy,
                        source=source,
                        values=values[lane].copy(),
                        metrics=metrics,
                    )
                )
    finally:
        if leased is not None:
            arena.release(leased)
    return outcome


@dataclass(frozen=True)
class PackedLane:
    """One lane of a packed cross-configuration batch: a source plus the
    (strategy, system) it should be accounted under."""

    source: int
    strategy: AccessStrategy = EMOGI_STRATEGY
    system: SystemConfig | None = None

    def config_key(self) -> tuple:
        """Engine-sharing identity: lanes with equal keys share one engine."""
        fingerprint = None if self.system is None else self.system.fingerprint()
        return (self.strategy, fingerprint)


@dataclass
class PackedBatchResult:
    """Outcome of one packed cross-configuration multi-source run.

    ``results`` holds one :class:`TraversalResult` per requested lane, in
    request order; ``batch_metrics`` holds each engine's run-level metrics
    (one entry per distinct configuration per executed ≤64-lane word).
    """

    application: Application
    graph_name: str
    lanes: list[PackedLane] = field(default_factory=list)
    results: list[TraversalResult] = field(default_factory=list)
    batch_metrics: list[TraversalMetrics] = field(default_factory=list)
    #: Shared algorithm executions performed (one per ≤64-lane word).
    words: int = 0


def run_packed_batch(
    application: Application | str,
    graph: CSRGraph,
    lanes,
    arena=None,
    relax_method: str | None = None,
) -> PackedBatchResult:
    """Run BFS/SSSP lanes spanning *different* configurations in one sweep.

    The generalization of :func:`run_batch` the fusion planner packs with:
    up to 64 ``(source, strategy, system)`` lanes share one union-frontier
    execution per word, with one engine per distinct configuration replaying
    every frontier sweep.  Frontier evolution is engine-independent (engines
    only account traffic), so each lane's ``values`` are bit-identical to
    its solo run regardless of what other configurations ride along; each
    lane's metrics are its own engine's cost attributed across that engine's
    lanes, exactly as :func:`run_batch` attributes a single engine's.
    """
    application = Application(application)
    if application is Application.BFS:
        chunk_runner, needs_weights = _bfs_word, False
    elif application is Application.SSSP:
        chunk_runner, needs_weights = _sssp_word, True
    else:
        raise ConfigurationError(
            f"packed execution supports bfs and sssp, not {application.value}"
        )
    lane_list = [
        lane if isinstance(lane, PackedLane) else PackedLane(*lane) for lane in lanes
    ]
    if not lane_list:
        raise ConfigurationError("run_packed_batch needs at least one lane")
    for lane in lane_list:
        _check_source(graph, lane.source)

    weights = None
    if application is Application.SSSP and graph.has_weights:
        # Same hoist as run_batch: one exact float64 view per batch.
        weights = np.ascontiguousarray(graph.weights, dtype=np.float64)

    outcome = PackedBatchResult(
        application=application, graph_name=graph.name, lanes=lane_list
    )
    for offset in range(0, len(lane_list), WORD_BITS):
        word_lanes = lane_list[offset : offset + WORD_BITS]
        word_sources = [int(lane.source) for lane in word_lanes]
        # One engine per distinct configuration, in first-appearance order.
        config_index: dict[tuple, int] = {}
        configs: list[PackedLane] = []
        lane_engine = np.zeros(len(word_lanes), dtype=np.int64)
        for position, lane in enumerate(word_lanes):
            key = lane.config_key()
            index = config_index.get(key)
            if index is None:
                index = config_index[key] = len(configs)
                configs.append(lane)
            lane_engine[position] = index
        engines: list[TraversalEngine] = []
        leased: list[TraversalEngine] = []
        try:
            for config in configs:
                if arena is not None:
                    engine = arena.acquire(
                        graph,
                        config.strategy,
                        system=config.system,
                        needs_weights=needs_weights,
                    )
                    leased.append(engine)
                else:
                    engine = TraversalEngine(
                        graph,
                        config.strategy,
                        system=config.system,
                        needs_weights=needs_weights,
                    )
                engine.reset()
                engines.append(engine)
            values, attribution = chunk_runner(
                graph, word_sources, engines, lane_engine, weights, relax_method
            )
            engine_metrics = [engine.finalize() for engine in engines]
            outcome.batch_metrics.extend(engine_metrics)
            engine_lane_fractions = [
                attribution.engine_fractions(index) for index in range(len(engines))
            ]
            for position, lane in enumerate(word_lanes):
                index = int(lane_engine[position])
                engine = engines[index]
                batch_metrics = engine_metrics[index]
                batch_counters = batch_metrics.counters
                fraction = float(engine_lane_fractions[index][position])
                breakdown = attribution.breakdowns[position]
                lane_counters = KernelCounters(
                    iterations=int(attribution.iterations[position]),
                    frontier_vertices=int(
                        round(batch_counters.frontier_vertices * fraction)
                    ),
                    edges_traversed=int(
                        round(batch_counters.edges_traversed * fraction)
                    ),
                    max_frontier=batch_counters.max_frontier,
                    relax_candidates=int(
                        round(batch_counters.relax_candidates * fraction)
                    ),
                    relax_backend=batch_counters.relax_backend,
                )
                metrics = TraversalMetrics(
                    seconds=breakdown.total(),
                    breakdown=breakdown,
                    traffic=batch_metrics.traffic.scaled(fraction),
                    iterations=int(attribution.iterations[position]),
                    dataset_bytes=engine.dataset_bytes,
                    strategy=lane.strategy,
                    system_name=engine.system.name,
                    counters=lane_counters,
                )
                outcome.results.append(
                    TraversalResult(
                        application=application,
                        graph_name=graph.name,
                        strategy=lane.strategy,
                        source=int(lane.source),
                        values=values[position].copy(),
                        metrics=metrics,
                    )
                )
            outcome.words += 1
        finally:
            for engine in leased:
                arena.release(engine)
    return outcome


# ---------------------------------------------------------------------- #
# Word-level execution (≤64 sources)
# ---------------------------------------------------------------------- #
@hot_path
def _bfs_word(
    graph: CSRGraph,
    word: list[int],
    engines: list[TraversalEngine],
    lane_engine: np.ndarray | None = None,
    weights=None,
    relax_method=None,
):
    num_vertices = graph.num_vertices
    lanes = len(word)
    # Per-word setup: these three O(V) arrays are allocated once per <=64
    # sources, then reused across every sweep below.
    levels = np.full((lanes, num_vertices), UNREACHED, dtype=np.int64)  # repro: noqa[REPRO101] — once per word, not per sweep
    frontier_bits = np.zeros(num_vertices, dtype=np.uint64)  # repro: noqa[REPRO101] — once per word, not per sweep
    visited_bits = np.zeros(num_vertices, dtype=np.uint64)  # repro: noqa[REPRO101] — once per word, not per sweep
    scratch_bits = np.zeros(num_vertices, dtype=np.uint64)  # repro: noqa[REPRO101] — once per word, double-buffered below
    for lane, source in enumerate(word):
        bit = _ONE << np.uint64(lane)
        frontier_bits[source] |= bit
        visited_bits[source] |= bit
        levels[lane, source] = 0

    attribution = _Attribution(lanes, lane_engine=lane_engine)
    frontier = np.flatnonzero(frontier_bits).astype(VERTEX_DTYPE)
    depth = 0
    while frontier.size:
        starts, ends = frontier_offsets(graph, frontier)
        degrees = ends - starts
        active_bits = frontier_bits[frontier]
        # Every engine replays the shared union frontier: frontier evolution
        # never depends on the simulated platform (engines only account
        # traffic), so per-lane levels stay bit-identical to solo runs even
        # when lanes span different (strategy, system) configurations.
        for engine_index, engine in enumerate(engines):
            iteration = engine.process_frontier(frontier, starts, ends)
            attribution.record(
                iteration, active_bits, degrees, engine_index=engine_index
            )

        destinations = gather_frontier_destinations(graph, frontier, starts, ends)
        edge_bits = np.repeat(active_bits, degrees)
        next_bits = _scatter_or(num_vertices, destinations, edge_bits, out=scratch_bits)
        np.bitwise_and(next_bits, ~visited_bits, out=next_bits)
        visited_bits |= next_bits

        depth += 1
        frontier = np.flatnonzero(next_bits).astype(VERTEX_DTYPE)
        if frontier.size:
            new_bits = next_bits[frontier]
            for lane in range(lanes):
                hit = _lane_mask(new_bits, lane)
                if hit.any():
                    levels[lane, frontier[hit]] = depth
        # Double-buffer: the consumed frontier word becomes next sweep's
        # scatter target (zeroed inside _scatter_or).
        frontier_bits, scratch_bits = next_bits, frontier_bits

    return levels, attribution


@hot_path
def _sssp_word(
    graph: CSRGraph,
    word: list[int],
    engines: list[TraversalEngine],
    lane_engine: np.ndarray | None = None,
    weights: np.ndarray | None = None,
    relax_method: str | None = None,
):
    num_vertices = graph.num_vertices
    lanes = len(word)
    # Vertex-major layout: one vertex's 64 lane distances share cache lines,
    # which is what makes the relaxation kernel's inner loop fast.  The
    # transposed view handed back at the end keeps run_batch's per-lane
    # ``values[lane]`` extraction working unchanged.
    distances = np.full((num_vertices, lanes), UNREACHABLE, dtype=np.float64)  # repro: noqa[REPRO101] — once per word, not per sweep
    frontier_bits = np.zeros(num_vertices, dtype=np.uint64)  # repro: noqa[REPRO101] — once per word, not per sweep
    for lane, source in enumerate(word):
        frontier_bits[source] |= _ONE << np.uint64(lane)
        distances[source, lane] = 0.0
    snapshot = make_snapshot(num_vertices, lanes)
    next_scratch = np.zeros(num_vertices, dtype=np.uint64)  # repro: noqa[REPRO101] — once per word, double-buffered below

    attribution = _Attribution(lanes, lane_engine=lane_engine)
    iterations = 0
    max_iterations = max(1, num_vertices)
    frontier = np.flatnonzero(frontier_bits).astype(VERTEX_DTYPE)
    while frontier.size and iterations < max_iterations:
        starts, ends = frontier_offsets(graph, frontier)
        degrees = ends - starts
        active_bits = frontier_bits[frontier]

        # One lane-parallel relaxation sweep: every lane's candidates are
        # gathered from the shared CSR slices and min-reduced per
        # (lane, destination) in a single pass (see repro.traversal.relax).
        # The kernel's touched-set output IS the next frontier word array.
        outcome = relax_lanes(
            distances, graph.edges, frontier, starts, ends, active_bits,
            weights=weights, method=relax_method, snapshot=snapshot,
            next_bits=next_scratch,
        )
        # As in _bfs_word, every engine replays the shared union frontier;
        # the relax sweep itself is platform-independent, so its candidate
        # count is a batch-level fact noted on each engine.
        for engine_index, engine in enumerate(engines):
            iteration = engine.process_frontier(frontier, starts, ends)
            engine.note_relax(outcome.method, outcome.candidates)
            attribution.record(
                iteration,
                active_bits,
                degrees,
                lane_edges=outcome.lane_edges,
                active=outcome.active_lanes,
                engine_index=engine_index,
            )

        # Double-buffer: the consumed frontier word becomes next sweep's
        # kernel scratch (zeroed inside relax_lanes).
        frontier_bits, next_scratch = outcome.next_bits, frontier_bits
        frontier = np.flatnonzero(frontier_bits).astype(VERTEX_DTYPE)
        iterations += 1

    return distances.T, attribution


# ---------------------------------------------------------------------- #
# Internals
# ---------------------------------------------------------------------- #
@hot_path
def _lane_mask(bits: np.ndarray, lane: int) -> np.ndarray:
    """Boolean mask of the entries whose ``lane`` bit is set."""
    return (bits >> np.uint64(lane)) & _ONE != 0


@hot_path
def _scatter_or(
    num_vertices: int,
    destinations: np.ndarray,
    bits: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """OR-scatter ``bits`` into a per-vertex word array by destination.

    ``np.bitwise_or.at`` takes numpy's indexed-ufunc fast path for integer
    index arrays, which profiles an order of magnitude faster than the
    sort + ``reduceat`` formulation at frontier-sweep sizes.  ``out``, when
    given, is zeroed and reused so fixed-point callers avoid an O(V)
    allocation per sweep.
    """
    if out is None:
        out = np.zeros(num_vertices, dtype=np.uint64)  # repro: noqa[REPRO101] — solo-call fallback
    else:
        out.fill(0)
    if destinations.size:
        np.bitwise_or.at(out, destinations, bits)
    return out


class _Attribution:
    """Splits each shared iteration's cost across the sources that drove it.

    A source's share of one iteration is its fraction of the edges swept (its
    frontier's degree sum over the sum across all active sources).  Iterations
    whose active sources own no edges at all split the fixed costs evenly.

    With ``lane_engine`` (packed cross-config batches), lanes are partitioned
    across several engines and each engine's iteration cost is split only
    among *its own* lanes: per-engine attributed seconds still sum to that
    engine's own sweep total.  Without it (the single-engine path), every
    lane shares one engine and the behaviour is unchanged.
    """

    def __init__(self, lanes: int, lane_engine: np.ndarray | None = None) -> None:
        self.lanes = lanes
        self.lane_engine = lane_engine
        self.breakdowns = [TimeBreakdown() for _ in range(lanes)]
        self.iterations = np.zeros(lanes, dtype=np.int64)
        self.attributed_edges = np.zeros(lanes, dtype=np.float64)

    def record(
        self,
        iteration: TimeBreakdown,
        active_bits: np.ndarray,
        degrees: np.ndarray,
        lane_edges: np.ndarray | None = None,
        active: np.ndarray | None = None,
        engine_index: int | None = None,
    ) -> None:
        if active is None:
            active = active_lane_mask(active_bits, self.lanes)
        if lane_edges is None:
            lane_edges = np.zeros(self.lanes, dtype=np.int64)
            for lane in np.flatnonzero(active):
                mask = _lane_mask(active_bits, lane)
                lane_edges[lane] = int(degrees[mask].sum())
        if self.lane_engine is not None and engine_index is not None:
            owned = self.lane_engine == engine_index
            active = active & owned
            lane_edges = np.where(owned, lane_edges, 0)
        self.iterations += active
        total = float(lane_edges.sum())
        if total > 0:
            shares = lane_edges / total
        else:
            count = int(np.count_nonzero(active))
            shares = np.where(active, 1.0 / max(count, 1), 0.0)
        self.attributed_edges += lane_edges
        for lane in range(self.lanes):
            if shares[lane] > 0:
                self.breakdowns[lane].add(iteration.scaled(float(shares[lane])))

    def fractions(self) -> np.ndarray:
        """Each source's overall share of the batch, for traffic attribution."""
        total = float(self.attributed_edges.sum())
        if total <= 0:
            return np.full(self.lanes, 1.0 / self.lanes)
        return self.attributed_edges / total

    def engine_fractions(self, engine_index: int) -> np.ndarray:
        """Lane shares normalized within one engine's own lane subset.

        Scaling an engine's run-level traffic by these keeps each engine's
        attributed totals summing to that engine's own sweep, independent of
        how much work the other engines' lanes did.
        """
        if self.lane_engine is None:
            return self.fractions()
        owned = self.lane_engine == engine_index
        edges = np.where(owned, self.attributed_edges, 0.0)
        total = float(edges.sum())
        if total <= 0:
            count = int(np.count_nonzero(owned))
            return np.where(owned, 1.0 / max(count, 1), 0.0)
        return edges / total
