"""PageRank on the EMOGI memory system (extension beyond the paper's apps).

The paper motivates EMOGI with analytics and recommendation workloads; BFS,
SSSP and CC are the applications it evaluates, but the same zero-copy edge-
list access pattern serves any vertex-centric computation.  PageRank is the
canonical example of the *streaming* class (like CC, every vertex is active
every iteration, so the whole edge list crosses the interconnect once per
iteration), and is included here both as a usable algorithm and as an extra
data point for the "UVM does comparatively better on streaming workloads"
observation of §5.4.

The implementation is push-style power iteration on out-edges, which matches
how the edge list is laid out in CSR and therefore how the traversal engine
accounts its traffic.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..errors import ConfigurationError
from ..graph.csr import CSRGraph
from ..types import AccessStrategy, EMOGI_STRATEGY
from .engine import TraversalEngine
from .frontier import all_vertices_frontier
from .results import TraversalMetrics


class PageRankResult:
    """Scores plus the memory-system metrics of the run that produced them."""

    def __init__(
        self,
        graph_name: str,
        strategy: AccessStrategy,
        scores: np.ndarray,
        iterations: int,
        converged: bool,
        metrics: TraversalMetrics | None,
    ) -> None:
        self.graph_name = graph_name
        self.strategy = strategy
        self.values = scores
        self.iterations = iterations
        self.converged = converged
        self.metrics = metrics

    @property
    def seconds(self) -> float:
        return self.metrics.seconds if self.metrics is not None else 0.0

    def top_vertices(self, count: int = 10) -> np.ndarray:
        """Vertex IDs with the highest PageRank, best first."""
        count = min(count, self.values.size)
        order = np.argsort(-self.values, kind="stable")
        return order[:count]


def pagerank_scores(
    graph: CSRGraph,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
) -> np.ndarray:
    """Reference PageRank without memory simulation (used by tests)."""
    return _pagerank(graph, None, EMOGI_STRATEGY, damping, tolerance, max_iterations).values


def run_pagerank(
    graph: CSRGraph,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
    engine: TraversalEngine | None = None,
) -> PageRankResult:
    """PageRank under the given edge-list access strategy."""
    engine = engine or TraversalEngine(graph, strategy, system=system, needs_weights=False)
    return _pagerank(graph, engine, strategy, damping, tolerance, max_iterations)


def pagerank_sweep(
    graph: CSRGraph,
    engines=(),
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
) -> tuple[np.ndarray, int, bool]:
    """Push-style power iteration, driving every engine once per iteration.

    Like :func:`repro.traversal.cc.cc_sweep`, the score evolution is
    engine-independent: each iteration streams the whole edge list once for
    the algorithm and replays the all-vertices frontier into every attached
    engine, which is how the streaming batch runs one PageRank under many
    simulated platforms.  Returns ``(scores, iterations, converged)``.
    """
    if not 0.0 < damping < 1.0:
        raise ConfigurationError("damping must lie strictly between 0 and 1")
    if tolerance <= 0.0:
        raise ConfigurationError("tolerance must be positive")
    if max_iterations <= 0:
        raise ConfigurationError("max_iterations must be positive")

    num_vertices = graph.num_vertices
    if num_vertices == 0:
        return np.empty(0), 0, True

    degrees = graph.degrees().astype(np.float64)
    sources = graph.edge_sources()
    frontier = all_vertices_frontier(graph)
    scores = np.full(num_vertices, 1.0 / num_vertices)
    base = (1.0 - damping) / num_vertices

    iterations = 0
    converged = False
    while iterations < max_iterations and not converged:
        for engine in engines:
            engine.process_frontier(frontier)
        contribution = np.zeros(num_vertices)
        active = degrees > 0
        per_edge = np.zeros(num_vertices)
        per_edge[active] = scores[active] / degrees[active]
        np.add.at(contribution, graph.edges, per_edge[sources])
        dangling_mass = scores[~active].sum() / num_vertices
        new_scores = base + damping * (contribution + dangling_mass)
        delta = float(np.abs(new_scores - scores).sum())
        scores = new_scores
        iterations += 1
        converged = delta < tolerance
    return scores, iterations, converged


def _pagerank(
    graph: CSRGraph,
    engine: TraversalEngine | None,
    strategy: AccessStrategy,
    damping: float,
    tolerance: float,
    max_iterations: int,
) -> PageRankResult:
    scores, iterations, converged = pagerank_sweep(
        graph,
        engines=() if engine is None else (engine,),
        damping=damping,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    if graph.num_vertices == 0:
        return PageRankResult(graph.name, strategy, scores, iterations, converged, None)
    metrics = engine.finalize() if engine is not None else None
    return PageRankResult(graph.name, strategy, scores, iterations, converged, metrics)
