"""Result containers returned by the traversal API."""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

import numpy as np

from ..memsim.coalescer import REQUEST_SIZES
from ..memsim.metrics import TrafficRecord
from ..timing import TimeBreakdown
from ..types import AccessStrategy, Application


@dataclass(frozen=True)
class KernelCounters:
    """Kernel-level counters of one traversal run, surfaced for observability.

    The totals (``frontier_vertices`` / ``edges_traversed``) are always
    recorded; the per-iteration series (``frontier_sizes`` /
    ``edges_per_iteration``) are captured only while tracing is enabled
    (``REPRO_TRACE`` kill switch), keeping the default path allocation-light.
    ``relax_backend`` records which :mod:`repro.traversal.relax` code path
    actually ran (native / scatter / reduceat) so a silent fallback to the
    slow backend is visible in result metadata and service logs.
    """

    iterations: int = 0
    #: Total vertices expanded across all iterations.
    frontier_vertices: int = 0
    #: Total edges touched (neighbor-list entries scanned).
    edges_traversed: int = 0
    #: Largest single-iteration frontier.
    max_frontier: int = 0
    #: Per-iteration frontier sizes (empty when tracing is disabled).
    frontier_sizes: tuple[int, ...] = ()
    #: Per-iteration edges touched (empty when tracing is disabled).
    edges_per_iteration: tuple[int, ...] = ()
    #: Candidate-stream length fed to the relax kernel (SSSP lane batches).
    relax_candidates: int = 0
    #: Relax kernel backend chosen ("native" / "scatter" / "reduceat"), or
    #: ``None`` for runs that never invoked the lane relax kernel.
    relax_backend: str | None = None

    def to_json(self) -> dict:
        record = {
            "iterations": self.iterations,
            "frontier_vertices": self.frontier_vertices,
            "edges_traversed": self.edges_traversed,
            "max_frontier": self.max_frontier,
            "relax_candidates": self.relax_candidates,
            "relax_backend": self.relax_backend,
        }
        if self.frontier_sizes:
            record["frontier_sizes"] = list(self.frontier_sizes)
        if self.edges_per_iteration:
            record["edges_per_iteration"] = list(self.edges_per_iteration)
        return record


@dataclass(frozen=True)
class TraversalMetrics:
    """Performance metrics of one simulated traversal run.

    These are the quantities the paper reports: execution time, achieved PCIe
    bandwidth (Figure 8), the request-size histogram (Figure 5), the request
    count (Figure 7) and I/O read amplification (Figure 10).
    """

    seconds: float
    breakdown: TimeBreakdown
    traffic: TrafficRecord
    iterations: int
    dataset_bytes: int
    #: One of the four AccessStrategy members, or a baseline label such as
    #: "subway" / "halo" for runs produced by :mod:`repro.baselines`.
    strategy: AccessStrategy | str
    system_name: str
    #: Kernel-level observability counters (``None`` for legacy callers that
    #: construct metrics without an engine).
    counters: KernelCounters | None = None

    @property
    def io_amplification(self) -> float:
        """Host bytes read over the link divided by the dataset size."""
        return self.traffic.io_amplification(self.dataset_bytes)

    @property
    def achieved_bandwidth_gbps(self) -> float:
        """Average PCIe bandwidth over the whole run (host bytes / time)."""
        if self.seconds <= 0:
            return 0.0
        return self.traffic.host_bytes_read / self.seconds / 1e9

    @property
    def total_pcie_requests(self) -> int:
        """Zero-copy read requests issued (the Figure 7 quantity)."""
        return self.traffic.request_histogram.total_requests

    @property
    def request_size_distribution(self) -> dict[int, float]:
        """Fraction of zero-copy requests per size (the Figure 5 quantity)."""
        return self.traffic.request_histogram.distribution()

    @property
    def host_bytes_read(self) -> int:
        return self.traffic.host_bytes_read

    def speedup_over(self, baseline: "TraversalMetrics") -> float:
        """Normalized performance relative to a baseline run (Figure 9/11/12)."""
        if self.seconds <= 0:
            return float("inf")
        return baseline.seconds / self.seconds


@dataclass(frozen=True)
class TraversalResult:
    """Algorithm output plus the metrics of the run that produced it."""

    application: Application
    graph_name: str
    strategy: AccessStrategy | str
    source: int | None
    values: np.ndarray
    metrics: TraversalMetrics

    @property
    def seconds(self) -> float:
        return self.metrics.seconds


@dataclass
class AggregateResult:
    """Average over several runs of the same configuration.

    The paper averages BFS/SSSP execution times over 64 random source
    vertices (§5.2); this container plays that role.
    """

    application: Application
    graph_name: str
    strategy: AccessStrategy | str
    runs: list[TraversalResult] = field(default_factory=list)

    def add(self, result: TraversalResult) -> None:
        self.runs.append(result)

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    @property
    def mean_seconds(self) -> float:
        if not self.runs:
            return 0.0
        return mean(run.seconds for run in self.runs)

    @property
    def mean_io_amplification(self) -> float:
        if not self.runs:
            return 0.0
        return mean(run.metrics.io_amplification for run in self.runs)

    @property
    def mean_bandwidth_gbps(self) -> float:
        if not self.runs:
            return 0.0
        return mean(run.metrics.achieved_bandwidth_gbps for run in self.runs)

    @property
    def mean_pcie_requests(self) -> float:
        if not self.runs:
            return 0.0
        return mean(run.metrics.total_pcie_requests for run in self.runs)

    def mean_request_size_distribution(self) -> dict[int, float]:
        if not self.runs:
            return {size: 0.0 for size in REQUEST_SIZES}
        merged = {size: 0.0 for size in REQUEST_SIZES}
        for run in self.runs:
            for size, fraction in run.metrics.request_size_distribution.items():
                merged[size] += fraction
        return {size: value / len(self.runs) for size, value in merged.items()}

    def speedup_over(self, baseline: "AggregateResult") -> float:
        if self.mean_seconds <= 0:
            return float("inf")
        return baseline.mean_seconds / self.mean_seconds
