"""EMOGI core: zero-copy graph traversal on the simulated memory system.

The public entry points are :func:`~repro.traversal.api.bfs`,
:func:`~repro.traversal.api.sssp` and :func:`~repro.traversal.api.cc`, each of
which runs the corresponding vertex-centric traversal under one of the four
edge-list access strategies the paper compares (UVM, Naive zero-copy, Merged,
Merged+Aligned — the last one being "EMOGI").
"""

from ..types import AccessStrategy, Application, EMOGI_STRATEGY
from .api import bfs, cc, run, run_average, run_streaming, sssp
from .arena import EngineArena
from .engine import TraversalEngine
from .multisource import MultiSourceResult, run_batch, run_bfs_batch, run_sssp_batch
from .pagerank import PageRankResult, run_pagerank
from .streaming import StreamingBatchResult, StreamingLane, run_streaming_batch
from .results import AggregateResult, KernelCounters, TraversalMetrics, TraversalResult
from .toy import AccessPattern, ToyResult, run_array_copy, run_uvm_array_scan

__all__ = [
    "AccessStrategy",
    "Application",
    "EMOGI_STRATEGY",
    "bfs",
    "sssp",
    "cc",
    "run",
    "run_average",
    "run_batch",
    "run_bfs_batch",
    "run_sssp_batch",
    "run_streaming",
    "run_streaming_batch",
    "MultiSourceResult",
    "StreamingBatchResult",
    "StreamingLane",
    "EngineArena",
    "run_pagerank",
    "PageRankResult",
    "KernelCounters",
    "TraversalEngine",
    "TraversalMetrics",
    "TraversalResult",
    "AggregateResult",
    "AccessPattern",
    "ToyResult",
    "run_array_copy",
    "run_uvm_array_scan",
]
