"""Traversal engine: accounts the memory-system cost of frontier expansion.

The algorithms in :mod:`repro.traversal.bfs` / ``sssp`` / ``cc`` compute their
results directly on the CSR arrays (so the numerical output is exact), and
call :meth:`TraversalEngine.process_frontier` once per traversal iteration to
simulate what the corresponding CUDA kernel would have done to the memory
system: the edge-list (and weight-list) bytes it touches, the PCIe read
requests or UVM page migrations those touches generate, and the resulting
simulated time.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig, default_system
from ..errors import SimulationError
from ..gpu.kernel import KernelLaunch, KernelStats
from ..graph.csr import CSRGraph
from ..memsim.address_space import AddressSpace
from ..memsim.dram import DRAMModel
from ..memsim.gpu_memory import DeviceMemory
from ..memsim.metrics import TimingModel, TrafficRecord
from ..memsim.monitor import PCIeTrafficMonitor
from ..memsim.uvm import UVMSpace
from ..memsim.zero_copy import ZeroCopyRegion
from ..obs.trace import tracing_enabled
from ..timing import TimeBreakdown
from ..types import AccessStrategy, MemorySpace, VERTEX_DTYPE
from .results import KernelCounters, TraversalMetrics
from .strategies import spec_for

_checkpoint = None


def _iteration_checkpoint() -> None:
    """Cooperative cancellation + fault hook, one call per engine iteration.

    The real hook lives in :func:`repro.service.resilience.iteration_checkpoint`
    (engine.sweep fault site + the thread's Cancellation token).  It is bound
    lazily because importing ``repro.service`` at module scope would be
    circular — the service package imports the traversal API, which imports
    this module.  After the first call this is one global read plus the hook
    itself (two reads when idle).
    """
    global _checkpoint
    if _checkpoint is None:
        from ..service.resilience import iteration_checkpoint

        _checkpoint = iteration_checkpoint
    _checkpoint()


#: Allocation names used by the engine.
EDGE_LIST = "edge_list"
WEIGHT_LIST = "edge_weights"
VERTEX_LIST = "vertex_list"
VERTEX_VALUES = "vertex_values"
FRONTIER_BUFFERS = "frontier_buffers"


class TraversalEngine:
    """Simulated memory system for one traversal run over one graph."""

    def __init__(
        self,
        graph: CSRGraph,
        strategy: AccessStrategy,
        system: SystemConfig | None = None,
        needs_weights: bool = False,
        monitor: PCIeTrafficMonitor | None = None,
        edge_misalign_bytes: int = 0,
    ) -> None:
        self.graph = graph
        self.strategy = strategy
        self.spec = spec_for(strategy)
        self.system = system or default_system()
        self.needs_weights = bool(needs_weights and graph.has_weights)
        self.timing_model = TimingModel(self.system)
        self.monitor = monitor or PCIeTrafficMonitor()
        self.device = DeviceMemory(self.system.gpu.memory_bytes)
        self.address_space = AddressSpace(self.device)
        self.dram = DRAMModel(self.system.host.dram)
        self.traffic = TrafficRecord()
        self.breakdown = TimeBreakdown()
        self.kernels = KernelStats()
        self.iterations = 0
        #: Relax kernel backend used by this run, noted via ``note_relax``.
        self.relax_backend: str | None = None
        self.relax_candidates = 0
        self._max_frontier = 0
        # Per-iteration (frontier size, edges touched) log.  Kept only while
        # tracing is enabled: the totals below are always-on and cheap, the
        # per-iteration series is the part worth a kill switch.
        self._detail_enabled = tracing_enabled()
        self._frontier_log: list[tuple[int, int]] = []
        self._edge_misalign_bytes = edge_misalign_bytes
        self._setup_memory()

    # ------------------------------------------------------------------ #
    # Memory placement (§4.2)
    # ------------------------------------------------------------------ #
    def _setup_memory(self) -> None:
        graph = self.graph
        # Small data structures stay in device memory: the vertex (offset)
        # list, per-vertex values (levels / distances / labels) and the
        # frontier queues.
        self.address_space.allocate(
            VERTEX_LIST, graph.vertex_list_bytes, MemorySpace.DEVICE, graph.element_bytes
        )
        self.address_space.allocate(
            VERTEX_VALUES, graph.num_vertices * 8, MemorySpace.DEVICE, 8
        )
        self.address_space.allocate(
            FRONTIER_BUFFERS, 2 * graph.num_vertices * 4, MemorySpace.DEVICE, 4
        )

        edge_space = self.spec.edge_list_space
        self.edge_allocation = self.address_space.allocate(
            EDGE_LIST,
            graph.edge_list_bytes,
            edge_space,
            graph.element_bytes,
            misalign_bytes=self._edge_misalign_bytes,
        )
        self.weight_allocation = None
        if self.needs_weights:
            self.weight_allocation = self.address_space.allocate(
                WEIGHT_LIST, graph.weight_list_bytes, edge_space, 4
            )

        if self.strategy is AccessStrategy.UVM:
            self._setup_uvm()
        else:
            self._setup_zero_copy()

    def _setup_uvm(self) -> None:
        page_bytes = self.system.uvm.page_bytes
        capacity_pages = self.device.page_cache_capacity(page_bytes)
        edge_bytes = self.edge_allocation.size_bytes
        weight_bytes = (
            self.weight_allocation.size_bytes if self.weight_allocation is not None else 0
        )
        total = edge_bytes + weight_bytes
        edge_share = capacity_pages if total == 0 else int(capacity_pages * edge_bytes / total)
        self.edge_uvm = UVMSpace(self.edge_allocation, self.system.uvm, edge_share)
        self.weight_uvm = None
        if self.weight_allocation is not None:
            self.weight_uvm = UVMSpace(
                self.weight_allocation, self.system.uvm, capacity_pages - edge_share
            )
        self.edge_region = None
        self.weight_region = None

    def _setup_zero_copy(self) -> None:
        warp_size = self.system.gpu.warp_size
        self.edge_region = ZeroCopyRegion(self.edge_allocation, self.monitor, warp_size)
        self.weight_region = None
        if self.weight_allocation is not None:
            self.weight_region = ZeroCopyRegion(
                self.weight_allocation, self.monitor, warp_size
            )
        self.edge_uvm = None
        self.weight_uvm = None

    # ------------------------------------------------------------------ #
    # Per-iteration accounting
    # ------------------------------------------------------------------ #
    def process_frontier(
        self,
        frontier: np.ndarray,
        starts: np.ndarray | None = None,
        ends: np.ndarray | None = None,
    ) -> TimeBreakdown:
        """Account one traversal iteration (one kernel launch) over ``frontier``.

        Every vertex in the frontier has its full neighbor list scanned, which
        is exactly what the vertex-centric kernels in Listings 1 and 2 do.
        Returns the time breakdown of just this iteration (also accumulated
        into the run totals).

        ``starts``/``ends`` may carry the frontier's precomputed edge-list
        offsets (see :func:`~repro.traversal.frontier.frontier_offsets`) so
        algorithms that also gather the frontier's edges only index
        ``graph.offsets`` once per iteration.
        """
        _iteration_checkpoint()
        frontier = np.asarray(frontier, dtype=VERTEX_DTYPE).ravel()
        iteration = TimeBreakdown()
        self.iterations += 1
        if frontier.size == 0:
            if self._detail_enabled:
                self._frontier_log.append((0, 0))
            return iteration
        if starts is None or ends is None:
            if frontier.min() < 0 or frontier.max() >= self.graph.num_vertices:
                raise SimulationError("frontier contains invalid vertex IDs")
            starts = self.graph.offsets[frontier]
            ends = self.graph.offsets[frontier + 1]
        edges_touched = int((ends - starts).sum())
        if frontier.size > self._max_frontier:
            self._max_frontier = int(frontier.size)
        if self._detail_enabled:
            self._frontier_log.append((int(frontier.size), edges_touched))

        self.traffic.vertices_processed += int(frontier.size)
        self.traffic.edges_processed += edges_touched
        self.traffic.useful_bytes += edges_touched * self.graph.element_bytes
        if self.needs_weights:
            self.traffic.useful_bytes += edges_touched * 4
        self.traffic.kernel_launches += 1
        self.kernels.record(
            KernelLaunch(
                name=f"{self.strategy.value}-iteration",
                num_threads=int(frontier.size)
                * (self.system.gpu.warp_size if self.spec.warp_per_vertex else 1),
                iteration=self.iterations,
            )
        )

        if self.strategy is AccessStrategy.UVM:
            iteration.add(self._access_uvm(starts, ends))
        else:
            iteration.add(self._access_zero_copy(starts, ends))

        iteration.add(self.timing_model.kernel_launch_time(1))
        iteration.add(self.timing_model.compute_time(edges_touched, int(frontier.size)))
        self.breakdown.add(iteration)
        return iteration

    def _access_uvm(self, starts: np.ndarray, ends: np.ndarray) -> TimeBreakdown:
        breakdown = TimeBreakdown()
        element_bytes = self.graph.element_bytes
        result = self.edge_uvm.access_byte_ranges(starts * element_bytes, ends * element_bytes)
        self._record_uvm(result)
        breakdown.add(self.timing_model.uvm_time(result.migrated_bytes, result.page_faults))
        if self.weight_uvm is not None:
            weight_result = self.weight_uvm.access_byte_ranges(starts * 4, ends * 4)
            self._record_uvm(weight_result)
            breakdown.add(
                self.timing_model.uvm_time(
                    weight_result.migrated_bytes, weight_result.page_faults
                )
            )
        return breakdown

    def _record_uvm(self, result) -> None:
        self.traffic.uvm_migrated_bytes += result.migrated_bytes
        self.traffic.uvm_migrations += result.page_faults
        self.traffic.uvm_pages_touched += result.pages_touched
        self.traffic.dram_bytes += self.dram.serve_block(result.migrated_bytes)
        self.monitor.record_block_transfer(result.migrated_bytes, pages=result.page_faults)

    def _access_zero_copy(self, starts: np.ndarray, ends: np.ndarray) -> TimeBreakdown:
        breakdown = TimeBreakdown()
        histograms = []
        if self.spec.warp_per_vertex:
            histograms.append(
                self.edge_region.access_merged(starts, ends, aligned=self.spec.aligned)
            )
            if self.weight_region is not None:
                histograms.append(
                    self.weight_region.access_merged(starts, ends, aligned=self.spec.aligned)
                )
        else:
            hit_rate = self.system.gpu.strided_sector_hit_rate
            histograms.append(
                self.edge_region.access_strided(
                    starts, ends, intra_sector_hit_rate=hit_rate
                )
            )
            if self.weight_region is not None:
                histograms.append(
                    self.weight_region.access_strided(
                        starts, ends, intra_sector_hit_rate=hit_rate
                    )
                )
        for histogram in histograms:
            self.traffic.request_histogram.merge_in_place(histogram)
            self.traffic.dram_bytes += self.dram.serve_requests(histogram)
            breakdown.add(self.timing_model.zero_copy_time(histogram))
        return breakdown

    # ------------------------------------------------------------------ #
    # Reuse
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Restore the just-constructed state without re-running ``_setup_memory``.

        Clears every run-scoped accumulator (traffic, time breakdown, kernel
        log, iteration count, monitor, DRAM counters) and the UVM residency
        state, so a reused engine's next run produces exactly the metrics a
        freshly constructed engine would.  The address-space allocations —
        the expensive part of construction — are left in place.
        """
        self.traffic = TrafficRecord()
        self.breakdown = TimeBreakdown()
        self.kernels = KernelStats()
        self.iterations = 0
        self.relax_backend = None
        self.relax_candidates = 0
        self._max_frontier = 0
        self._frontier_log.clear()
        self.monitor.reset()
        self.dram.reset()
        if self.edge_uvm is not None:
            self.edge_uvm.reset()
        if self.weight_uvm is not None:
            self.weight_uvm.reset()

    # ------------------------------------------------------------------ #
    # Run finalization
    # ------------------------------------------------------------------ #
    @property
    def dataset_bytes(self) -> int:
        """Bytes of host-resident input data (the Figure 10 denominator)."""
        total = self.graph.edge_list_bytes
        if self.needs_weights:
            total += self.graph.weight_list_bytes
        return total

    def note_relax(self, backend: str, candidates: int) -> None:
        """Record which relax kernel backend ran and how many candidates it saw."""
        self.relax_backend = backend
        self.relax_candidates += int(candidates)

    def counters(self) -> KernelCounters:
        """Kernel-level counters accumulated so far (see :class:`KernelCounters`)."""
        log = tuple(self._frontier_log)
        return KernelCounters(
            iterations=self.iterations,
            frontier_vertices=int(self.traffic.vertices_processed),
            edges_traversed=int(self.traffic.edges_processed),
            max_frontier=self._max_frontier,
            frontier_sizes=tuple(size for size, _ in log),
            edges_per_iteration=tuple(edges for _, edges in log),
            relax_candidates=self.relax_candidates,
            relax_backend=self.relax_backend,
        )

    def finalize(self) -> TraversalMetrics:
        """Produce the run-level metrics after the traversal has converged."""
        return TraversalMetrics(
            seconds=self.breakdown.total(),
            breakdown=self.breakdown,
            traffic=self.traffic,
            iterations=self.iterations,
            dataset_bytes=self.dataset_bytes,
            strategy=self.strategy,
            system_name=self.system.name,
            counters=self.counters(),
        )
