"""Breadth-first search (the paper's primary case study, §5.3).

The implementation follows the vertex-centric, scatter-style flow of
Algorithm 1: every iteration expands the current frontier by scanning each
active vertex's full neighbor list, marking unvisited neighbors as the next
frontier.  One iteration corresponds to one kernel launch, so the number of
kernels equals the BFS depth (§4.2).
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..errors import SimulationError
from ..graph.csr import CSRGraph
from ..types import AccessStrategy, Application, EMOGI_STRATEGY, VERTEX_DTYPE
from .engine import TraversalEngine
from .frontier import (
    frontier_offsets,
    gather_frontier_destinations,
    gather_frontier_edges,
)
from .results import TraversalResult

#: Level value assigned to vertices never reached from the source.
UNREACHED = -1


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Reference BFS levels without any memory simulation (for testing)."""
    _check_source(graph, source)
    levels = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=VERTEX_DTYPE)
    depth = 0
    while frontier.size:
        edges = gather_frontier_edges(graph, frontier)
        unvisited = edges.destinations[levels[edges.destinations] == UNREACHED]
        frontier = np.unique(unvisited).astype(VERTEX_DTYPE)
        depth += 1
        levels[frontier] = depth
    return levels


def run_bfs(
    graph: CSRGraph,
    source: int,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
    engine: TraversalEngine | None = None,
) -> TraversalResult:
    """BFS from ``source`` under the given edge-list access strategy."""
    _check_source(graph, source)
    engine = engine or TraversalEngine(graph, strategy, system=system, needs_weights=False)
    levels = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
    levels[source] = 0
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=VERTEX_DTYPE)
    depth = 0
    while frontier.size:
        starts, ends = frontier_offsets(graph, frontier)
        engine.process_frontier(frontier, starts, ends)
        destinations = gather_frontier_destinations(graph, frontier, starts, ends)
        # Mask-based next frontier: mark first-touched destinations in a
        # boolean per-vertex array instead of sorting them with np.unique.
        fresh = destinations[~visited[destinations]]
        next_mask = np.zeros(graph.num_vertices, dtype=bool)
        next_mask[fresh] = True
        visited |= next_mask
        frontier = np.flatnonzero(next_mask).astype(VERTEX_DTYPE)
        depth += 1
        levels[frontier] = depth
    return TraversalResult(
        application=Application.BFS,
        graph_name=graph.name,
        strategy=strategy,
        source=source,
        values=levels,
        metrics=engine.finalize(),
    )


def _check_source(graph: CSRGraph, source: int) -> None:
    if not 0 <= source < graph.num_vertices:
        raise SimulationError(
            f"source vertex {source} out of range for graph with "
            f"{graph.num_vertices} vertices"
        )
