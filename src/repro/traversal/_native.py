"""Optional native (C) backend for the lane-parallel relaxation kernel.

The numpy formulations in :mod:`repro.traversal.relax` are bound by numpy's
pass-at-a-time execution: every (lane, edge) candidate costs several 8-byte
memory passes across index and value temporaries.  The relaxation inner loop
is tiny — gather two doubles, add, compare, occasionally store — so a
compiled loop over the bit-packed lane words (`ctz` over each vertex's
active-lane mask, vertex-major ``(num_vertices, lanes)`` value rows so one
vertex's lanes share cache lines) runs the same work an order of magnitude
faster.

This module builds that loop *at runtime* with whatever C compiler the host
already has (``gcc``/``cc``), caches the shared object under
``~/.cache/repro-native/`` keyed by a hash of the source and flags, and loads
it through :mod:`ctypes` (stdlib — no new dependency).  Everything is gated:
no compiler, a failed compile, or ``REPRO_NATIVE=0`` simply mean
:func:`available` returns False and callers stay on the numpy kernel, which
is kept bit-identical by the relax-kernel equivalence tests.

The C call releases the GIL (plain ``ctypes.CDLL``), so service workers
draining separate batches relax concurrently.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from ..analysis.lockorder import tracked_lock
from ..envflags import env_choice, env_flag, env_str
from ..errors import ConfigurationError, NativeBackendError

#: Environment switch: set REPRO_NATIVE=0 to force the numpy kernel.
_ENV_SWITCH = "REPRO_NATIVE"

#: Override for the shared-object cache directory.
_ENV_CACHE_DIR = "REPRO_NATIVE_DIR"

#: Sanitizer build mode: ``asan`` or ``ubsan`` compiles the kernel with the
#: matching ``-fsanitize=`` flags (plus frame pointers and debug info) so the
#: relax bit-identity property tests double as memory/UB checks in CI.  The
#: sanitized object is cached under its own flag digest, so switching modes
#: never serves a stale unsanitized build.
_ENV_SANITIZE = "REPRO_NATIVE_SANITIZE"

_SANITIZE_MODES = ("asan", "ubsan")

_SANITIZE_FLAGS = {
    "asan": ("-fsanitize=address", "-fno-omit-frame-pointer", "-g"),
    "ubsan": ("-fsanitize=undefined", "-fno-omit-frame-pointer", "-g"),
}

_CFLAGS = ("-O3", "-shared", "-fPIC")

_SOURCE = r"""
#include <stdint.h>

/* One lane-parallel relaxation sweep over the union frontier.
 *
 * dist is the (num_vertices, lanes) row-major value matrix; snapshot is a
 * (num_frontier, lanes) scratch area.  Source values are snapshotted before
 * any store so a destination improved earlier in the same sweep can never
 * feed a later candidate -- exactly the gather-then-scatter semantics of the
 * numpy kernel and of the solo per-source runs.  weights may be NULL
 * (unweighted graphs relax with 1.0).  next_bits and lane_edges must arrive
 * zeroed.  Returns the number of (lane, destination) improvements.
 */
int64_t repro_relax_word(const int64_t *frontier,
                         const uint64_t *active_bits,
                         const int64_t *starts,
                         const int64_t *ends,
                         int64_t num_frontier,
                         const int64_t *edges,
                         const double *weights,
                         double *dist,
                         double *snapshot,
                         uint64_t *next_bits,
                         int64_t *lane_edges,
                         int64_t lanes)
{
    for (int64_t f = 0; f < num_frontier; f++) {
        const double *row = dist + frontier[f] * lanes;
        double *snap = snapshot + f * lanes;
        uint64_t bits = active_bits[f];
        while (bits) {
            int lane = __builtin_ctzll(bits);
            bits &= bits - 1;
            snap[lane] = row[lane];
        }
    }
    int64_t improved = 0;
    for (int64_t f = 0; f < num_frontier; f++) {
        uint64_t bits = active_bits[f];
        if (!bits) continue;
        const double *snap = snapshot + f * lanes;
        int64_t edge_start = starts[f], edge_end = ends[f];
        int64_t degree = edge_end - edge_start;
        uint64_t b = bits;
        while (b) {
            lane_edges[__builtin_ctzll(b)] += degree;
            b &= b - 1;
        }
        for (int64_t e = edge_start; e < edge_end; e++) {
            int64_t destination = edges[e];
            double weight = weights ? weights[e] : 1.0;
            double *drow = dist + destination * lanes;
            b = bits;
            while (b) {
                int lane = __builtin_ctzll(b);
                b &= b - 1;
                double candidate = snap[lane] + weight;
                if (candidate < drow[lane]) {
                    drow[lane] = candidate;
                    next_bits[destination] |= 1ull << (uint64_t)lane;
                    improved++;
                }
            }
        }
    }
    return improved;
}
"""

_lock = tracked_lock("traversal._native._lock")
_library: ctypes.CDLL | None = None
_status: str | None = None  # None = not yet probed

_fault_check = None


def _check_fault(site: str) -> None:
    """Fire any armed ``native.compile`` / ``native.invoke`` fault.

    Lazily bound like the engine's iteration checkpoint: importing
    ``repro.service`` at module scope would be circular (the service package
    imports the traversal API, which imports this module via the relax
    kernel).
    """
    global _fault_check
    if _fault_check is None:
        from ..service.faults import check

        _fault_check = check
    _fault_check(site)


def reset_probe() -> None:
    """Forget the cached build/load outcome so the next call re-probes.

    Used by the circuit breaker's tests and chaos harness: after an injected
    compile failure poisons the cached status, this restores the healthy
    backend without restarting the process.
    """
    global _library, _status
    with _lock:
        _library = None
        _status = None


def _cache_dir() -> Path:
    override = env_str(_ENV_CACHE_DIR)
    if override:
        return Path(override)
    return Path(os.environ.get("XDG_CACHE_HOME", Path.home() / ".cache")) / "repro-native"


def _compiler() -> str | None:
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def _build_flags() -> tuple[tuple[str, ...], str]:
    """Compiler flags plus a status suffix describing the sanitizer mode."""
    mode = env_choice(_ENV_SANITIZE, _SANITIZE_MODES)
    if mode is None:
        return _CFLAGS, ""
    return _CFLAGS + _SANITIZE_FLAGS[mode], f" [{mode}]"


def _build() -> tuple[ctypes.CDLL | None, str]:
    """Compile (or reuse) the shared object; returns (library, status)."""
    if not env_flag(_ENV_SWITCH, default=True):
        return None, "disabled via REPRO_NATIVE"
    try:
        _check_fault("native.compile")
    except Exception as exc:
        return None, f"compile failed: {exc}"
    try:
        flags, sanitize_note = _build_flags()
    except ConfigurationError as exc:
        # A typo'd sanitizer request must not silently serve the plain build:
        # degrade to the numpy backend with the reason in status().
        return None, f"sanitizer misconfigured: {exc}"
    compiler = _compiler()
    if compiler is None:
        return None, "no C compiler on PATH"
    digest = hashlib.sha256(
        ("\x00".join((_SOURCE, *flags))).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    shared_object = cache / f"relax_{digest}.so"
    if not shared_object.exists():
        try:
            cache.mkdir(parents=True, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=cache) as workdir:
                source = Path(workdir) / "relax.c"
                source.write_text(_SOURCE)
                built = Path(workdir) / "relax.so"
                subprocess.run(
                    [compiler, *flags, str(source), "-o", str(built)],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
                # Atomic publish: concurrent builders race benignly.
                os.replace(built, shared_object)
        except (OSError, subprocess.SubprocessError) as exc:
            return None, f"compile failed: {exc}"
    try:
        library = ctypes.CDLL(str(shared_object))
        pointer = np.ctypeslib.ndpointer
        library.repro_relax_word.restype = ctypes.c_int64
        library.repro_relax_word.argtypes = [
            pointer(np.int64, flags="C_CONTIGUOUS"),   # frontier
            pointer(np.uint64, flags="C_CONTIGUOUS"),  # active_bits
            pointer(np.int64, flags="C_CONTIGUOUS"),   # starts
            pointer(np.int64, flags="C_CONTIGUOUS"),   # ends
            ctypes.c_int64,                            # num_frontier
            pointer(np.int64, flags="C_CONTIGUOUS"),   # edges
            ctypes.c_void_p,                           # weights (nullable)
            pointer(np.float64, flags="C_CONTIGUOUS"), # dist
            pointer(np.float64, flags="C_CONTIGUOUS"), # snapshot
            pointer(np.uint64, flags="C_CONTIGUOUS"),  # next_bits
            pointer(np.int64, flags="C_CONTIGUOUS"),   # lane_edges
            ctypes.c_int64,                            # lanes
        ]
    except OSError as exc:
        return None, f"load failed: {exc}"
    return library, f"compiled with {compiler}{sanitize_note}"


def _ensure_loaded() -> ctypes.CDLL | None:
    global _library, _status
    if _status is None:
        with _lock:
            if _status is None:
                _library, _status = _build()
    return _library


def available() -> bool:
    """True when the compiled relaxation kernel is usable on this host."""
    return _ensure_loaded() is not None


def status() -> str:
    """Human-readable availability note (for benchmark reports)."""
    _ensure_loaded()
    return _status or "unknown"


def relax_word(
    frontier: np.ndarray,
    active_bits: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    edges: np.ndarray,
    weights: np.ndarray | None,
    values: np.ndarray,
    snapshot: np.ndarray,
    next_bits: np.ndarray,
    lane_edges: np.ndarray,
) -> int:
    """Invoke the compiled sweep; see the C source for the contract.

    ``values`` is the vertex-major ``(num_vertices, lanes)`` matrix updated in
    place; ``next_bits`` and ``lane_edges`` must arrive zeroed.  The caller
    guarantees contiguity and dtypes (this is the kernel's private fast path,
    fronted by :func:`repro.traversal.relax.relax_lanes`).
    """
    try:
        _check_fault("native.invoke")
    except Exception as exc:
        # Injected invoke faults surface as the same error class as real
        # kernel failures so the circuit breaker cannot tell them apart.
        raise NativeBackendError(f"native relaxation kernel failed: {exc}") from exc
    library = _ensure_loaded()
    if library is None:
        raise NativeBackendError(
            f"native relaxation kernel unavailable: {status()}"
        )
    lanes = values.shape[1]
    try:
        return int(
            library.repro_relax_word(
                frontier,
                active_bits,
                starts,
                ends,
                frontier.size,
                edges,
                weights.ctypes.data if weights is not None else None,
                values.reshape(-1),
                snapshot.reshape(-1),
                next_bits,
                lane_edges,
                lanes,
            )
        )
    except (ctypes.ArgumentError, OSError) as exc:
        raise NativeBackendError(f"native relaxation kernel failed: {exc}") from exc
