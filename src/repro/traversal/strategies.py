"""Edge-list access strategies (§5.1.2) and their memory placement.

The strategy determines two things:

* where the edge list (and, for SSSP, the weight list) lives —
  UVM space for the UVM baseline, pinned host memory for the zero-copy
  variants; and
* how GPU threads read it — per-thread strided scans (Naive), warp-per-vertex
  merged accesses (Merged), or warp-per-vertex accesses shifted to the closest
  128-byte boundary (Merged+Aligned, i.e. EMOGI).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import AccessStrategy, MemorySpace

#: Human-readable labels used by the benchmark report tables.
STRATEGY_LABELS: dict[AccessStrategy, str] = {
    AccessStrategy.UVM: "UVM",
    AccessStrategy.NAIVE: "Naive",
    AccessStrategy.MERGED: "Merged",
    AccessStrategy.MERGED_ALIGNED: "Merged+Aligned",
}


@dataclass(frozen=True)
class StrategySpec:
    """How one access strategy places and reads the edge list."""

    strategy: AccessStrategy
    edge_list_space: MemorySpace
    warp_per_vertex: bool
    aligned: bool

    @property
    def label(self) -> str:
        return STRATEGY_LABELS[self.strategy]


_SPECS: dict[AccessStrategy, StrategySpec] = {
    AccessStrategy.UVM: StrategySpec(
        strategy=AccessStrategy.UVM,
        edge_list_space=MemorySpace.UVM,
        warp_per_vertex=False,
        aligned=False,
    ),
    AccessStrategy.NAIVE: StrategySpec(
        strategy=AccessStrategy.NAIVE,
        edge_list_space=MemorySpace.HOST_PINNED,
        warp_per_vertex=False,
        aligned=False,
    ),
    AccessStrategy.MERGED: StrategySpec(
        strategy=AccessStrategy.MERGED,
        edge_list_space=MemorySpace.HOST_PINNED,
        warp_per_vertex=True,
        aligned=False,
    ),
    AccessStrategy.MERGED_ALIGNED: StrategySpec(
        strategy=AccessStrategy.MERGED_ALIGNED,
        edge_list_space=MemorySpace.HOST_PINNED,
        warp_per_vertex=True,
        aligned=True,
    ),
}


def spec_for(strategy: AccessStrategy) -> StrategySpec:
    """Look up the placement/access description of a strategy."""
    return _SPECS[strategy]
