"""Batched streaming traversals: one algorithm pass, many simulated platforms.

CC and PageRank are *streaming* applications: every vertex is active every
iteration, so each iteration reads the whole edge list exactly once and the
frontier evolution never depends on the simulated memory system.  That makes
them batchable along a different axis than BFS/SSSP — not across sources
(they have none) but across **platform lanes**: up to 64 distinct
(access-strategy, system-config) pairs share ONE algorithm execution per
word, with the shared per-iteration frontier slices replayed into each lane's
:class:`~repro.traversal.engine.TraversalEngine`.

Because the engines only account traffic, every lane's values *and* metrics
are exactly what its solo :func:`~repro.traversal.cc.run_cc` /
:func:`~repro.traversal.pagerank.run_pagerank` would produce — the streaming
analog of the multisource module's bit-identity guarantee — while the
algorithm's numpy work (the dominant wall-clock cost) is paid once per word
instead of once per lane.  The union sweep is a pure win here: unlike SSSP
there is no per-lane masking at all, since every lane is active every
iteration.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..config import SystemConfig
from ..errors import ConfigurationError
from ..graph.csr import CSRGraph
from ..types import AccessStrategy, Application
from .cc import cc_sweep
from .engine import TraversalEngine
from .multisource import WORD_BITS
from .pagerank import PageRankResult, pagerank_sweep
from .results import TraversalResult

#: Streaming applications; "pagerank" is not a serving-layer Application,
#: so lanes are keyed by plain strings here.
STREAMING_APPLICATIONS = ("cc", "pagerank")


@dataclass(frozen=True)
class StreamingLane:
    """One platform configuration a streaming batch executes under.

    PageRank lanes may additionally pin their own ``damping`` / ``tolerance``
    / ``max_iterations``; ``None`` means "use the batch-level default".
    Lanes sharing one effective parameter triple share one algorithm
    execution; lanes with different parameters are grouped into separate
    sweeps so each lane's scores stay bit-identical to its solo run.  CC
    lanes ignore these fields.
    """

    strategy: AccessStrategy
    system: SystemConfig | None = None
    damping: float | None = None
    tolerance: float | None = None
    max_iterations: int | None = None

    def pagerank_params(
        self, damping: float, tolerance: float, max_iterations: int
    ) -> tuple[float, float, int]:
        """Effective (damping, tolerance, max_iterations) given batch defaults."""
        return (
            self.damping if self.damping is not None else damping,
            self.tolerance if self.tolerance is not None else tolerance,
            self.max_iterations
            if self.max_iterations is not None
            else max_iterations,
        )


def normalize_lanes(lanes) -> list[StreamingLane]:
    """Coerce a lane collection into :class:`StreamingLane` objects.

    Accepts :class:`StreamingLane` instances, bare strategies (enum members
    or strings), and ``(strategy, system)`` pairs, in any mix.
    """
    normalized: list[StreamingLane] = []
    for lane in lanes:
        if isinstance(lane, StreamingLane):
            normalized.append(lane)
        elif isinstance(lane, (AccessStrategy, str)):
            normalized.append(StreamingLane(AccessStrategy(lane)))
        else:
            try:
                strategy, system = lane
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"cannot interpret {lane!r} as a streaming lane"
                ) from None
            normalized.append(StreamingLane(AccessStrategy(strategy), system))
    if not normalized:
        raise ConfigurationError("run_streaming_batch needs at least one lane")
    return normalized


@dataclass
class StreamingBatchResult:
    """Outcome of one batched streaming run.

    ``results`` holds one result per requested lane, in request order:
    :class:`~repro.traversal.results.TraversalResult` for CC,
    :class:`~repro.traversal.pagerank.PageRankResult` for PageRank — each
    carrying the values the shared execution produced and the *full* metrics
    of that lane's own engine (identical to a solo run's, not attributed
    shares: every lane sweeps the full stream in its own simulation).
    """

    application: str
    graph_name: str
    lanes: list[StreamingLane] = field(default_factory=list)
    results: list = field(default_factory=list)
    #: Algorithm executions performed (one per ≤64-lane word).
    words: int = 0

    @property
    def num_lanes(self) -> int:
        return len(self.results)


@contextmanager
def _lane_engines(graph: CSRGraph, word, arena):
    """Acquire one engine per lane in ``word``, releasing leases on exit."""
    engines: list[TraversalEngine] = []
    leased: list[TraversalEngine] = []
    try:
        for lane in word:
            if arena is not None:
                engine = arena.acquire(graph, lane.strategy, system=lane.system)
                leased.append(engine)  # repro: noqa[REPRO101] — O(lanes) bookkeeping, <= 64 per word
            else:
                engine = TraversalEngine(graph, lane.strategy, system=lane.system)
            engines.append(engine)  # repro: noqa[REPRO101] — O(lanes) bookkeeping, <= 64 per word
        yield engines
    finally:
        for engine in leased:
            arena.release(engine)


def run_streaming_batch(
    application,
    graph: CSRGraph,
    lanes,
    arena=None,
    damping: float = 0.85,
    tolerance: float = 1e-6,
    max_iterations: int = 100,
) -> StreamingBatchResult:
    """Run CC or PageRank once per ≤64-lane word, fanned across platforms.

    ``lanes`` is any collection :func:`normalize_lanes` accepts.  Engines are
    leased from ``arena`` (an :class:`~repro.traversal.arena.EngineArena`)
    when given, else constructed per lane.  ``damping`` / ``tolerance`` /
    ``max_iterations`` apply to PageRank lanes only.
    """
    application = (
        application.value if isinstance(application, Application) else str(application)
    )
    if application not in STREAMING_APPLICATIONS:
        raise ConfigurationError(
            f"streaming batches support {STREAMING_APPLICATIONS}, not {application!r}"
        )
    lane_list = normalize_lanes(lanes)
    outcome = StreamingBatchResult(application=application, graph_name=graph.name)
    outcome.lanes = lane_list

    if application == "cc":
        for offset in range(0, len(lane_list), WORD_BITS):
            word = lane_list[offset : offset + WORD_BITS]
            with _lane_engines(graph, word, arena) as engines:
                labels, _ = cc_sweep(graph, engines=engines)
                for lane, engine in zip(word, engines):
                    outcome.results.append(  # repro: noqa[REPRO101] — one result per lane, not per edge
                        TraversalResult(
                            application=Application.CC,
                            graph_name=graph.name,
                            strategy=lane.strategy,
                            source=None,
                            values=labels.copy(),
                            metrics=engine.finalize(),
                        )
                    )
                outcome.words += 1
        return outcome

    # PageRank: lanes may carry their own damping/tolerance/max_iterations.
    # Lanes sharing one effective parameter triple share one sweep (chunked
    # to ≤64 lanes); results land back at each lane's requested position, so
    # callers see request order regardless of the parameter grouping.
    param_words: dict[tuple[float, float, int], list[int]] = {}
    for index, lane in enumerate(lane_list):
        params = lane.pagerank_params(damping, tolerance, max_iterations)
        param_words.setdefault(params, []).append(index)  # repro: noqa[REPRO101] — O(lanes) bookkeeping
    outcome.results = [None] * len(lane_list)
    for (damp, tol, iters), indices in param_words.items():
        for offset in range(0, len(indices), WORD_BITS):
            chunk = indices[offset : offset + WORD_BITS]
            word = [lane_list[i] for i in chunk]  # repro: noqa[REPRO101] — <= 64 lanes per word
            with _lane_engines(graph, word, arena) as engines:
                scores, iterations, converged = pagerank_sweep(
                    graph,
                    engines=engines,
                    damping=damp,
                    tolerance=tol,
                    max_iterations=iters,
                )
                for index, lane, engine in zip(chunk, word, engines):
                    outcome.results[index] = PageRankResult(
                        graph_name=graph.name,
                        strategy=lane.strategy,
                        scores=scores.copy(),
                        iterations=iterations,
                        converged=converged,
                        # Solo run_pagerank reports no metrics for an
                        # empty graph (it never sweeps); stay identical.
                        metrics=engine.finalize() if graph.num_vertices else None,
                    )
                outcome.words += 1
    return outcome
