"""Lane-parallel relaxation kernel for batched multi-source traversal.

The MS-BFS word layout of :mod:`repro.traversal.multisource` packs up to 64
sources ("lanes") into one ``uint64`` per vertex, but a relaxation-style
application (SSSP's distance updates, min-label propagation) still has to
combine *per-lane* state with the *shared* edge stream.  The naive shape — a
Python loop over lanes, each doing its own ragged edge gather and its own
``np.minimum.at`` scatter, plus a per-iteration ``np.unique`` over the union
destinations to probe for improvements — pays numpy dispatch and redundant
passes 64 times per iteration and is exactly why batched SSSP used to trail
batched BFS by ~4x.

This kernel restructures the work around the shared data stream:

1. **Pair expansion** — the per-frontier-vertex lane bit-masks are expanded
   into explicit ``(lane, frontier position)`` pairs with one ``np.nonzero``
   over a lanes x frontier boolean matrix; every lane's source values are
   pre-gathered once at pair level (gather-then-scatter: candidates can never
   observe a value improved earlier in the same sweep).
2. **Candidate construction** — the pair streams expand into per-(lane, edge)
   candidates against the flattened vertex-major key space
   ``vertex * lanes + lane``, one blocked ragged gather for all lanes at once.
3. **Segmented min-reduction** — one pass reduces all candidates into
   per-``(lane, destination)`` minima.  Two numpy formulations are provided:
   ``"scatter"`` uses numpy's indexed-ufunc fast path (``np.minimum.at`` over
   flat keys, pre-filtered to the candidates that can actually win), which
   profiles ~30x faster than sorting at frontier-sweep sizes; ``"reduceat"``
   sorts the keys and uses ``np.minimum.reduceat``, kept as an
   independently-implemented cross-check for the equivalence tests.  Both are
   executed in bounded blocks so the temporaries stay allocator-friendly.

When the host has a C compiler, a third backend — ``"native"``, built and
gated by :mod:`repro.traversal._native` — runs the same sweep as a compiled
loop over the bit-packed lane words and is the default; the numpy kernel
remains the portable fallback and the reference the equivalence tests pin
all backends against.

Minimum is exactly associative and commutative over IEEE floats (weights are
non-negative, so signed zeros and NaNs never arise), so reducing each lane's
candidate multiset in any order yields values bit-identical to that lane's
solo run — the guarantee the multisource module promises.

The kernel's *touched set* falls out of the reduction for free: a
``(lane, destination)`` pair improves exactly when some candidate is strictly
below the pre-sweep value, so the next frontier bits are produced without any
per-iteration ``np.unique`` or before/after probing over the union
destinations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arrays import ragged_gather_indices
from ..hotpath import hot_path
from . import _native

_ONE = np.uint64(1)

#: Backends accepted by :func:`relax_lanes` (``None`` = best available).
RELAX_METHODS = ("native", "scatter", "reduceat")

#: (lane, edge) candidates per numpy block: large enough to amortize numpy
#: dispatch, small enough that the temporaries stay in the allocator's
#: reuse range instead of thrashing mmap (fresh >32MB blocks fault every
#: page on every iteration).
_BLOCK_PAIRS = 1 << 18


def default_method() -> str:
    """The fastest relaxation backend usable on this host."""
    return "native" if _native.available() else "scatter"


def backend_status() -> str:
    """Describe the native backend's availability (for benchmark reports)."""
    return _native.status()


@dataclass(frozen=True)
class RelaxOutcome:
    """Result of one lane-parallel relaxation sweep.

    ``next_bits`` is the per-vertex ``uint64`` word of lanes whose value at
    that vertex strictly improved (the next frontier, in MS-BFS encoding);
    ``lane_edges`` counts the edges each lane relaxed this sweep (its share of
    the union stream, used for cost attribution); ``active_lanes`` flags the
    lanes that had at least one frontier vertex; ``method`` names the backend
    that actually executed the sweep (observability: a silent fallback from
    the native backend shows up here).
    """

    next_bits: np.ndarray
    lane_edges: np.ndarray
    active_lanes: np.ndarray
    method: str = ""

    @property
    def touched(self) -> np.ndarray:
        """Vertices improved by at least one lane (sorted, unique)."""
        return np.flatnonzero(self.next_bits)

    @property
    def candidates(self) -> int:
        """Candidate-stream length of this sweep (total (lane, edge) pairs)."""
        return int(self.lane_edges.sum())


@hot_path
def active_lane_mask(active_bits: np.ndarray, lanes: int) -> np.ndarray:
    """Boolean ``(lanes,)`` mask of lanes with any bit set in ``active_bits``.

    One OR-reduction over the frontier words plus a 64-wide bit unpack —
    replaces the per-lane ``mask.any()`` Python loop.
    """
    if active_bits.size:
        union = np.bitwise_or.reduce(active_bits)
    else:
        union = np.uint64(0)
    lane_ids = np.arange(lanes, dtype=np.uint64)
    return ((union >> lane_ids) & _ONE).astype(bool)


@hot_path
def expand_lane_pairs(
    active_bits: np.ndarray, lanes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Explicit ``(lane, position)`` pairs for every set frontier bit.

    ``active_bits`` holds one ``uint64`` lane word per frontier vertex; the
    result enumerates the set bits lane-major (all of lane 0's vertices, then
    lane 1's, ...), matching the order the per-lane formulation would visit.
    """
    lane_ids = np.arange(lanes, dtype=np.uint64)
    mask = ((active_bits[None, :] >> lane_ids[:, None]) & _ONE) != 0
    pair_lane, pair_position = np.nonzero(mask)
    return pair_lane, pair_position


def make_snapshot(num_vertices: int, lanes: int) -> np.ndarray:
    """Scratch buffer for the native backend, reusable across sweeps."""
    return np.empty((num_vertices, lanes), dtype=np.float64)


@hot_path
def relax_lanes(
    values: np.ndarray,
    edges: np.ndarray,
    frontier: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    active_bits: np.ndarray,
    weights: np.ndarray | None = None,
    method: str | None = None,
    snapshot: np.ndarray | None = None,
    next_bits: np.ndarray | None = None,
) -> RelaxOutcome:
    """One shared relaxation sweep over every lane's frontier edges.

    ``values`` is the vertex-major ``(num_vertices, lanes)`` per-lane state
    matrix (C contiguous, float64; updated in place).  ``frontier`` /
    ``starts`` / ``ends`` describe the *union* frontier's CSR slices —
    computed once by the caller and shared with the engine sweep — and
    ``active_bits[i]`` is the lane word of ``frontier[i]``.  Each lane
    relaxes exactly the edges whose tail carries its frontier bit: candidate
    ``values[src, lane] + weight`` (1.0 when ``weights`` is None) is
    min-reduced into ``values[dst, lane]`` for every such edge.  Candidates
    are always read from the pre-sweep values (gather-then-scatter), matching
    the solo per-source formulation.

    ``weights``, when given, must be float64 — convert once per batch, not
    per sweep.  ``snapshot`` (see :func:`make_snapshot`) lets the native
    backend reuse its scratch across sweeps.  ``next_bits``, when given, is a
    ``(num_vertices,)`` uint64 scratch the kernel zeroes and fills — callers
    iterating to a fixed point double-buffer it against the previous sweep's
    word array instead of allocating O(V) per sweep; the returned
    ``RelaxOutcome.next_bits`` is this same array.

    Per-lane results are bit-identical across every ``method`` and to
    relaxing each lane on its own, because min is exactly
    associative/commutative (see module docstring).
    """
    num_vertices, lanes = values.shape
    if method is None:
        method = default_method()
    if method not in RELAX_METHODS:
        raise ValueError(f"unknown relaxation method {method!r}; use {RELAX_METHODS}")
    if not values.flags.c_contiguous:
        raise ValueError("values must be C-contiguous (updated in place)")

    if weights is not None:
        weights = np.ascontiguousarray(weights, dtype=np.float64)

    active_lanes = active_lane_mask(active_bits, lanes)
    if next_bits is None:
        # Solo-call fallback; fixed-point callers pass a double-buffered
        # scratch (see _sssp_word).
        next_bits = np.zeros(num_vertices, dtype=np.uint64)  # repro: noqa[REPRO101] — solo-call fallback
    else:
        if next_bits.shape != (num_vertices,) or next_bits.dtype != np.uint64:
            raise ValueError("next_bits scratch must be (num_vertices,) uint64")
        next_bits.fill(0)

    if method == "native":
        lane_edges = np.zeros(lanes, dtype=np.int64)  # repro: noqa[REPRO101] — O(lanes) <= 64 elements
        if frontier.size:
            if snapshot is None:
                snapshot = make_snapshot(frontier.size, lanes)
            elif snapshot.shape[0] < frontier.size or snapshot.shape[1] != lanes:
                raise ValueError("snapshot scratch is too small for this frontier")
            _native.relax_word(
                np.ascontiguousarray(frontier, dtype=np.int64),
                np.ascontiguousarray(active_bits, dtype=np.uint64),
                np.ascontiguousarray(starts, dtype=np.int64),
                np.ascontiguousarray(ends, dtype=np.int64),
                np.ascontiguousarray(edges, dtype=np.int64),
                weights,
                values,
                snapshot,
                next_bits,
                lane_edges,
            )
        return RelaxOutcome(next_bits, lane_edges, active_lanes, method)

    flat = values.reshape(-1)
    pair_lane, pair_position = expand_lane_pairs(active_bits, lanes)
    pair_lengths = (ends - starts)[pair_position]
    lane_edges = np.bincount(
        pair_lane, weights=pair_lengths, minlength=lanes
    ).astype(np.int64)
    populated = pair_lengths > 0
    pair_lane = pair_lane[populated]
    pair_position = pair_position[populated]
    pair_lengths = pair_lengths[populated]
    if pair_lane.size == 0:
        return RelaxOutcome(next_bits, lane_edges, active_lanes, method)

    # Pre-gather every pair's source value ONCE, before any store: block N's
    # candidates must not observe improvements block N-1 already scattered.
    pair_values = flat[frontier[pair_position] * lanes + pair_lane]
    pair_starts = starts[pair_position]

    # Block boundaries on pair edges (a block may overrun by one pair's
    # degree, which is fine — the bound is about allocator behaviour).
    cumulative = np.cumsum(pair_lengths)
    cuts = np.searchsorted(
        cumulative, np.arange(_BLOCK_PAIRS, int(cumulative[-1]), _BLOCK_PAIRS),
        side="left",
    ) + 1
    bounds = np.concatenate(([0], cuts, [pair_lane.size]))  # repro: noqa[REPRO101] — O(num_blocks), a few dozen entries

    for block_lo, block_hi in zip(bounds[:-1], bounds[1:]):
        if block_lo >= block_hi:
            continue
        lengths = pair_lengths[block_lo:block_hi]
        edge_indices = ragged_gather_indices(pair_starts[block_lo:block_hi], lengths)
        candidates = np.repeat(pair_values[block_lo:block_hi], lengths)
        if weights is None:
            candidates += 1.0
        else:
            candidates += weights[edge_indices]
        destinations = edges[edge_indices]
        keys = destinations * lanes + np.repeat(pair_lane[block_lo:block_hi], lengths)

        if method == "scatter":
            # A key improves iff some candidate is strictly below its current
            # value, so winners are identified before the scatter and the
            # indexed-ufunc pass only touches viable candidates.
            viable = candidates < flat[keys]
            if viable.any():
                winner_keys = keys[viable]
                np.minimum.at(flat, winner_keys, candidates[viable])
                np.bitwise_or.at(
                    next_bits,
                    destinations[viable],
                    _ONE << (winner_keys % lanes).astype(np.uint64),
                )
            continue

        # method == "reduceat": sort by key, min-reduce each segment.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_candidates = candidates[order]
        segment_starts = np.concatenate(  # repro: noqa[REPRO101] — reduceat cross-check backend, not the production path
            ([0], np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1)
        )
        unique_keys = sorted_keys[segment_starts]
        minima = np.minimum.reduceat(sorted_candidates, segment_starts)
        improved = minima < flat[unique_keys]
        if improved.any():
            winner_keys = unique_keys[improved]
            flat[winner_keys] = minima[improved]
            np.bitwise_or.at(
                next_bits,
                winner_keys // lanes,
                _ONE << (winner_keys % lanes).astype(np.uint64),
            )
    return RelaxOutcome(next_bits, lane_edges, active_lanes, method)
