"""Connected components via min-label propagation (§5.4).

Unlike BFS/SSSP there is no root vertex: every vertex starts active and the
whole edge list is streamed in the first iteration, which is why the paper
observes CC giving UVM relatively better performance (its access pattern is
close to a sequential stream with good page-level locality).  The paper
evaluates CC only on the undirected graphs (GK, GU, FS, ML).
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..graph.csr import CSRGraph
from ..types import AccessStrategy, Application, EMOGI_STRATEGY, VERTEX_DTYPE
from .engine import TraversalEngine
from .frontier import all_vertices_frontier, frontier_offsets, gather_frontier_edges
from .results import TraversalResult


def cc_labels(graph: CSRGraph) -> np.ndarray:
    """Reference component labels without memory simulation."""
    return _cc(graph, engine=None).values


def run_cc(
    graph: CSRGraph,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
    engine: TraversalEngine | None = None,
) -> TraversalResult:
    """Connected components under the given edge-list access strategy."""
    engine = engine or TraversalEngine(graph, strategy, system=system, needs_weights=False)
    return _cc(graph, engine=engine, strategy=strategy)


def cc_sweep(graph: CSRGraph, engines=()) -> tuple[np.ndarray, int]:
    """Min-label propagation, driving every engine once per iteration.

    The label evolution is engine-independent (the engines only *account*
    memory traffic), so one shared algorithm pass can serve any number of
    simulated platforms: each iteration computes the frontier's CSR slices
    once and replays them into every engine.  This is what
    :func:`repro.traversal.streaming.run_streaming_batch` exploits to batch
    CC across access-strategy/system lanes.  Returns ``(labels, iterations)``.
    """
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    frontier = all_vertices_frontier(graph)
    iterations = 0
    max_iterations = max(1, graph.num_vertices)
    while frontier.size and iterations < max_iterations:
        starts, ends = frontier_offsets(graph, frontier)
        for engine in engines:
            engine.process_frontier(frontier, starts, ends)
        edges = gather_frontier_edges(graph, frontier, starts, ends)
        if edges.num_edges:
            candidates = labels[edges.sources]
            previous = labels.copy()
            np.minimum.at(labels, edges.destinations, candidates)
            frontier = np.flatnonzero(labels < previous).astype(VERTEX_DTYPE)
        else:
            frontier = np.empty(0, dtype=VERTEX_DTYPE)
        iterations += 1
    return labels, iterations


def _cc(
    graph: CSRGraph,
    engine: TraversalEngine | None,
    strategy: AccessStrategy = EMOGI_STRATEGY,
) -> TraversalResult:
    labels, _ = cc_sweep(graph, engines=() if engine is None else (engine,))
    metrics = engine.finalize() if engine is not None else None
    return TraversalResult(
        application=Application.CC,
        graph_name=graph.name,
        strategy=strategy,
        source=None,
        values=labels,
        metrics=metrics,
    )
