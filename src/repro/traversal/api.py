"""Public traversal API.

These are the functions a downstream user calls: run BFS / SSSP / CC on a CSR
graph under one of the four edge-list access strategies, on a simulated
platform, and get back both the algorithm's output and the memory-system
metrics of the run.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..config import SystemConfig
from ..errors import ConfigurationError
from ..graph.csr import CSRGraph
from ..types import AccessStrategy, Application, EMOGI_STRATEGY
from .bfs import run_bfs
from .cc import run_cc
from .results import AggregateResult, TraversalResult
from .sssp import run_sssp


def bfs(
    graph: CSRGraph,
    source: int,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
) -> TraversalResult:
    """Breadth-first search from ``source``.

    Returns a :class:`~repro.traversal.results.TraversalResult` whose
    ``values`` array holds the BFS level of every vertex (-1 if unreachable)
    and whose ``metrics`` describe the simulated memory-system behaviour.
    """
    return run_bfs(graph, source, strategy=strategy, system=system)


def sssp(
    graph: CSRGraph,
    source: int,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
) -> TraversalResult:
    """Single-source shortest paths from ``source`` (weights default to 1)."""
    return run_sssp(graph, source, strategy=strategy, system=system)


def cc(
    graph: CSRGraph,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
) -> TraversalResult:
    """Connected components (undirected graphs); ``values`` holds labels."""
    return run_cc(graph, strategy=strategy, system=system)


def normalize_application(application: Application | str) -> Application:
    """Coerce an application given as enum member or string ("bfs", "cc", ...)."""
    return Application(application)


def normalize_strategy(strategy: AccessStrategy | str) -> AccessStrategy:
    """Coerce a strategy given as enum member or string ("uvm", "merged", ...)."""
    return AccessStrategy(strategy)


def normalize_source(application: Application | str, source: object) -> int | None:
    """Canonicalize a source vertex for one application.

    CC and PageRank are source-free, so whatever was passed collapses to
    ``None`` — this is what makes every such request on a graph *the same*
    request, which the serving layer relies on for deduplication and caching.
    BFS/SSSP require a source; numpy integer scalars (the usual output of
    ``pick_sources``) and integral floats are accepted and converted to a
    plain hashable ``int``.
    """
    application = normalize_application(application)
    if application.is_streaming:
        return None
    if source is None:
        raise ConfigurationError(f"{application.value} requires a source vertex")
    if isinstance(source, (bool, np.bool_)):
        raise ConfigurationError(f"source vertex must be an integer, got {source!r}")
    if isinstance(source, (float, np.floating)):
        if not float(source).is_integer():
            raise ConfigurationError(
                f"source vertex must be integral, got {float(source)!r}"
            )
        return int(source)
    if isinstance(source, (int, np.integer)):
        return int(source)
    raise ConfigurationError(f"source vertex must be an integer, got {source!r}")


def normalize_deadline(deadline: object) -> float | None:
    """Canonicalize a serving deadline: seconds of latency budget, or None.

    Deadlines are *relative* (seconds from submission) so requests stay
    hashable and replayable; the serving layer converts them to absolute
    expiry times at admission.  Accepts any real number, returns a plain
    ``float`` so equal budgets compare equal regardless of the numeric type
    the client used.
    """
    if deadline is None:
        return None
    if isinstance(deadline, (bool, np.bool_)):
        raise ConfigurationError(f"deadline must be seconds, got {deadline!r}")
    try:
        seconds = float(deadline)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"deadline must be seconds, got {deadline!r}"
        ) from None
    if not np.isfinite(seconds) or seconds <= 0:
        raise ConfigurationError(
            f"deadline must be a positive finite number of seconds, got {seconds!r}"
        )
    return seconds


def normalize_tenant(tenant: object) -> str | None:
    """Canonicalize a tenant label: a non-empty string, or None (anonymous)."""
    if tenant is None:
        return None
    if not isinstance(tenant, str) or not tenant:
        raise ConfigurationError(
            f"tenant must be a non-empty string, got {tenant!r}"
        )
    return tenant


def run(
    application: Application | str,
    graph: CSRGraph,
    source: int | None = None,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
):
    """Dispatch to :func:`bfs`, :func:`sssp`, :func:`cc` or PageRank.

    PageRank returns a :class:`~repro.traversal.pagerank.PageRankResult`
    (module-default damping/tolerance); the other applications return a
    :class:`~repro.traversal.results.TraversalResult`.
    """
    application = normalize_application(application)
    source = normalize_source(application, source)
    if application is Application.CC:
        return cc(graph, strategy=strategy, system=system)
    if application is Application.PAGERANK:
        from .pagerank import run_pagerank

        return run_pagerank(graph, strategy=strategy, system=system)
    if application is Application.BFS:
        return bfs(graph, source, strategy=strategy, system=system)
    return sssp(graph, source, strategy=strategy, system=system)


def run_streaming(
    application: Application | str,
    graph: CSRGraph,
    lanes,
    arena=None,
    **kwargs,
):
    """Run CC or PageRank once, fanned across platform lanes (§5.4 batched).

    ``lanes`` is a collection of access strategies or ``(strategy, system)``
    pairs (see :func:`repro.traversal.streaming.normalize_lanes`).  The
    algorithm executes once per ≤64-lane word; every lane's values and
    metrics are identical to its solo run.  Returns a
    :class:`~repro.traversal.streaming.StreamingBatchResult`.
    """
    from .streaming import run_streaming_batch

    return run_streaming_batch(application, graph, lanes, arena=arena, **kwargs)


def run_average(
    application: Application | str,
    graph: CSRGraph,
    sources: Iterable[int] | np.ndarray,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
    batched: bool = True,
) -> AggregateResult:
    """Run one application over several sources and aggregate (§5.2).

    The paper averages execution times over 64 randomly chosen sources; CC is
    source-free, so it is executed once regardless of how many sources are
    passed.

    With ``batched`` (the default) multi-source BFS/SSSP runs execute through
    :func:`repro.traversal.multisource.run_batch`: all sources share one
    engine and each frontier sweep is paid once per batch instead of once per
    source.  Per-source ``values`` are bit-identical to the serial path;
    per-source metrics are the batch's cost *attributed* across sources, so
    their mean reflects the amortized (batched) cost per source.  Pass
    ``batched=False`` to reproduce the paper's measurement protocol of fully
    independent per-source runs (the figure harness does).
    """
    application = normalize_application(application)
    aggregate = AggregateResult(
        application=application, graph_name=graph.name, strategy=strategy
    )
    if application.is_streaming:
        if batched:
            from .streaming import run_streaming_batch

            outcome = run_streaming_batch(
                application.value, graph, [(strategy, system)]
            )
            aggregate.add(outcome.results[0])
        else:
            aggregate.add(
                run(application, graph, strategy=strategy, system=system)
            )
        return aggregate
    normalized = [normalize_source(application, source) for source in sources]
    if not normalized:
        raise ConfigurationError(
            f"{application.value} needs at least one source to average over"
        )
    if batched and len(normalized) > 1:
        from .multisource import run_batch

        outcome = run_batch(
            application, graph, normalized, strategy=strategy, system=system
        )
        for result in outcome.results:
            aggregate.add(result)
        return aggregate
    for source in normalized:
        aggregate.add(
            run(application, graph, source=source, strategy=strategy, system=system)
        )
    return aggregate
