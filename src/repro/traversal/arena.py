"""Engine pooling: reuse simulated memory systems across traversal runs.

Constructing a :class:`~repro.traversal.engine.TraversalEngine` allocates the
whole simulated address space (vertex list, value arrays, frontier buffers,
edge/weight regions) and the UVM residency arrays.  A 64-source
``run_average`` or a drained service batch used to pay that construction once
per source; an :class:`EngineArena` pays it once per
``(graph, strategy, system, needs_weights)`` configuration and recycles the
engine with :meth:`~repro.traversal.engine.TraversalEngine.reset` between
runs.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from ..analysis.lockorder import tracked_lock
from ..config import SystemConfig
from ..errors import ConfigurationError
from ..graph.csr import CSRGraph
from ..types import AccessStrategy
from .engine import TraversalEngine


class EngineArena:
    """A bounded, thread-safe pool of reusable traversal engines.

    Engines are keyed by ``(graph identity, strategy, platform fingerprint,
    needs_weights)``.  :meth:`acquire` hands out an engine in freshly-reset
    state and gives the caller exclusive use of it; :meth:`release` resets it
    and parks it for the next acquire.  At most ``max_idle`` engines are kept
    parked — beyond that the least recently released configuration is dropped
    (its simulated allocations are plain numpy arrays, so dropping is just
    garbage collection).
    """

    def __init__(self, max_idle: int = 16) -> None:
        if max_idle < 0:
            raise ConfigurationError("max_idle cannot be negative")
        self.max_idle = max_idle
        self._lock = tracked_lock("traversal.EngineArena._lock")
        self._idle: OrderedDict[tuple, list[TraversalEngine]] = OrderedDict()
        self._idle_count = 0
        self._created = 0
        self._reused = 0

    @staticmethod
    def _key(
        graph: CSRGraph,
        strategy: AccessStrategy,
        system: SystemConfig | None,
        needs_weights: bool,
    ) -> tuple:
        system_key = "default" if system is None else system.fingerprint()
        return (graph.name, strategy, system_key, bool(needs_weights))

    # ------------------------------------------------------------------ #
    # Leasing
    # ------------------------------------------------------------------ #
    def acquire(
        self,
        graph: CSRGraph,
        strategy: AccessStrategy,
        system: SystemConfig | None = None,
        needs_weights: bool = False,
    ) -> TraversalEngine:
        """Check an engine out of the pool, constructing one on a miss.

        A parked engine is only reused when it was built for this *exact*
        graph object (`is` identity, not just the name): when a registry
        evicts and re-loads a graph under the same name, the stale engines —
        which pin the old graph's arrays — are dropped here instead of being
        handed out against the wrong object.
        """
        key = self._key(graph, strategy, system, needs_weights)
        with self._lock:
            engines = self._idle.get(key)
            if engines:
                kept = [e for e in engines if e.graph is graph]
                dropped = len(engines) - len(kept)
                engine = kept.pop() if kept else None
                if kept:
                    self._idle[key] = kept
                else:
                    del self._idle[key]
                self._idle_count -= dropped + (1 if engine is not None else 0)
                if engine is not None:
                    self._reused += 1
                    return engine
        engine = TraversalEngine(
            graph, strategy, system=system, needs_weights=needs_weights
        )
        engine._arena_key = key
        with self._lock:
            self._created += 1
        return engine

    def release(self, engine: TraversalEngine) -> None:
        """Reset a leased engine and park it for the next acquire."""
        key = getattr(engine, "_arena_key", None)
        if key is None:
            raise ConfigurationError("engine was not acquired from this arena")
        engine.reset()
        with self._lock:
            if self.max_idle == 0:
                return
            self._idle.setdefault(key, []).append(engine)
            self._idle.move_to_end(key)
            self._idle_count += 1
            while self._idle_count > self.max_idle:
                oldest_key, oldest = next(iter(self._idle.items()))
                oldest.pop(0)
                if not oldest:
                    del self._idle[oldest_key]
                self._idle_count -= 1

    @contextmanager
    def lease(
        self,
        graph: CSRGraph,
        strategy: AccessStrategy,
        system: SystemConfig | None = None,
        needs_weights: bool = False,
    ) -> Iterator[TraversalEngine]:
        """``with arena.lease(...) as engine:`` acquire/release bracket."""
        engine = self.acquire(graph, strategy, system=system, needs_weights=needs_weights)
        try:
            yield engine
        finally:
            self.release(engine)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def idle_count(self) -> int:
        with self._lock:
            return self._idle_count

    @property
    def created(self) -> int:
        """Engines constructed (pool misses)."""
        with self._lock:
            return self._created

    @property
    def reused(self) -> int:
        """Acquires served from the pool without construction."""
        with self._lock:
            return self._reused

    def clear(self) -> None:
        """Drop every parked engine."""
        with self._lock:
            self._idle.clear()
            self._idle_count = 0
