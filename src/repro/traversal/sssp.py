"""Single-source shortest path (frontier-based Bellman-Ford, §5.4).

The paper bases its SSSP on the GraphBIG/maximum-warp formulation: every
iteration relaxes all outgoing edges of the vertices whose distance changed in
the previous iteration.  Edge weights live next to the edge list in host
memory, so SSSP moves roughly 1.5x the bytes BFS does per edge (8-byte edge
element + 4-byte weight).
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..errors import SimulationError
from ..graph.csr import CSRGraph
from ..types import AccessStrategy, Application, EMOGI_STRATEGY, VERTEX_DTYPE
from .engine import TraversalEngine
from .frontier import frontier_offsets, gather_frontier_edges
from .results import TraversalResult

#: Distance assigned to unreachable vertices.
UNREACHABLE = np.inf


def sssp_distances(graph: CSRGraph, source: int) -> np.ndarray:
    """Reference shortest-path distances without memory simulation."""
    return _sssp(graph, source, engine=None).values


def run_sssp(
    graph: CSRGraph,
    source: int,
    strategy: AccessStrategy = EMOGI_STRATEGY,
    system: SystemConfig | None = None,
    engine: TraversalEngine | None = None,
) -> TraversalResult:
    """SSSP from ``source`` under the given edge-list access strategy."""
    engine = engine or TraversalEngine(graph, strategy, system=system, needs_weights=True)
    return _sssp(graph, source, engine=engine, strategy=strategy)


def _sssp(
    graph: CSRGraph,
    source: int,
    engine: TraversalEngine | None,
    strategy: AccessStrategy = EMOGI_STRATEGY,
) -> TraversalResult:
    if not 0 <= source < graph.num_vertices:
        raise SimulationError(
            f"source vertex {source} out of range for graph with "
            f"{graph.num_vertices} vertices"
        )
    if graph.has_weights:
        weights = graph.weights
    else:
        weights = np.ones(graph.num_edges, dtype=np.float64)

    distances = np.full(graph.num_vertices, UNREACHABLE, dtype=np.float64)
    distances[source] = 0.0
    frontier = np.array([source], dtype=VERTEX_DTYPE)
    iterations = 0
    max_iterations = max(1, graph.num_vertices)
    while frontier.size and iterations < max_iterations:
        starts, ends = frontier_offsets(graph, frontier)
        if engine is not None:
            engine.process_frontier(frontier, starts, ends)
        edges = gather_frontier_edges(graph, frontier, starts, ends)
        if edges.num_edges:
            candidates = distances[edges.sources] + weights[edges.edge_indices]
            previous = distances.copy()
            np.minimum.at(distances, edges.destinations, candidates)
            frontier = np.flatnonzero(distances < previous).astype(VERTEX_DTYPE)
        else:
            frontier = np.empty(0, dtype=VERTEX_DTYPE)
        iterations += 1

    metrics = engine.finalize() if engine is not None else None
    return TraversalResult(
        application=Application.SSSP,
        graph_name=graph.name,
        strategy=strategy,
        source=source,
        values=distances,
        metrics=metrics,
    )
