"""The §3.3 toy example: copying a 1D array out of zero-copy memory.

The paper uses a simple array-copy kernel to expose how the GPU turns
zero-copy loads into PCIe requests under three access patterns (Figure 3) and
what PCIe / DRAM bandwidth each achieves (Figure 4):

* **Strided** — each thread scans its own 128-byte chunk one element at a
  time, producing an all-32-byte request stream.
* **Merged and aligned** — consecutive threads read consecutive elements from
  a 128-byte-aligned array, so the coalescer emits full 128-byte requests.
* **Merged but misaligned** — same kernel, but the array starts 32 bytes past
  a 128-byte boundary, so every warp emits a 32-byte + 96-byte request pair.

A UVM sequential scan of the same array provides the red-dashed reference
line of Figure 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig, default_system
from ..errors import ConfigurationError
from ..memsim.address_space import AddressSpace
from ..memsim.coalescer import CACHELINE_BYTES, RequestHistogram, SECTOR_BYTES
from ..memsim.dram import DRAMModel
from ..memsim.gpu_memory import DeviceMemory
from ..memsim.metrics import TimingModel
from ..memsim.monitor import PCIeTrafficMonitor
from ..memsim.uvm import UVMSpace
from ..memsim.zero_copy import ZeroCopyRegion
from ..types import MemorySpace

#: Default array size for the toy kernel: 64 MiB, as a bulk-copy workload.
DEFAULT_ARRAY_BYTES = 64 * 1024 * 1024


class AccessPattern(enum.Enum):
    """The three zero-copy access patterns of Figure 3."""

    STRIDED = "strided"
    MERGED_ALIGNED = "merged_aligned"
    MERGED_MISALIGNED = "merged_misaligned"


@dataclass(frozen=True)
class ToyResult:
    """Bandwidth figures for one toy-kernel run (one bar group of Figure 4)."""

    pattern: str
    seconds: float
    pcie_bandwidth_gbps: float
    dram_bandwidth_gbps: float
    histogram: RequestHistogram | None
    bytes_transferred: int


def run_array_copy(
    pattern: AccessPattern,
    system: SystemConfig | None = None,
    array_bytes: int = DEFAULT_ARRAY_BYTES,
    element_bytes: int = 4,
) -> ToyResult:
    """Copy a host-pinned 1D array to GPU memory with one access pattern."""
    system = system or default_system()
    if array_bytes <= 0:
        raise ConfigurationError("array_bytes must be positive")
    timing = TimingModel(system)
    dram = DRAMModel(system.host.dram)
    monitor = PCIeTrafficMonitor()
    device = DeviceMemory(system.gpu.memory_bytes)
    space = AddressSpace(device)

    misalign = SECTOR_BYTES if pattern is AccessPattern.MERGED_MISALIGNED else 0
    allocation = space.allocate(
        "toy_array",
        array_bytes,
        MemorySpace.HOST_PINNED,
        element_bytes=element_bytes,
        misalign_bytes=misalign,
    )
    region = ZeroCopyRegion(allocation, monitor, warp_size=system.gpu.warp_size)
    num_elements = array_bytes // element_bytes

    if pattern is AccessPattern.STRIDED:
        # Each thread owns one 128-byte chunk and scans it element by element.
        elements_per_chunk = CACHELINE_BYTES // element_bytes
        chunk_starts = np.arange(0, num_elements, elements_per_chunk, dtype=np.int64)
        chunk_ends = np.minimum(chunk_starts + elements_per_chunk, num_elements)
        histogram = region.access_strided(
            chunk_starts,
            chunk_ends,
            intra_sector_hit_rate=system.gpu.strided_sector_hit_rate,
        )
    else:
        aligned = pattern is AccessPattern.MERGED_ALIGNED
        histogram = region.access_merged(
            np.array([0], dtype=np.int64),
            np.array([num_elements], dtype=np.int64),
            aligned=aligned,
        )

    breakdown = timing.zero_copy_time(histogram)
    dram_bytes = dram.serve_requests(histogram)
    seconds = breakdown.total()
    return ToyResult(
        pattern=pattern.value,
        seconds=seconds,
        pcie_bandwidth_gbps=histogram.total_bytes / seconds / 1e9 if seconds else 0.0,
        dram_bandwidth_gbps=dram_bytes / seconds / 1e9 if seconds else 0.0,
        histogram=histogram,
        bytes_transferred=histogram.total_bytes,
    )


def run_uvm_array_scan(
    system: SystemConfig | None = None,
    array_bytes: int = DEFAULT_ARRAY_BYTES,
    element_bytes: int = 4,
) -> ToyResult:
    """Sequentially scan the same array through UVM (the Figure 4 reference)."""
    system = system or default_system()
    if array_bytes <= 0:
        raise ConfigurationError("array_bytes must be positive")
    timing = TimingModel(system)
    device = DeviceMemory(system.gpu.memory_bytes)
    space = AddressSpace(device)
    allocation = space.allocate(
        "toy_array_uvm", array_bytes, MemorySpace.UVM, element_bytes=element_bytes
    )
    uvm = UVMSpace(
        allocation, system.uvm, capacity_pages=device.page_cache_capacity(system.uvm.page_bytes)
    )
    result = uvm.access_byte_ranges(np.array([0]), np.array([array_bytes]))
    breakdown = timing.uvm_time(result.migrated_bytes, result.page_faults)
    seconds = breakdown.total()
    return ToyResult(
        pattern="uvm",
        seconds=seconds,
        pcie_bandwidth_gbps=result.migrated_bytes / seconds / 1e9 if seconds else 0.0,
        dram_bandwidth_gbps=result.migrated_bytes / seconds / 1e9 if seconds else 0.0,
        histogram=None,
        bytes_transferred=result.migrated_bytes,
    )
