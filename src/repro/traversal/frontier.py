"""Frontier (active vertex set) utilities for vertex-centric traversal.

Algorithm 1 of the paper structures every traversal as repeated expansion of
an *active vertex* set; these helpers manage that set and gather the edges it
owns in a single vectorized pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arrays import ragged_gather_indices
from ..errors import SimulationError
from ..graph.csr import CSRGraph
from ..hotpath import hot_path
from ..types import VERTEX_DTYPE


@dataclass(frozen=True)
class FrontierEdges:
    """All edges owned by the current frontier, in edge-list order."""

    sources: np.ndarray
    destinations: np.ndarray
    edge_indices: np.ndarray

    @property
    def num_edges(self) -> int:
        return self.destinations.size


def as_frontier(vertices: np.ndarray | list[int]) -> np.ndarray:
    """Normalize a vertex collection into a sorted unique int64 array."""
    array = np.asarray(vertices, dtype=VERTEX_DTYPE).ravel()
    return np.unique(array)


def frontier_from_mask(mask: np.ndarray) -> np.ndarray:
    """Active vertex IDs from a boolean per-vertex mask."""
    mask = np.asarray(mask, dtype=bool).ravel()
    return np.flatnonzero(mask).astype(VERTEX_DTYPE)


@hot_path
def frontier_offsets(
    graph: CSRGraph, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validated ``(starts, ends)`` edge-list offsets for a frontier.

    Computing these once per iteration and passing them to both
    :meth:`~repro.traversal.engine.TraversalEngine.process_frontier` and the
    gather helpers avoids indexing ``graph.offsets`` twice per iteration.
    """
    frontier = np.asarray(frontier, dtype=VERTEX_DTYPE).ravel()
    if frontier.size and (frontier.min() < 0 or frontier.max() >= graph.num_vertices):
        raise SimulationError("frontier contains invalid vertex IDs")
    return graph.offsets[frontier], graph.offsets[frontier + 1]


@hot_path
def gather_frontier_edges(
    graph: CSRGraph,
    frontier: np.ndarray,
    starts: np.ndarray | None = None,
    ends: np.ndarray | None = None,
) -> FrontierEdges:
    """Collect every edge whose source vertex is in the frontier.

    ``starts``/``ends`` may carry precomputed ``frontier_offsets`` so callers
    that already paid for the offsets gather do not pay again.
    """
    frontier = np.asarray(frontier, dtype=VERTEX_DTYPE).ravel()
    if starts is None or ends is None:
        starts, ends = frontier_offsets(graph, frontier)
    lengths = ends - starts
    edge_indices = ragged_gather_indices(starts, lengths)
    sources = np.repeat(frontier, lengths)
    destinations = graph.edges[edge_indices]
    return FrontierEdges(
        sources=sources, destinations=destinations, edge_indices=edge_indices
    )


@hot_path
def gather_frontier_destinations(
    graph: CSRGraph,
    frontier: np.ndarray,
    starts: np.ndarray | None = None,
    ends: np.ndarray | None = None,
) -> np.ndarray:
    """Destination vertices of the frontier's edges, in edge-list order.

    The BFS fast path: unlike :func:`gather_frontier_edges` it never
    materializes the per-edge ``sources`` or hands out ``edge_indices`` —
    BFS only ever reads the destinations.
    """
    if starts is None or ends is None:
        starts, ends = frontier_offsets(graph, frontier)
    return graph.edges[ragged_gather_indices(starts, ends - starts)]


def all_vertices_frontier(graph: CSRGraph) -> np.ndarray:
    """The frontier used by CC: every vertex starts active (§5.4)."""
    return np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
