"""Frontier (active vertex set) utilities for vertex-centric traversal.

Algorithm 1 of the paper structures every traversal as repeated expansion of
an *active vertex* set; these helpers manage that set and gather the edges it
owns in a single vectorized pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arrays import ragged_gather_indices
from ..errors import SimulationError
from ..graph.csr import CSRGraph
from ..types import VERTEX_DTYPE


@dataclass(frozen=True)
class FrontierEdges:
    """All edges owned by the current frontier, in edge-list order."""

    sources: np.ndarray
    destinations: np.ndarray
    edge_indices: np.ndarray

    @property
    def num_edges(self) -> int:
        return self.destinations.size


def as_frontier(vertices: np.ndarray | list[int]) -> np.ndarray:
    """Normalize a vertex collection into a sorted unique int64 array."""
    array = np.asarray(vertices, dtype=VERTEX_DTYPE).ravel()
    return np.unique(array)


def frontier_from_mask(mask: np.ndarray) -> np.ndarray:
    """Active vertex IDs from a boolean per-vertex mask."""
    mask = np.asarray(mask, dtype=bool).ravel()
    return np.flatnonzero(mask).astype(VERTEX_DTYPE)


def gather_frontier_edges(graph: CSRGraph, frontier: np.ndarray) -> FrontierEdges:
    """Collect every edge whose source vertex is in the frontier."""
    frontier = np.asarray(frontier, dtype=VERTEX_DTYPE).ravel()
    if frontier.size and (frontier.min() < 0 or frontier.max() >= graph.num_vertices):
        raise SimulationError("frontier contains invalid vertex IDs")
    starts = graph.offsets[frontier]
    lengths = graph.offsets[frontier + 1] - starts
    edge_indices = ragged_gather_indices(starts, lengths)
    sources = np.repeat(frontier, lengths)
    destinations = graph.edges[edge_indices]
    return FrontierEdges(
        sources=sources, destinations=destinations, edge_indices=edge_indices
    )


def all_vertices_frontier(graph: CSRGraph) -> np.ndarray:
    """The frontier used by CC: every vertex starts active (§5.4)."""
    return np.arange(graph.num_vertices, dtype=VERTEX_DTYPE)
