"""Command-line entry point: regenerate figures/tables or serve a workload.

Usage::

    python -m repro.cli list
    python -m repro.cli figure9
    python -m repro.cli all --sources 2
    python -m repro.cli serve-batch examples/workload.json --policy edf
    python -m repro.cli trace examples/workload.json --output trace.jsonl
    python -m repro.cli stats examples/workload.json --format prom
    python -m repro.cli health examples/workload.json --faults 'seed=7;registry.load:transient:n=2:limit=1'
    python -m repro.cli bench-traversal --output BENCH_traversal.json
    python -m repro.cli bench-scheduler --output BENCH_scheduler.json
    python -m repro.cli lint --format json --output lint.json
    python -m repro.cli lint --locks
    python -m repro.cli serve-batch examples/workload.json --store serving.db
    python -m repro.cli store info serving.db
    python -m repro.cli store verify serving.db
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .bench.figures import ALL_FIGURES, FigureResult
from .bench.harness import ExperimentConfig, ExperimentHarness
from .config import DATASET_SCALE, SCHEDULING_POLICIES
from .errors import ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the EMOGI paper's evaluation figures and tables.",
    )
    parser.add_argument(
        "target",
        help="figure4..figure12, table2, table3, 'all', or 'list'",
    )
    parser.add_argument(
        "--sources",
        type=int,
        default=4,
        help="random source vertices per graph (the paper uses 64)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=f"dataset down-scaling factor (default: {DATASET_SCALE:g})",
    )
    return parser


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve-batch",
        description=(
            "Drive the repro.service traversal server with a JSON workload "
            "file and print a throughput/latency report."
        ),
    )
    parser.add_argument("workload", help="path to a workload JSON file")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool width (overrides the workload file)",
    )
    parser.add_argument(
        "--budget-mib",
        type=float,
        default=None,
        help="registry byte budget in MiB (overrides the workload file)",
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=None,
        help="result cache capacity (overrides the workload file)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="abort if the workload does not finish within this many seconds",
    )
    parser.add_argument(
        "--policy",
        choices=SCHEDULING_POLICIES,
        default=None,
        help="scheduling policy for draining batch groups "
        "(overrides the workload file; default fifo)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help="maximum pending jobs; submissions beyond this are rejected "
        "with AdmissionError (overrides the workload file)",
    )
    parser.add_argument(
        "--tenant-quota",
        type=int,
        default=None,
        help="maximum pending jobs per tenant (overrides the workload file)",
    )
    parser.add_argument(
        "--tenant-weights",
        type=_parse_tenant_weights,
        default=None,
        metavar="TENANT=W[,TENANT=W...]",
        help="relative fair-queueing shares for the wfq policy, e.g. "
        "'interactive=4,bulk=1' (overrides the workload file)",
    )
    parser.add_argument(
        "--cost-alpha",
        type=float,
        default=None,
        help="EWMA weight of the newest cost-model observation, in (0, 1] "
        "(overrides the workload file)",
    )
    parser.add_argument(
        "--planner",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="enable/disable the cost-model-driven fusion planner "
        "(--no-planner drains every group solo; overrides the workload file; "
        "default on)",
    )
    parser.add_argument(
        "--reject-infeasible",
        action="store_true",
        default=None,
        help="reject deadline requests the cost model deems unmeetable at "
        "submit instead of letting them expire in the queue",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        help="fraction of requests traced end-to-end, in [0, 1] "
        "(overrides the workload file; default 1.0)",
    )
    parser.add_argument(
        "--trace-output",
        default=None,
        metavar="PATH",
        help="write the run's spans as JSONL to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault-injection plan in REPRO_FAULTS format, e.g. "
        "'seed=7;registry.load:transient:n=2:limit=2' "
        "(overrides the workload file and the environment)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="SQLite file backing the durable serving store: graph catalog, "
        "persistent result cache, cost-model history (overrides the "
        "workload file's store_path; default: no durability)",
    )
    return parser


def _parse_tenant_weights(text: str) -> dict:
    """Parse 'tenant=weight,tenant=weight' CLI syntax into a mapping."""
    weights = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        tenant, separator, weight = item.partition("=")
        if not separator:
            raise argparse.ArgumentTypeError(
                f"expected TENANT=WEIGHT, got {item!r}"
            )
        try:
            weights[tenant.strip()] = float(weight)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"weight for {tenant.strip()!r} must be a number, got {weight!r}"
            ) from None
    if not weights:
        raise argparse.ArgumentTypeError("no tenant weights given")
    return weights


def _build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Run a JSON workload through the traversal service and export "
            "the recorded request/sweep spans as JSONL (one span per line)."
        ),
    )
    parser.add_argument("workload", help="path to a workload JSON file")
    parser.add_argument(
        "--output",
        default="-",
        metavar="PATH",
        help="where to write the JSONL spans (default '-': stdout)",
    )
    parser.add_argument(
        "--sample",
        type=float,
        default=None,
        help="fraction of requests traced, in [0, 1] (default 1.0)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="abort if the workload does not finish within this many seconds",
    )
    return parser


def _build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description=(
            "Run a JSON workload through the traversal service and render "
            "its metrics registry (request outcomes, kernel counters, cost "
            "model error) in Prometheus text or JSON exposition format."
        ),
    )
    parser.add_argument("workload", help="path to a workload JSON file")
    parser.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="exposition format (default: prom)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="abort if the workload does not finish within this many seconds",
    )
    return parser


def _build_health_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro health",
        description=(
            "Run a JSON workload through the traversal service and print a "
            "resilience-focused health summary: terminal outcomes, retries, "
            "sweep timeouts, fault isolation, and circuit-breaker state.  "
            "Exits 1 when the run ended degraded (breaker not closed) or "
            "with unexpected failures."
        ),
    )
    parser.add_argument("workload", help="path to a workload JSON file")
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault-injection plan in REPRO_FAULTS format "
        "(overrides the workload file and the environment)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="SQLite file backing the durable serving store "
        "(overrides the workload file's store_path)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="abort if the workload does not finish within this many seconds",
    )
    return parser


def _build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro store",
        description=(
            "Operate on a durable serving store database (see 'repro "
            "serve-batch --store'): 'info' prints the catalog and row "
            "counts, 'verify' runs SQLite's integrity check (exits 1 on "
            "corruption), 'vacuum' checkpoints the WAL and compacts the "
            "file."
        ),
    )
    parser.add_argument(
        "action",
        choices=("info", "verify", "vacuum"),
        help="operation to run against the store database",
    )
    parser.add_argument("path", help="path to the store's SQLite file")
    return parser


def _store(argv: list[str]) -> int:
    from .errors import StoreError
    from .service.store import store_info, store_vacuum, store_verify

    args = _build_store_parser().parse_args(argv)
    if args.action == "verify":
        ok, detail = store_verify(args.path)
        print(f"{args.path}: {'ok' if ok else 'corrupt'} ({detail})")
        return 0 if ok else 1
    try:
        if args.action == "vacuum":
            store_vacuum(args.path)
            print(f"{args.path}: checkpointed and vacuumed")
            return 0
        info = store_info(args.path)
    except StoreError as exc:
        print(f"store {args.action} failed: {exc}", file=sys.stderr)
        return 2
    graphs = info.pop("graphs")
    print(json.dumps(info, indent=2, sort_keys=True))
    for entry in graphs:
        print(
            f"  {entry['name']}: fingerprint={entry['fingerprint']} "
            f"{entry['num_vertices']}v/{entry['num_edges']}e "
            f"resident={entry['resident']} loads={entry['loads']} "
            f"evictions={entry['evictions']}"
        )
    return 0


def _build_bench_traversal_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench-traversal",
        description=(
            "Benchmark batched multi-source traversal against independent "
            "per-source runs and write the report to BENCH_traversal.json."
        ),
    )
    parser.add_argument(
        "--vertices", type=int, default=None, help="benchmark graph vertex count"
    )
    parser.add_argument(
        "--edges", type=int, default=None, help="benchmark graph edge count"
    )
    parser.add_argument(
        "--sources",
        type=int,
        default=None,
        help="sources per run_average batch (the paper uses 64)",
    )
    parser.add_argument(
        "--apps",
        default="bfs,sssp,cc,pagerank",
        help="comma-separated applications to benchmark: bfs/sssp are "
        "batched across sources, cc/pagerank across platform lanes",
    )
    parser.add_argument(
        "--lanes",
        type=int,
        default=None,
        help="platform lanes per streaming (cc/pagerank) scenario "
        "(default: 8, max 64 per word)",
    )
    parser.add_argument(
        "--strategies",
        default="merged_aligned,uvm",
        help="comma-separated access strategies to benchmark",
    )
    parser.add_argument(
        "--output",
        default="BENCH_traversal.json",
        help="path of the JSON report (default: BENCH_traversal.json)",
    )
    return parser


def _build_bench_scheduler_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench-scheduler",
        description=(
            "Benchmark the serving scheduler: a skewed open-loop burst of "
            "bulk batch groups plus tight-deadline urgent requests, run under "
            "every scheduling policy, reported to BENCH_scheduler.json."
        ),
    )
    parser.add_argument(
        "--vertices", type=int, default=None, help="bulk benchmark graph vertex count"
    )
    parser.add_argument(
        "--edges", type=int, default=None, help="bulk benchmark graph edge count"
    )
    parser.add_argument(
        "--urgent",
        type=int,
        default=None,
        help="number of tight-deadline urgent requests",
    )
    parser.add_argument(
        "--policies",
        default=",".join(SCHEDULING_POLICIES),
        help="comma-separated scheduling policies to compare",
    )
    parser.add_argument(
        "--output",
        default="BENCH_scheduler.json",
        help="path of the JSON report (default: BENCH_scheduler.json)",
    )
    return parser


def _build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Run the repo-invariant lint rules (REPRO101..REPRO106) over the "
            "repro package (or explicit paths) and, with --locks, drive an "
            "in-process service smoke under the lock-order detector.  Exits "
            "non-zero when findings or ordering cycles are reported."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the JSON report to PATH (for CI artifacts)",
    )
    parser.add_argument(
        "--locks",
        action="store_true",
        help="run a small in-process serving smoke with lock-order tracking "
        "armed and report any acquisition-order cycles",
    )
    return parser


def _lock_smoke() -> int:
    """Exercise the serving tier's locks in-process and report cycles.

    Lock tracking is armed for every lock created after this point; the
    module-level locks constructed at import time stay plain (arm
    ``REPRO_LOCKCHECK=1`` in the environment before starting Python to cover
    those too, as the CI chaos step does).
    """
    from .analysis import lockorder
    from .config import ServiceConfig
    from .graph.generators import uniform_random_graph
    from .service.registry import GraphRegistry
    from .service.requests import TraversalRequest
    from .service.service import Service

    lockorder.install(True)
    lockorder.reset()
    try:
        graph = uniform_random_graph(400, 4000, seed=11, name="lint-locks")
        registry = GraphRegistry()
        registry.register_graph(graph)
        with Service(
            registry=registry, config=ServiceConfig(max_workers=2)
        ) as service:
            jobs = [
                service.submit(TraversalRequest("bfs", graph.name, source=s))
                for s in range(4)
            ]
            jobs.append(service.submit(TraversalRequest("sssp", graph.name, source=0)))
            jobs.append(service.submit(TraversalRequest("cc", graph.name)))
            for job in jobs:
                service.result(job, timeout=60)
            service.collect_metrics().render_prometheus()
            service.drain_traces()
    finally:
        lockorder.install(None)
    found = lockorder.cycles()
    print(lockorder.format_report(found))
    return 1 if found else 0


def _lint(argv: list[str]) -> int:
    from .analysis import LintEngine, default_config

    args = _build_lint_parser().parse_args(argv)
    engine = LintEngine(default_config())
    if args.paths:
        report = engine.lint_paths(args.paths)
    else:
        from .analysis import lint_tree

        report = lint_tree()
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.format())
    if args.output is not None:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        except OSError as exc:
            print(f"lint report export failed: {exc}", file=sys.stderr)
            return 2
        print(f"(JSON report written to {args.output})")
    status = 0 if report.clean else 1
    if args.locks:
        lock_status = _lock_smoke()
        status = status or lock_status
    return status


def _bench_scheduler(argv: list[str]) -> int:
    from .bench.scheduler_bench import (
        DEFAULT_EDGES,
        DEFAULT_URGENT,
        DEFAULT_VERTICES,
        bench_scheduler,
        build_bench_graphs,
        format_report,
        headline_ok,
        write_report,
    )

    args = _build_bench_scheduler_parser().parse_args(argv)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    try:
        graphs = build_bench_graphs(
            num_vertices=args.vertices if args.vertices is not None else DEFAULT_VERTICES,
            num_edges=args.edges if args.edges is not None else DEFAULT_EDGES,
        )
        report = bench_scheduler(
            graphs=graphs,
            policies=policies,
            num_urgent=args.urgent if args.urgent is not None else DEFAULT_URGENT,
        )
        path = write_report(report, args.output)
    except (OSError, ValueError, ReproError) as exc:
        print(f"bench-scheduler failed: {exc}", file=sys.stderr)
        return 2
    print(format_report(report))
    print(f"(report written to {path})")
    # headline_ok is None when the fifo/edf contrast was not requested
    # (e.g. --policies largest): a deliberate subset is simply successful.
    return 1 if headline_ok(report) is False else 0


def _bench_traversal(argv: list[str]) -> int:
    from .bench.traversal_bench import (
        DEFAULT_EDGES,
        DEFAULT_LANES,
        DEFAULT_SOURCES,
        DEFAULT_VERTICES,
        bench_traversal,
        build_bench_graph,
        format_report,
        write_report,
    )

    args = _build_bench_traversal_parser().parse_args(argv)
    try:
        graph = build_bench_graph(
            num_vertices=args.vertices if args.vertices is not None else DEFAULT_VERTICES,
            num_edges=args.edges if args.edges is not None else DEFAULT_EDGES,
        )
        report = bench_traversal(
            graph=graph,
            num_sources=args.sources if args.sources is not None else DEFAULT_SOURCES,
            strategies=[s.strip() for s in args.strategies.split(",") if s.strip()],
            applications=[a.strip() for a in args.apps.split(",") if a.strip()],
            num_lanes=args.lanes if args.lanes is not None else DEFAULT_LANES,
        )
        path = write_report(report, args.output)
    except (OSError, ValueError, ReproError) as exc:
        print(f"bench-traversal failed: {exc}", file=sys.stderr)
        return 2
    print(format_report(report))
    print(f"(report written to {path})")
    return 0 if report["summary"]["all_values_match"] else 1


def _make_harness(args: argparse.Namespace) -> ExperimentHarness:
    kwargs: dict = {"num_sources": args.sources}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    return ExperimentHarness(config=ExperimentConfig(**kwargs))


def _run_one(name: str, harness: ExperimentHarness) -> FigureResult:
    function = ALL_FIGURES[name]
    if name == "figure4":
        return function()
    return function(harness)


def _write_trace_jsonl(spans, path: str) -> None:
    """Write span dicts as JSONL to ``path``, or to stdout when ``-``."""
    lines = "".join(json.dumps(span, sort_keys=True) + "\n" for span in spans)
    if path == "-":
        sys.stdout.write(lines)
        return
    with open(path, "w") as handle:
        handle.write(lines)
    print(f"({len(spans)} span(s) written to {path})")


def _serve_batch(argv: list[str]) -> int:
    from .service.workload import serve_workload_file

    args = _build_serve_parser().parse_args(argv)
    try:
        report = serve_workload_file(
            args.workload,
            timeout=args.timeout,
            workers=args.workers,
            budget_mib=args.budget_mib,
            cache_entries=args.cache_entries,
            policy=args.policy,
            queue_limit=args.queue_limit,
            tenant_quota=args.tenant_quota,
            tenant_weights=args.tenant_weights,
            cost_alpha=args.cost_alpha,
            planner=args.planner,
            reject_infeasible=args.reject_infeasible,
            trace_sample=args.trace_sample,
            fault_plan=args.faults,
            store_path=args.store,
        )
    except (OSError, ValueError, ReproError) as exc:
        print(f"serve-batch failed: {exc}", file=sys.stderr)
        return 2
    print(report.to_table())
    if args.trace_output is not None:
        try:
            _write_trace_jsonl(report.traces, args.trace_output)
        except OSError as exc:
            print(f"serve-batch trace export failed: {exc}", file=sys.stderr)
            return 2
    # Jobs that reached a terminal FAILED state (permanent faults, retry
    # budgets exhausted) make the batch itself a failure: chaos drills in CI
    # rely on this to distinguish "rode out the faults" from "lost requests".
    if report.stats.failed > 0:
        print(
            f"serve-batch: {report.stats.failed} request(s) failed",
            file=sys.stderr,
        )
        return 1
    return 0


def _trace(argv: list[str]) -> int:
    from .service.workload import serve_workload_file

    args = _build_trace_parser().parse_args(argv)
    try:
        report = serve_workload_file(
            args.workload, timeout=args.timeout, trace_sample=args.sample
        )
        _write_trace_jsonl(report.traces, args.output)
    except (OSError, ValueError, ReproError) as exc:
        print(f"trace failed: {exc}", file=sys.stderr)
        return 2
    return 0


def _stats(argv: list[str]) -> int:
    from .service.workload import serve_workload_file

    args = _build_stats_parser().parse_args(argv)
    try:
        report = serve_workload_file(args.workload, timeout=args.timeout)
    except (OSError, ValueError, ReproError) as exc:
        print(f"stats failed: {exc}", file=sys.stderr)
        return 2
    registry = report.metrics
    if registry is None:  # defensive: run_workload always attaches a registry
        print("stats failed: workload report carries no metrics", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(registry.render_json(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(registry.render_prometheus())
    return 0


def _health(argv: list[str]) -> int:
    from .service.workload import serve_workload_file

    args = _build_health_parser().parse_args(argv)
    try:
        report = serve_workload_file(
            args.workload,
            timeout=args.timeout,
            fault_plan=args.faults,
            store_path=args.store,
        )
    except (OSError, ValueError, ReproError) as exc:
        print(f"health failed: {exc}", file=sys.stderr)
        return 2
    stats = report.stats
    terminal = stats.completed + stats.failed
    # A degraded/quarantined store never fails requests (serving falls back
    # to in-memory behaviour), so it is *reported* here without flipping the
    # exit status — that stays tied to request outcomes and the native
    # breaker, which chaos drills gate on.
    healthy = stats.breaker_state == "closed" and stats.failed == 0
    lines = [
        "Service health summary",
        "=" * 55,
        f"requests            : {report.total_requests} submitted, "
        f"{stats.deduplicated} coalesced onto in-flight jobs, "
        f"{terminal} terminal ({stats.completed} completed, "
        f"{stats.failed} failed, {stats.expired} of those expired in queue)",
        f"retries             : {stats.retries} "
        f"(transient loader/sweep failures retried with backoff)",
        f"sweep timeouts      : {stats.sweep_timeouts} "
        f"(cancelled at an iteration boundary)",
        f"fault isolation     : {stats.isolations} fused group(s) "
        f"re-executed member-by-member",
        f"native breaker      : {stats.breaker_state} "
        f"({stats.degraded} sweep(s) served degraded on the numpy backend)",
        f"faults injected     : {stats.faults_injected}",
        f"cache errors        : {stats.cache_errors} absorbed "
        f"(reads degraded to misses, writes dropped)",
        f"rejected after close: {stats.rejected_after_close}",
        f"durable store       : {stats.store_state} "
        f"({stats.store_hits} persistent hits, {stats.store_writes} writes "
        f"in {stats.store_flushes} flushes, {stats.store_backfilled} "
        f"backfilled, {stats.store_errors} errors absorbed)",
        "-" * 55,
        f"health: {'ok' if healthy else 'degraded'}",
    ]
    print("\n".join(lines))
    return 0 if healthy else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve-batch":
        return _serve_batch(argv[1:])
    if argv and argv[0] == "trace":
        return _trace(argv[1:])
    if argv and argv[0] == "stats":
        return _stats(argv[1:])
    if argv and argv[0] == "health":
        return _health(argv[1:])
    if argv and argv[0] == "bench-traversal":
        return _bench_traversal(argv[1:])
    if argv and argv[0] == "bench-scheduler":
        return _bench_scheduler(argv[1:])
    if argv and argv[0] == "lint":
        return _lint(argv[1:])
    if argv and argv[0] == "store":
        return _store(argv[1:])

    args = _build_parser().parse_args(argv)
    if args.target == "list":
        print("\n".join(ALL_FIGURES))
        print("serve-batch")
        print("trace")
        print("stats")
        print("health")
        print("bench-traversal")
        print("bench-scheduler")
        print("lint")
        print("store")
        return 0

    targets = list(ALL_FIGURES) if args.target == "all" else [args.target]
    unknown = [name for name in targets if name not in ALL_FIGURES]
    if unknown:
        print(f"unknown target(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    harness = _make_harness(args)
    for name in targets:
        started = time.perf_counter()
        result = _run_one(name, harness)
        elapsed = time.perf_counter() - started
        print(result.to_table())
        print(f"(regenerated in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
