"""Command-line entry point: regenerate any figure or table of the paper.

Usage::

    python -m repro.cli list
    python -m repro.cli figure9
    python -m repro.cli all --sources 2
"""

from __future__ import annotations

import argparse
import sys
import time

from .bench.figures import ALL_FIGURES, FigureResult
from .bench.harness import ExperimentConfig, ExperimentHarness


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the EMOGI paper's evaluation figures and tables.",
    )
    parser.add_argument(
        "target",
        help="figure4..figure12, table2, table3, 'all', or 'list'",
    )
    parser.add_argument(
        "--sources",
        type=int,
        default=4,
        help="random source vertices per graph (the paper uses 64)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset down-scaling factor (default: 2000)",
    )
    return parser


def _make_harness(args: argparse.Namespace) -> ExperimentHarness:
    config = ExperimentConfig(num_sources=args.sources)
    if args.scale is not None:
        config = ExperimentConfig(num_sources=args.sources, scale=args.scale)
    return ExperimentHarness(config=config)


def _run_one(name: str, harness: ExperimentHarness) -> FigureResult:
    function = ALL_FIGURES[name]
    if name == "figure4":
        return function()
    return function(harness)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.target == "list":
        print("\n".join(ALL_FIGURES))
        return 0

    targets = list(ALL_FIGURES) if args.target == "all" else [args.target]
    unknown = [name for name in targets if name not in ALL_FIGURES]
    if unknown:
        print(f"unknown target(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    harness = _make_harness(args)
    for name in targets:
        started = time.perf_counter()
        result = _run_one(name, harness)
        elapsed = time.perf_counter() - started
        print(result.to_table())
        print(f"(regenerated in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
