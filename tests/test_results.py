"""Tests for result containers (TraversalMetrics, AggregateResult)."""

import numpy as np
import pytest

from repro.memsim.metrics import TrafficRecord
from repro.timing import TimeBreakdown
from repro.traversal.results import AggregateResult, TraversalMetrics, TraversalResult
from repro.types import AccessStrategy, Application


def make_metrics(seconds=1.0, zero_copy_bytes=0, uvm_bytes=0, dataset_bytes=1000):
    traffic = TrafficRecord()
    if zero_copy_bytes:
        traffic.request_histogram.add(128, zero_copy_bytes // 128)
    traffic.uvm_migrated_bytes = uvm_bytes
    return TraversalMetrics(
        seconds=seconds,
        breakdown=TimeBreakdown(interconnect_seconds=seconds),
        traffic=traffic,
        iterations=3,
        dataset_bytes=dataset_bytes,
        strategy=AccessStrategy.MERGED_ALIGNED,
        system_name="test",
    )


def make_result(seconds=1.0, **kwargs):
    return TraversalResult(
        application=Application.BFS,
        graph_name="G",
        strategy=AccessStrategy.MERGED_ALIGNED,
        source=0,
        values=np.zeros(4),
        metrics=make_metrics(seconds=seconds, **kwargs),
    )


class TestTraversalMetrics:
    def test_io_amplification(self):
        metrics = make_metrics(uvm_bytes=5000, dataset_bytes=1000)
        assert metrics.io_amplification == pytest.approx(5.0)

    def test_achieved_bandwidth(self):
        metrics = make_metrics(seconds=2.0, zero_copy_bytes=256 * 10**6)
        assert metrics.achieved_bandwidth_gbps == pytest.approx(0.128, rel=0.01)

    def test_bandwidth_zero_time(self):
        metrics = make_metrics(seconds=0.0)
        assert metrics.achieved_bandwidth_gbps == 0.0

    def test_request_distribution(self):
        metrics = make_metrics(zero_copy_bytes=1280)
        assert metrics.request_size_distribution[128] == pytest.approx(1.0)
        assert metrics.total_pcie_requests == 10

    def test_speedup_over(self):
        fast = make_metrics(seconds=1.0)
        slow = make_metrics(seconds=3.0)
        assert fast.speedup_over(slow) == pytest.approx(3.0)
        assert slow.speedup_over(fast) == pytest.approx(1 / 3)


class TestAggregateResult:
    def test_means(self):
        aggregate = AggregateResult(Application.BFS, "G", AccessStrategy.MERGED_ALIGNED)
        aggregate.add(make_result(seconds=1.0))
        aggregate.add(make_result(seconds=3.0))
        assert aggregate.num_runs == 2
        assert aggregate.mean_seconds == pytest.approx(2.0)

    def test_empty_aggregate(self):
        aggregate = AggregateResult(Application.BFS, "G", AccessStrategy.UVM)
        assert aggregate.mean_seconds == 0.0
        assert aggregate.mean_io_amplification == 0.0
        assert aggregate.mean_bandwidth_gbps == 0.0
        assert aggregate.mean_pcie_requests == 0.0
        assert sum(aggregate.mean_request_size_distribution().values()) == 0.0

    def test_speedup_over(self):
        emogi = AggregateResult(Application.BFS, "G", AccessStrategy.MERGED_ALIGNED)
        emogi.add(make_result(seconds=1.0))
        uvm = AggregateResult(Application.BFS, "G", AccessStrategy.UVM)
        uvm.add(make_result(seconds=4.0))
        assert emogi.speedup_over(uvm) == pytest.approx(4.0)

    def test_mean_distribution(self):
        aggregate = AggregateResult(Application.BFS, "G", AccessStrategy.MERGED_ALIGNED)
        aggregate.add(make_result(zero_copy_bytes=1280))
        aggregate.add(make_result(zero_copy_bytes=2560))
        distribution = aggregate.mean_request_size_distribution()
        assert distribution[128] == pytest.approx(1.0)
