"""Tests for the resilience substrate: faults, retries, timeouts, breaker."""

import threading
import time

import pytest

from repro.config import ServiceConfig
from repro.errors import (
    ConfigurationError,
    JobFailedError,
    ServiceClosedError,
    SweepTimeoutError,
)
from repro.service import (
    Cancellation,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    Service,
    TraversalRequest,
    WorkerPool,
    cancellation_scope,
    current_cancellation,
)
from repro.service import faults
from repro.service.resilience import BREAKER_STATE_CODES, iteration_checkpoint
from repro.errors import PermanentFaultError, TransientFaultError
from repro.graph.generators import uniform_random_graph
from repro.types import Application


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no globally armed fault plan."""
    faults.deactivate()
    yield
    faults.deactivate()


def make_graph(name="resil", vertices=300, edges=1500, seed=3):
    return uniform_random_graph(vertices, edges, seed=seed, name=name)


# --------------------------------------------------------------------------- #
# FaultSpec / FaultPlan
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="nope.site", mode="transient")
        with pytest.raises(ConfigurationError):
            FaultSpec(site="cache.get", mode="weird")
        with pytest.raises(ConfigurationError):
            FaultSpec(site="cache.get", mode="transient", probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(site="cache.get", mode="transient", nth=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(site="cache.get", mode="latency", delay_seconds=-1)

    def test_from_spec_parses_seed_modes_and_matchers(self):
        plan = FaultPlan.from_spec(
            "seed=9; registry.load:transient:n=2:limit=3 ;"
            "worker.task:permanent:source=13;cache.put:latency:delay=0.001"
        )
        assert plan.seed == 9
        sites = [spec.site for spec in plan.specs]
        assert sites == ["registry.load", "worker.task", "cache.put"]
        registry_spec = plan.specs[0]
        assert registry_spec.nth == 2 and registry_spec.limit == 3
        assert plan.specs[1].match == (("source", "13"),)
        assert plan.specs[2].delay_seconds == pytest.approx(0.001)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "seed=7",  # arms nothing
            "registry.load",  # missing mode
            "registry.load:transient:p=abc",
            "registry.load:transient:novalue",
            "seed=x;registry.load:transient",
        ],
    )
    def test_from_spec_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_spec(bad)

    def test_nth_and_limit_fire_deterministically(self):
        plan = FaultPlan.from_spec("registry.load:transient:n=2:limit=2")
        fires = []
        for call in range(1, 9):
            try:
                plan.check("registry.load")
            except TransientFaultError:
                fires.append(call)
        assert fires == [2, 4]  # every 2nd call, capped at 2 fires
        assert plan.total_fired() == 2
        assert plan.counts() == {"registry.load": 2}

    def test_probability_is_seed_deterministic(self):
        def pattern(seed):
            plan = FaultPlan.from_spec(f"seed={seed};cache.get:transient:p=0.5")
            fired = []
            for _ in range(32):
                try:
                    plan.check("cache.get")
                    fired.append(False)
                except TransientFaultError:
                    fired.append(True)
            return fired

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # overwhelmingly likely for 32 draws

    def test_matchers_compare_context_as_strings(self):
        plan = FaultPlan.from_spec("worker.task:permanent:source=13:tenant=bulk")
        plan.check("worker.task", source=12, tenant="bulk")  # no match, no raise
        plan.check("worker.task", source=13, tenant="interactive")
        with pytest.raises(PermanentFaultError) as excinfo:
            plan.check("worker.task", source=13, tenant="bulk")
        assert excinfo.value.site == "worker.task"

    def test_latency_mode_sleeps_instead_of_raising(self):
        plan = FaultPlan.from_spec("cache.get:latency:delay=0.01:limit=1")
        started = time.perf_counter()
        plan.check("cache.get")
        assert time.perf_counter() - started >= 0.009
        plan.check("cache.get")  # limit reached: no further delay

    def test_listeners_observe_fires(self):
        plan = FaultPlan.from_spec("cache.get:transient:limit=1")
        seen = []
        plan.add_listener(seen.append)
        with pytest.raises(TransientFaultError):
            plan.check("cache.get")
        plan.check("cache.get")
        assert seen == ["cache.get"]

    def test_global_activation_and_idempotent_deactivate(self):
        assert faults.active_plan() is None
        faults.check("cache.get")  # no plan armed: free no-op
        plan_a = FaultPlan.from_spec("cache.get:transient")
        plan_b = FaultPlan.from_spec("cache.put:transient")
        faults.activate(plan_a)
        faults.activate(plan_b)
        faults.deactivate(plan_a)  # stale deactivation must not disarm b
        assert faults.active_plan() is plan_b
        faults.deactivate(plan_b)
        assert faults.active_plan() is None

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_SPEC, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(faults.ENV_SPEC, "  ")
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(faults.ENV_SPEC, "seed=3;registry.load:transient")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.seed == 3

    def test_describe_mentions_sites_and_fires(self):
        plan = FaultPlan.from_spec("seed=5;worker.task:permanent:source=2")
        text = plan.describe()
        assert "seed=5" in text and "worker.task:permanent" in text
        assert "fired 0" in text


# --------------------------------------------------------------------------- #
# Cancellation
# --------------------------------------------------------------------------- #
class TestCancellation:
    def test_no_budget_never_trips(self):
        token = Cancellation()
        token.check()
        assert token.remaining() is None and not token.cancelled

    def test_budget_expiry_raises_at_checkpoint(self):
        token = Cancellation(budget_seconds=0.0, label="test sweep")
        with pytest.raises(SweepTimeoutError, match="test sweep"):
            token.check()

    def test_explicit_cancel(self):
        token = Cancellation(budget_seconds=60.0)
        token.cancel("operator abort")
        with pytest.raises(SweepTimeoutError, match="operator abort"):
            token.check()

    def test_scope_installs_and_restores_thread_local(self):
        outer = Cancellation(budget_seconds=60.0, label="outer")
        inner = Cancellation(budget_seconds=60.0, label="inner")
        assert current_cancellation() is None
        with cancellation_scope(outer):
            assert current_cancellation() is outer
            with cancellation_scope(inner):
                assert current_cancellation() is inner
            assert current_cancellation() is outer
        assert current_cancellation() is None

    def test_scope_none_is_noop(self):
        with cancellation_scope(None):
            assert current_cancellation() is None

    def test_iteration_checkpoint_polls_current_token(self):
        iteration_checkpoint()  # no token, no plan: no-op
        with cancellation_scope(Cancellation(budget_seconds=0.0)):
            with pytest.raises(SweepTimeoutError):
                iteration_checkpoint()

    def test_scope_is_thread_local(self):
        token = Cancellation(budget_seconds=0.0)
        seen = []

        def other_thread():
            seen.append(current_cancellation())

        with cancellation_scope(token):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen == [None]


# --------------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(backoff_seconds=0.01, multiplier=2.0, jitter=0.0)
        import random

        rng = random.Random(0)
        assert policy.delay(0, rng) == pytest.approx(0.01)
        assert policy.delay(1, rng) == pytest.approx(0.02)
        assert policy.delay(2, rng) == pytest.approx(0.04)

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_seconds=0.01, multiplier=2.0, jitter=0.25)
        import random

        rng = random.Random(42)
        for attempt in range(4):
            base = 0.01 * 2**attempt
            delay = policy.delay(attempt, rng)
            assert base <= delay <= base * 1.25


# --------------------------------------------------------------------------- #
# CircuitBreaker
# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_seconds=60.0,
            on_transition=transitions.append,
        )
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert transitions == ["open"]

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_grants_one_probe(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=10.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock[0] = 10.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # everyone else stays degraded

    def test_probe_success_closes(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_probe_failure_rearms_cooldown(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open" and not breaker.allow()
        clock[0] = 9.0  # cooldown re-armed at t=5: still open
        assert breaker.state == "open"
        clock[0] = 10.0
        assert breaker.state == "half_open"

    def test_snapshot_and_state_codes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=60.0)
        snap = breaker.snapshot()
        assert snap["state"] == "closed" and snap["consecutive_failures"] == 0
        breaker.record_failure()
        assert breaker.snapshot()["transitions"] == 1
        assert BREAKER_STATE_CODES == {"closed": 0, "half_open": 1, "open": 2}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1)


# --------------------------------------------------------------------------- #
# Service-level retries and timeouts
# --------------------------------------------------------------------------- #
class TestServiceRetries:
    def test_transient_loader_fault_is_retried(self):
        plan = FaultPlan.from_spec("registry.load:transient:n=1:limit=1")
        config = ServiceConfig(fault_plan=plan, trace_enabled=True, trace_sample=1.0)
        with Service(config=config) as service:
            service.registry.register_graph(make_graph())
            job = service.submit(
                TraversalRequest(graph="resil", application=Application.BFS, source=0)
            )
            result = service.result(job, timeout=30)
            assert result.values is not None
            stats = service.stats()
            assert stats.retries == 1
            assert stats.faults_injected == 1
            assert stats.completed == 1 and stats.failed == 0
            spans = service.drain_traces()
            retry_spans = [s for s in spans if s["name"] == "retry"]
            assert len(retry_spans) == 1
            assert retry_spans[0]["attributes"]["site"] == "registry"

    def test_retry_budget_exhaustion_fails_the_job(self):
        plan = FaultPlan.from_spec("registry.load:transient")  # fires every time
        config = ServiceConfig(fault_plan=plan, retry_limit=2)
        with Service(config=config) as service:
            service.registry.register_graph(make_graph())
            job = service.submit(
                TraversalRequest(graph="resil", application=Application.BFS, source=0)
            )
            with pytest.raises(JobFailedError):
                service.result(job, timeout=30)
            stats = service.stats()
            assert stats.retries == 2  # limit respected
            assert stats.failed == 1

    def test_permanent_fault_is_not_retried(self):
        plan = FaultPlan.from_spec("registry.load:permanent:limit=1")
        config = ServiceConfig(fault_plan=plan)
        with Service(config=config) as service:
            service.registry.register_graph(make_graph())
            job = service.submit(
                TraversalRequest(graph="resil", application=Application.BFS, source=0)
            )
            with pytest.raises(JobFailedError):
                service.result(job, timeout=30)
            assert service.stats().retries == 0

    def test_fault_plan_spec_string_in_config(self):
        config = ServiceConfig(fault_plan="registry.load:transient:limit=1")
        with Service(config=config) as service:
            service.registry.register_graph(make_graph())
            job = service.submit(
                TraversalRequest(graph="resil", application=Application.BFS, source=0)
            )
            service.result(job, timeout=30)
            assert service.stats().retries == 1

    def test_sweep_timeout_cancels_at_iteration_boundary(self):
        # A zero-ish absolute budget trips the very first checkpoint; the
        # engine observes its own overrun and raises SweepTimeoutError.
        config = ServiceConfig(sweep_timeout=1e-9)
        with Service(config=config) as service:
            service.registry.register_graph(make_graph())
            job = service.submit(
                TraversalRequest(graph="resil", application=Application.BFS, source=0)
            )
            with pytest.raises(JobFailedError) as excinfo:
                service.result(job, timeout=30)
            assert isinstance(excinfo.value.__cause__, SweepTimeoutError)
            stats = service.stats()
            assert stats.sweep_timeouts == 1
            assert stats.breaker_state == "closed"

    def test_multiplier_watchdog_waits_for_cost_samples(self):
        # With only a multiplier configured, an unsampled family has no
        # estimate, so the watchdog stays off and the sweep completes.
        config = ServiceConfig(sweep_timeout_multiplier=5.0)
        with Service(config=config) as service:
            service.registry.register_graph(make_graph())
            job = service.submit(
                TraversalRequest(graph="resil", application=Application.BFS, source=0)
            )
            assert service.result(job, timeout=30).values is not None
            assert service.stats().sweep_timeouts == 0

    def test_close_deactivates_the_plan(self):
        plan = FaultPlan.from_spec("registry.load:transient")
        config = ServiceConfig(fault_plan=plan)
        service = Service(config=config)
        assert faults.active_plan() is plan
        service.close()
        assert faults.active_plan() is None


# --------------------------------------------------------------------------- #
# ServiceClosedError satellites
# --------------------------------------------------------------------------- #
class TestServiceClosed:
    def test_worker_pool_rejects_after_shutdown(self):
        pool = WorkerPool(max_workers=1)
        pool.shutdown()
        with pytest.raises(ServiceClosedError):
            pool.submit(lambda: None)
        with pytest.raises(ServiceClosedError):
            pool.submit(lambda: None)
        assert pool.rejected_after_close == 2

    def test_service_submit_after_close_raises_typed_error(self):
        service = Service()
        service.registry.register_graph(make_graph())
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(
                TraversalRequest(graph="resil", application=Application.BFS, source=0)
            )
        assert service.stats().rejected_after_close >= 1

    def test_close_cancel_pending_fails_queued_jobs_with_typed_error(self):
        release = threading.Event()
        entered = threading.Event()

        def gated_engine(request, graph):
            entered.set()
            release.wait(10)
            from repro.traversal.api import run

            return run(
                request.application, graph, source=request.source,
                strategy=request.strategy, system=request.system,
            )

        config = ServiceConfig(max_workers=1)
        service = Service(config=config, engine=gated_engine)
        service.registry.register_graph(make_graph())
        running = service.submit(
            TraversalRequest(graph="resil", application=Application.BFS, source=0)
        )
        assert entered.wait(10)
        queued = [
            service.submit(
                TraversalRequest(
                    graph="resil", application=Application.BFS, source=s
                )
            )
            for s in (1, 2, 3)
        ]
        service.close(wait=False, cancel_pending=True)
        release.set()
        for job in queued:
            assert job.wait(10)
            assert isinstance(job.error, ServiceClosedError)
        assert running.wait(10)
