"""BFS correctness tests: every access strategy must give reference results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.graph.builder import from_edge_array
from repro.graph.generators import rmat_graph
from repro.traversal.bfs import UNREACHED, bfs_levels, run_bfs
from repro.types import ALL_STRATEGIES, AccessStrategy

from .conftest import to_networkx


class TestReferenceBFS:
    def test_path_graph_levels(self, path_graph):
        levels = bfs_levels(path_graph, 0)
        assert levels.tolist() == [0, 1, 2, 3, 4, 5]

    def test_star_graph_levels(self, star_graph):
        levels = bfs_levels(star_graph, 0)
        assert levels[0] == 0
        assert np.all(levels[1:] == 1)

    def test_unreachable_vertices(self, disconnected_graph):
        levels = bfs_levels(disconnected_graph, 0)
        assert levels[3] == UNREACHED
        assert levels[4] == UNREACHED
        assert levels[5] == UNREACHED

    def test_matches_networkx(self, random_graph):
        nx = pytest.importorskip("networkx")
        reference = nx.single_source_shortest_path_length(to_networkx(random_graph), 0)
        levels = bfs_levels(random_graph, 0)
        for vertex in range(random_graph.num_vertices):
            expected = reference.get(vertex, UNREACHED)
            assert levels[vertex] == expected

    def test_invalid_source(self, path_graph):
        with pytest.raises(SimulationError):
            bfs_levels(path_graph, 99)


class TestSimulatedBFS:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_all_strategies_compute_identical_levels(self, random_graph, strategy):
        reference = bfs_levels(random_graph, 3)
        result = run_bfs(random_graph, 3, strategy=strategy)
        assert np.array_equal(result.values, reference)

    def test_result_metadata(self, random_graph):
        result = run_bfs(random_graph, 0, strategy=AccessStrategy.MERGED_ALIGNED)
        assert result.graph_name == random_graph.name
        assert result.source == 0
        assert result.strategy is AccessStrategy.MERGED_ALIGNED
        assert result.metrics.iterations >= 1
        assert result.seconds > 0

    def test_iterations_equal_bfs_depth(self, path_graph):
        result = run_bfs(path_graph, 0, strategy=AccessStrategy.MERGED_ALIGNED)
        # One kernel launch per level plus the final empty-frontier check is
        # not launched, so iterations == max level + 1.
        assert result.metrics.iterations == 6

    def test_source_only_component(self, disconnected_graph):
        result = run_bfs(disconnected_graph, 3, strategy=AccessStrategy.UVM)
        assert result.values[3] == 0
        assert result.values[4] == 1
        assert result.values[0] == UNREACHED

    def test_invalid_source(self, random_graph):
        with pytest.raises(SimulationError):
            run_bfs(random_graph, -1)

    def test_zero_copy_reads_at_least_the_visited_edges(self, random_graph):
        result = run_bfs(random_graph, 3, strategy=AccessStrategy.MERGED_ALIGNED)
        traffic = result.metrics.traffic
        assert traffic.zero_copy_bytes >= traffic.useful_bytes


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 40)), min_size=1, max_size=200
    ),
    seed=st.integers(0, 3),
)
@settings(max_examples=40, deadline=None)
def test_bfs_levels_are_consistent_with_edges(edges, seed):
    """Property: BFS levels of neighbors differ by at most 1 (undirected graphs)."""
    sources = np.array([e[0] for e in edges])
    destinations = np.array([e[1] for e in edges])
    graph = from_edge_array(sources, destinations, directed=False)
    source = int(sources[seed % len(sources)])
    levels = bfs_levels(graph, source)
    assert levels[source] == 0
    for u, v in graph.iter_edges():
        if levels[u] != UNREACHED:
            assert levels[v] != UNREACHED
            assert abs(levels[u] - levels[v]) <= 1
        else:
            assert levels[v] == UNREACHED or levels[u] == UNREACHED


@pytest.mark.parametrize("strategy", [AccessStrategy.UVM, AccessStrategy.MERGED_ALIGNED])
def test_bfs_on_generated_graph_matches_reference(strategy):
    graph = rmat_graph(300, 3000, seed=77)
    reference = bfs_levels(graph, 7)
    result = run_bfs(graph, 7, strategy=strategy)
    assert np.array_equal(result.values, reference)
