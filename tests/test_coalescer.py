"""Tests for the coalescing-unit model (the Figure 3 behaviours)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.memsim.coalescer import (
    CACHELINE_BYTES,
    REQUEST_SIZES,
    SECTOR_BYTES,
    RequestHistogram,
    coalesce_contiguous_spans,
    coalesce_warp_addresses,
    merged_warp_spans,
    naive_thread_spans,
    strided_request_counts,
)


class TestRequestHistogram:
    def test_starts_empty(self):
        histogram = RequestHistogram()
        assert histogram.total_requests == 0
        assert histogram.total_bytes == 0
        assert set(histogram.counts) == set(REQUEST_SIZES)

    def test_add_and_totals(self):
        histogram = RequestHistogram()
        histogram.add(32, 3)
        histogram.add(128, 2)
        assert histogram.total_requests == 5
        assert histogram.total_bytes == 3 * 32 + 2 * 128

    def test_invalid_size_rejected(self):
        with pytest.raises(SimulationError):
            RequestHistogram().add(48)
        with pytest.raises(SimulationError):
            RequestHistogram({100: 1})

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            RequestHistogram().add(32, -1)

    def test_merge(self):
        first = RequestHistogram.single(32, 2)
        second = RequestHistogram.single(128, 1)
        merged = first.merge(second)
        assert merged.counts[32] == 2
        assert merged.counts[128] == 1
        # Merge is non-destructive.
        assert first.counts[128] == 0

    def test_merge_in_place(self):
        histogram = RequestHistogram.single(64, 1)
        histogram.merge_in_place(RequestHistogram.single(64, 4))
        assert histogram.counts[64] == 5

    def test_distribution(self):
        histogram = RequestHistogram({32: 1, 64: 0, 96: 0, 128: 3})
        distribution = histogram.distribution()
        assert distribution[32] == pytest.approx(0.25)
        assert distribution[128] == pytest.approx(0.75)

    def test_distribution_empty(self):
        assert RequestHistogram().fraction(128) == 0.0

    def test_array_roundtrip(self):
        histogram = RequestHistogram({32: 1, 64: 2, 96: 3, 128: 4})
        assert RequestHistogram.from_array(histogram.as_array()) == histogram

    def test_from_array_wrong_length(self):
        with pytest.raises(SimulationError):
            RequestHistogram.from_array(np.array([1, 2, 3]))


class TestWarpCoalescing:
    """Exact warp-level coalescing, mirroring Figure 3."""

    def test_fully_coalesced_warp_is_one_128b_request(self):
        # 32 threads reading 32 consecutive 4-byte elements of an aligned array.
        addresses = np.arange(32) * 4
        histogram = coalesce_warp_addresses(addresses, access_bytes=4)
        assert histogram.counts == {32: 0, 64: 0, 96: 0, 128: 1}

    def test_misaligned_warp_splits_into_96_plus_32(self):
        # Figure 3(c): the warp window is shifted 32 bytes past the 128B boundary.
        addresses = 32 + np.arange(32) * 4
        histogram = coalesce_warp_addresses(addresses, access_bytes=4)
        assert histogram.counts == {32: 1, 64: 0, 96: 1, 128: 0}

    def test_scattered_threads_generate_32b_requests(self):
        # Figure 3(a): each thread reads the first element of its own 128B block.
        addresses = np.arange(32) * 128
        histogram = coalesce_warp_addresses(addresses, access_bytes=4)
        assert histogram.counts == {32: 32, 64: 0, 96: 0, 128: 0}

    def test_8_byte_elements_span_two_lines(self):
        # 32 threads * 8 bytes = 256 bytes = two full cache lines when aligned.
        addresses = np.arange(32) * 8
        histogram = coalesce_warp_addresses(addresses, access_bytes=8)
        assert histogram.counts == {32: 0, 64: 0, 96: 0, 128: 2}

    def test_duplicate_addresses_coalesce_to_one_sector(self):
        addresses = np.zeros(32, dtype=np.int64)
        histogram = coalesce_warp_addresses(addresses, access_bytes=4)
        assert histogram.counts == {32: 1, 64: 0, 96: 0, 128: 0}

    def test_inactive_lanes_are_ignored(self):
        addresses = np.arange(32) * 4
        mask = np.zeros(32, dtype=bool)
        mask[:8] = True  # only the first 8 lanes (one sector) are active
        histogram = coalesce_warp_addresses(addresses, access_bytes=4, active_mask=mask)
        assert histogram.counts == {32: 1, 64: 0, 96: 0, 128: 0}

    def test_empty_warp(self):
        histogram = coalesce_warp_addresses(np.array([]), access_bytes=4)
        assert histogram.total_requests == 0

    def test_negative_address_rejected(self):
        with pytest.raises(SimulationError):
            coalesce_warp_addresses(np.array([-4]), access_bytes=4)

    def test_mask_length_mismatch(self):
        with pytest.raises(SimulationError):
            coalesce_warp_addresses(np.array([0, 4]), active_mask=np.array([True]))


class TestContiguousSpans:
    def test_aligned_full_line(self):
        histogram = coalesce_contiguous_spans(np.array([0]), np.array([128]))
        assert histogram.counts == {32: 0, 64: 0, 96: 0, 128: 1}

    def test_single_sector(self):
        histogram = coalesce_contiguous_spans(np.array([0]), np.array([8]))
        assert histogram.counts[32] == 1
        assert histogram.total_requests == 1

    def test_misaligned_line_split(self):
        # A 128-byte span starting 32 bytes into a line: 96B head + 32B tail.
        histogram = coalesce_contiguous_spans(np.array([32]), np.array([160]))
        assert histogram.counts == {32: 1, 64: 0, 96: 1, 128: 0}

    def test_multi_line_span(self):
        # 0..512 bytes aligned: four full lines.
        histogram = coalesce_contiguous_spans(np.array([0]), np.array([512]))
        assert histogram.counts == {32: 0, 64: 0, 96: 0, 128: 4}

    def test_multi_line_misaligned_span(self):
        # 96..416: head 32B, two full 128B lines, tail 32B.
        histogram = coalesce_contiguous_spans(np.array([96]), np.array([416]))
        assert histogram.counts == {32: 2, 64: 0, 96: 0, 128: 2}

    def test_multiple_spans_accumulate(self):
        histogram = coalesce_contiguous_spans(
            np.array([0, 128]), np.array([128, 256])
        )
        assert histogram.counts[128] == 2

    def test_empty_spans_are_skipped(self):
        histogram = coalesce_contiguous_spans(np.array([64, 0]), np.array([64, 32]))
        assert histogram.total_requests == 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            coalesce_contiguous_spans(np.array([0]), np.array([32, 64]))

    def test_matches_exact_warp_model_for_warp_sized_spans(self):
        """A 32-lane contiguous access must coalesce identically in both models."""
        for start_element in (0, 3, 16, 21):
            addresses = (start_element + np.arange(32)) * 8
            exact = coalesce_warp_addresses(addresses, access_bytes=8)
            spans = coalesce_contiguous_spans(
                np.array([start_element * 8]), np.array([(start_element + 32) * 8])
            )
            assert exact == spans


class TestStridedRequests:
    def test_one_request_per_sector(self):
        histogram = strided_request_counts(np.array([0]), np.array([256]))
        assert histogram.counts == {32: 8, 64: 0, 96: 0, 128: 0}

    def test_partial_sector_counts_once(self):
        histogram = strided_request_counts(np.array([0]), np.array([10]))
        assert histogram.counts[32] == 1

    def test_span_crossing_sector_boundary(self):
        histogram = strided_request_counts(np.array([24]), np.array([40]))
        assert histogram.counts[32] == 2

    def test_total_bytes_cover_span(self):
        spans_start = np.array([0, 100, 1000])
        spans_end = np.array([64, 200, 1500])
        histogram = strided_request_counts(spans_start, spans_end)
        assert histogram.total_bytes >= (spans_end - spans_start).sum()


class TestMergedWarpSpans:
    def test_unaligned_walk_starts_at_list_start(self):
        starts = np.array([3])
        ends = np.array([40])
        span_start, span_end = merged_warp_spans(starts, ends, element_bytes=8, aligned=False)
        assert span_start[0] == 3 * 8
        assert span_end[-1] == 40 * 8
        # Two iterations: elements [3,35) and [35,40).
        assert len(span_start) == 2

    def test_aligned_walk_iterations_start_on_cacheline_boundaries(self):
        starts = np.array([3])
        ends = np.array([40])
        span_start, span_end = merged_warp_spans(starts, ends, element_bytes=8, aligned=True)
        # The first iteration still begins at the real list start (the lanes
        # before it are masked off, Listing 2), but every later iteration
        # begins exactly on a 128-byte boundary.
        assert span_start[0] == 3 * 8
        assert span_end[-1] == 40 * 8
        assert np.all(span_start[1:] % CACHELINE_BYTES == 0)

    def test_alignment_is_relative_to_the_allocation_base(self):
        # Listing 2 aligns the element index, so with a 128B-aligned base the
        # later iterations are address-aligned...
        aligned_base, _ = merged_warp_spans(
            np.array([3]), np.array([100]), element_bytes=8, base_address=4096, aligned=True
        )
        assert np.all(aligned_base[1:] % CACHELINE_BYTES == 0)
        # ...but a deliberately misaligned base defeats the optimization, as it
        # would on real hardware.
        misaligned_base, _ = merged_warp_spans(
            np.array([3]), np.array([100]), element_bytes=8, base_address=4096 + 32, aligned=True
        )
        assert np.all(misaligned_base[1:] % CACHELINE_BYTES == 32)

    def test_spans_cover_all_requested_elements(self):
        starts = np.array([5, 100, 1000])
        ends = np.array([64, 130, 1003])
        span_start, span_end = merged_warp_spans(starts, ends, element_bytes=8)
        covered = int((span_end - span_start).sum())
        assert covered == int(((ends - starts) * 8).sum())

    def test_empty_ranges_produce_no_spans(self):
        span_start, span_end = merged_warp_spans(
            np.array([10]), np.array([10]), element_bytes=8
        )
        assert span_start.size == 0

    def test_element_bytes_must_divide_alignment(self):
        with pytest.raises(SimulationError):
            merged_warp_spans(np.array([0]), np.array([10]), element_bytes=3)

    def test_naive_thread_spans_are_byte_ranges(self):
        start, end = naive_thread_spans(np.array([2]), np.array([10]), 8, base_address=4096)
        assert start[0] == 4096 + 16
        assert end[0] == 4096 + 80


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
span_strategy = st.lists(
    st.tuples(st.integers(0, 5000), st.integers(1, 200)), min_size=1, max_size=50
)


@given(spans=span_strategy)
@settings(max_examples=100, deadline=None)
def test_contiguous_spans_cover_exactly_the_touched_sectors(spans):
    """Property: merged requests cover every touched 32B sector exactly once."""
    starts = np.array([s * 8 for s, _ in spans], dtype=np.int64)
    ends = np.array([(s + l) * 8 for s, l in spans], dtype=np.int64)
    histogram = coalesce_contiguous_spans(starts, ends)
    expected_sector_count = int(
        (((ends - 1) // SECTOR_BYTES) - (starts // SECTOR_BYTES) + 1).sum()
    )
    assert histogram.total_bytes == expected_sector_count * SECTOR_BYTES


@given(spans=span_strategy)
@settings(max_examples=100, deadline=None)
def test_request_sizes_are_always_valid(spans):
    """Property: every request is 32/64/96/128 bytes and counts are non-negative."""
    starts = np.array([s for s, _ in spans], dtype=np.int64)
    ends = np.array([s + l for s, l in spans], dtype=np.int64)
    histogram = coalesce_contiguous_spans(starts, ends)
    assert set(histogram.counts) == set(REQUEST_SIZES)
    assert all(count >= 0 for count in histogram.counts.values())


@given(
    start=st.integers(0, 10_000),
    length=st.integers(1, 2_000),
    aligned=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_merged_spans_match_exact_warp_simulation(start, length, aligned):
    """Property: the vectorized warp-span expansion agrees with lane-exact coalescing."""
    element_bytes = 8
    starts = np.array([start])
    ends = np.array([start + length])
    span_start, span_end = merged_warp_spans(
        starts, ends, element_bytes=element_bytes, aligned=aligned
    )
    fast = coalesce_contiguous_spans(span_start, span_end)

    # Lane-exact reference: walk the list one warp instruction at a time.
    exact = RequestHistogram()
    elements_per_line = 128 // element_bytes
    walk = start - (start % elements_per_line) if aligned else start
    while walk < start + length:
        lanes = np.arange(walk, min(walk + 32, start + length))
        lanes = lanes[lanes >= start]
        if lanes.size:
            exact.merge_in_place(
                coalesce_warp_addresses(lanes * element_bytes, access_bytes=element_bytes)
            )
        walk += 32
    assert fast == exact


@given(
    ranges=st.lists(
        st.tuples(st.integers(0, 3000), st.integers(1, 100)), min_size=1, max_size=30
    )
)
@settings(max_examples=60, deadline=None)
def test_merged_never_issues_more_requests_than_strided(ranges):
    """Property: warp-merging can only reduce the number of PCIe requests."""
    starts = np.array([s for s, _ in ranges], dtype=np.int64)
    ends = np.array([s + l for s, l in ranges], dtype=np.int64)
    strided = strided_request_counts(starts * 8, ends * 8)
    merged = coalesce_contiguous_spans(*merged_warp_spans(starts, ends, element_bytes=8))
    assert merged.total_requests <= strided.total_requests
