"""Tests for the figure/table reproduction entry points.

These use a reduced harness (two graphs, one source, smaller scale) so they
run quickly; the full-scale reproduction lives in ``benchmarks/``.
"""

import pytest

from repro.bench.figures import (
    ALL_FIGURES,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table2,
)
from repro.bench.harness import ExperimentConfig, ExperimentHarness
from repro.config import DATASET_SCALE


@pytest.fixture(scope="module")
def harness():
    config = ExperimentConfig(
        symbols=("GK", "ML"), num_sources=1, scale=DATASET_SCALE * 10
    )
    return ExperimentHarness(config=config)


class TestRegistry:
    def test_all_figures_present(self):
        expected = {f"figure{i}" for i in range(4, 13)} | {"table2", "table3"}
        assert set(ALL_FIGURES) == expected


class TestFigure4:
    def test_rows_and_ordering(self):
        result = figure4()
        patterns = result.column("pattern")
        assert patterns == ["strided", "merged_aligned", "merged_misaligned", "uvm"]
        strided = result.row_for("strided")[1]
        aligned = result.row_for("merged_aligned")[1]
        assert strided < aligned

    def test_table_rendering(self):
        text = figure4().to_table()
        assert "Figure 4" in text
        assert "pcie_gbps" in text


class TestBFSFigures:
    def test_figure5_distributions_sum_to_one(self, harness):
        result = figure5(harness)
        for row in result.rows:
            assert sum(row[2:]) == pytest.approx(1.0, abs=0.01)

    def test_figure5_aligned_has_more_128b_than_naive(self, harness):
        result = figure5(harness)
        by_key = {(row[0], row[1]): row for row in result.rows}
        for symbol in harness.config.symbols:
            naive_128 = by_key[(symbol, "naive")][5]
            aligned_128 = by_key[(symbol, "merged_aligned")][5]
            assert aligned_128 > naive_128

    def test_figure6_cdf_is_monotone(self, harness):
        result = figure6(harness)
        for row in result.rows:
            values = row[1:]
            assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_figure7_merging_reduces_requests(self, harness):
        result = figure7(harness)
        for row in result.rows:
            naive, merged, aligned = row[1], row[2], row[3]
            assert merged < naive
            assert aligned <= merged

    def test_figure8_ordering(self, harness):
        result = figure8(harness)
        for row in result.rows:
            uvm, naive, merged, aligned = row[1:5]
            assert naive < merged
            assert merged <= aligned * 1.05
        assert result.notes["memcpy_peak_gbps"] == pytest.approx(12.3, abs=0.5)

    def test_figure9_emogi_beats_uvm(self, harness):
        result = figure9(harness)
        average = result.row_for("Avg")
        assert average[3] > 1.0  # merged_aligned average speedup over UVM
        assert average[1] < average[3]  # naive is the weakest variant

    def test_figure10_emogi_amplification_is_low(self, harness):
        result = figure10(harness)
        for row in result.rows:
            assert row[2] < 1.5  # EMOGI column


class TestTable2:
    def test_paper_counts_present(self):
        result = table2()
        row = result.row_for("GK")
        assert row[2] == 134_200_000
        assert row[3] == 4_220_000_000

    def test_scaled_columns_with_harness(self, harness):
        result = table2(harness)
        assert "scaled_|V|" in result.headers
        gk = result.row_for("GK")
        assert gk[6] > 0
