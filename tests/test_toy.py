"""Tests for the §3.3 toy array-copy kernels (Figures 3 and 4)."""

import pytest

from repro.config import ampere_pcie4, default_system
from repro.errors import ConfigurationError
from repro.traversal.toy import (
    AccessPattern,
    run_array_copy,
    run_uvm_array_scan,
)

ARRAY_BYTES = 8 * 1024 * 1024  # keep the unit tests fast


class TestAccessPatterns:
    def test_strided_generates_only_32b_requests(self):
        result = run_array_copy(AccessPattern.STRIDED, array_bytes=ARRAY_BYTES)
        histogram = result.histogram
        assert histogram.counts[32] == histogram.total_requests
        assert histogram.total_requests >= ARRAY_BYTES // 32

    def test_merged_aligned_generates_only_128b_requests(self):
        result = run_array_copy(AccessPattern.MERGED_ALIGNED, array_bytes=ARRAY_BYTES)
        histogram = result.histogram
        assert histogram.counts[128] == histogram.total_requests
        assert histogram.total_bytes == ARRAY_BYTES

    def test_misaligned_splits_into_32_and_96(self):
        result = run_array_copy(AccessPattern.MERGED_MISALIGNED, array_bytes=ARRAY_BYTES)
        histogram = result.histogram
        assert histogram.counts[128] == 0
        assert histogram.counts[96] > 0
        assert histogram.counts[32] > 0
        assert histogram.total_bytes == ARRAY_BYTES


class TestBandwidthShapes:
    """The Figure 4 ordering: strided << misaligned <= aligned ~= memcpy peak."""

    def test_strided_bandwidth_far_below_peak(self, system):
        result = run_array_copy(AccessPattern.STRIDED, system=system, array_bytes=ARRAY_BYTES)
        assert result.pcie_bandwidth_gbps < 0.6 * system.pcie.block_transfer_gbps

    def test_aligned_bandwidth_close_to_memcpy_peak(self, system):
        result = run_array_copy(
            AccessPattern.MERGED_ALIGNED, system=system, array_bytes=ARRAY_BYTES
        )
        assert result.pcie_bandwidth_gbps == pytest.approx(
            system.pcie.block_transfer_gbps, rel=0.05
        )

    def test_misaligned_is_between_strided_and_aligned(self, system):
        strided = run_array_copy(AccessPattern.STRIDED, array_bytes=ARRAY_BYTES)
        misaligned = run_array_copy(AccessPattern.MERGED_MISALIGNED, array_bytes=ARRAY_BYTES)
        aligned = run_array_copy(AccessPattern.MERGED_ALIGNED, array_bytes=ARRAY_BYTES)
        assert strided.pcie_bandwidth_gbps < misaligned.pcie_bandwidth_gbps
        assert misaligned.pcie_bandwidth_gbps <= aligned.pcie_bandwidth_gbps

    def test_strided_dram_traffic_is_double_the_payload(self):
        result = run_array_copy(AccessPattern.STRIDED, array_bytes=ARRAY_BYTES)
        assert result.dram_bandwidth_gbps == pytest.approx(
            2 * result.pcie_bandwidth_gbps, rel=0.01
        )

    def test_uvm_reference_around_9_gbps(self, system):
        result = run_uvm_array_scan(system=system, array_bytes=ARRAY_BYTES)
        assert result.pcie_bandwidth_gbps == pytest.approx(9.0, abs=1.0)

    def test_aligned_scales_with_pcie4(self):
        gen3 = run_array_copy(AccessPattern.MERGED_ALIGNED, array_bytes=ARRAY_BYTES)
        gen4 = run_array_copy(
            AccessPattern.MERGED_ALIGNED, system=ampere_pcie4(), array_bytes=ARRAY_BYTES
        )
        assert gen4.pcie_bandwidth_gbps == pytest.approx(
            2 * gen3.pcie_bandwidth_gbps, rel=0.1
        )

    def test_uvm_does_not_scale_with_pcie4(self):
        gen3 = run_uvm_array_scan(array_bytes=ARRAY_BYTES)
        gen4 = run_uvm_array_scan(system=ampere_pcie4(), array_bytes=ARRAY_BYTES)
        assert gen4.pcie_bandwidth_gbps < 2 * gen3.pcie_bandwidth_gbps * 0.9


class TestValidation:
    def test_invalid_array_size(self):
        with pytest.raises(ConfigurationError):
            run_array_copy(AccessPattern.STRIDED, array_bytes=0)
        with pytest.raises(ConfigurationError):
            run_uvm_array_scan(array_bytes=-1)

    def test_result_fields(self):
        result = run_array_copy(AccessPattern.MERGED_ALIGNED, array_bytes=ARRAY_BYTES)
        assert result.pattern == "merged_aligned"
        assert result.seconds > 0
        assert result.bytes_transferred == ARRAY_BYTES

    def test_default_system_is_volta(self):
        result = run_array_copy(AccessPattern.MERGED_ALIGNED, array_bytes=ARRAY_BYTES)
        expected = default_system().pcie.block_transfer_gbps
        assert result.pcie_bandwidth_gbps == pytest.approx(expected, rel=0.05)
