"""Tests for the serving front door: dedup, caching, batching, failures."""

import threading
import time

import numpy as np
import pytest

from repro.config import ServiceConfig
from repro.errors import (
    ConfigurationError,
    JobFailedError,
    JobNotFoundError,
    ServiceError,
    SimulationError,
    UnknownGraphError,
)
from repro.service import (
    GraphRegistry,
    Job,
    JobStatus,
    Service,
    TraversalRequest,
    WorkerPool,
    default_engine,
)
from repro.service.workload import (
    build_service,
    expand_requests,
    load_workload,
    run_workload,
)
from repro.traversal.api import run
from repro.types import Application


class GatedCountingEngine:
    """Counts engine invocations; optionally blocks or fails per request."""

    def __init__(self, gated: bool = False, fail_sources: tuple = ()):
        self.calls: list[tuple] = []
        self.gate = threading.Event()
        if not gated:
            self.gate.set()
        self.fail_sources = set(fail_sources)
        self._lock = threading.Lock()

    def __call__(self, request, graph):
        with self._lock:
            self.calls.append(request.cache_key)
        self.gate.wait(30)
        if request.source in self.fail_sources:
            raise SimulationError(f"injected failure for source {request.source}")
        return default_engine(request, graph)


@pytest.fixture
def registry(random_graph, uniform_graph):
    registry = GraphRegistry()
    registry.register_graph(random_graph)
    registry.register_graph(uniform_graph)
    return registry


def make_service(registry, engine=None, **config_overrides) -> Service:
    config = ServiceConfig(**{"max_workers": 2, **config_overrides})
    return Service(registry=registry, config=config, engine=engine)


class TestSubmitResult:
    def test_round_trip_matches_direct_run(self, registry, random_graph):
        with make_service(registry) as service:
            job = service.submit(TraversalRequest("bfs", random_graph.name, source=0))
            result = service.result(job, timeout=30)
        direct = run(Application.BFS, random_graph, source=0)
        assert np.array_equal(result.values, direct.values)
        assert job.status is JobStatus.DONE
        assert job.total_seconds is not None and job.total_seconds >= 0

    def test_result_accepts_job_id(self, registry, random_graph):
        with make_service(registry) as service:
            job = service.submit(TraversalRequest("cc", random_graph.name))
            assert service.result(job.job_id, timeout=30) is job.result
            assert service.job(job.job_id) is job

    def test_unknown_job_id(self, registry):
        with make_service(registry) as service:
            with pytest.raises(JobNotFoundError):
                service.job("job-999")

    def test_unknown_graph_rejected_at_submission(self, registry):
        with make_service(registry) as service:
            with pytest.raises(UnknownGraphError):
                service.submit(TraversalRequest("bfs", "nope", source=0))

    def test_submit_after_close_rejected(self, registry, random_graph):
        service = make_service(registry)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(TraversalRequest("bfs", random_graph.name, source=0))

    def test_requests_inherit_service_system(self, registry, random_graph):
        with make_service(registry) as service:
            job = service.submit(TraversalRequest("bfs", random_graph.name, source=0))
            assert job.request.system == service.system


class TestDeduplication:
    def test_identical_inflight_requests_share_one_job(self, registry, random_graph):
        engine = GatedCountingEngine(gated=True)
        with make_service(registry, engine=engine) as service:
            request = TraversalRequest("bfs", random_graph.name, source=1)
            first = service.submit(request)
            second = service.submit(request)
            third = service.submit(TraversalRequest("bfs", random_graph.name, source=1))
            engine.gate.set()
            assert service.wait_all(timeout=30)
        assert second is first and third is first
        assert len(engine.calls) == 1
        stats = service.stats()
        assert stats.deduplicated == 2
        assert stats.executions == 1
        assert stats.completed == 1

    def test_different_requests_not_deduplicated(self, registry, random_graph):
        engine = GatedCountingEngine()
        with make_service(registry, engine=engine) as service:
            a = service.submit(TraversalRequest("bfs", random_graph.name, source=0))
            b = service.submit(TraversalRequest("bfs", random_graph.name, source=1))
            c = service.submit(TraversalRequest("sssp", random_graph.name, source=0))
            assert service.wait_all(timeout=30)
        assert len({a.job_id, b.job_id, c.job_id}) == 3
        assert len(engine.calls) == 3


class TestResultCacheIntegration:
    def test_repeat_request_served_from_cache_without_rerun(
        self, registry, random_graph
    ):
        engine = GatedCountingEngine()
        with make_service(registry, engine=engine) as service:
            request = TraversalRequest("sssp", random_graph.name, source=2)
            first = service.submit(request)
            result = service.result(first, timeout=30)
            second = service.submit(request)
            assert second.done  # completed synchronously at submission
            assert second.from_cache is True
            assert second.job_id != first.job_id
            assert service.result(second, timeout=1) is result
        assert len(engine.calls) == 1
        stats = service.stats()
        assert stats.cache.hits == 1
        assert stats.executions == 1
        assert stats.completed == 2

    def test_cache_disabled_reruns_engine(self, registry, random_graph):
        engine = GatedCountingEngine()
        with make_service(registry, engine=engine, result_cache_entries=0) as service:
            request = TraversalRequest("bfs", random_graph.name, source=3)
            service.result(service.submit(request), timeout=30)
            service.result(service.submit(request), timeout=30)
        assert len(engine.calls) == 2


class TestBatching:
    def test_same_configuration_requests_drain_as_one_batch(
        self, registry, random_graph, uniform_graph
    ):
        engine = GatedCountingEngine(gated=True)
        with make_service(registry, engine=engine, max_workers=1) as service:
            blocker = service.submit(TraversalRequest("bfs", random_graph.name, source=0))
            same_config = [
                service.submit(TraversalRequest("bfs", random_graph.name, source=s))
                for s in range(1, 5)
            ]
            other_config = [
                service.submit(TraversalRequest("cc", uniform_graph.name)),
                service.submit(TraversalRequest("sssp", uniform_graph.name, source=0)),
            ]
            engine.gate.set()
            assert service.wait_all(timeout=30)
        stats = service.stats()
        assert stats.executions == 7
        # blocker drained alone; the 4 same-config jobs accumulated into one
        # batch; the two other-config jobs form one batch each at most.
        assert stats.batches <= 4
        assert stats.amortization > 1.0
        # batching amortizes registry lookups: one get() per batch, not per job
        registry_stats = service.stats().registry
        assert registry_stats.hits + registry_stats.misses == stats.batches
        for job in [blocker, *same_config, *other_config]:
            assert job.status is JobStatus.DONE


class TestBuiltinBatchedExecution:
    """The default (no injected engine) path executes batch groups as one
    multi-source traversal over arena-shared engines."""

    def test_batched_results_match_direct_runs(self, registry, random_graph):
        with make_service(registry, max_workers=1) as service:
            jobs = [
                service.submit(TraversalRequest("bfs", random_graph.name, source=s))
                for s in range(6)
            ]
            results = [service.result(job, timeout=30) for job in jobs]
        for source, result in enumerate(results):
            direct = run(Application.BFS, random_graph, source=source)
            assert np.array_equal(result.values, direct.values)
        stats = service.stats()
        assert stats.executions == 6
        assert stats.completed == 6

    def test_sssp_and_cc_served_by_builtin_path(self, registry, random_graph):
        with make_service(registry, max_workers=2) as service:
            sssp_job = service.submit(
                TraversalRequest("sssp", random_graph.name, source=2)
            )
            cc_job = service.submit(TraversalRequest("cc", random_graph.name))
            sssp_result = service.result(sssp_job, timeout=30)
            cc_result = service.result(cc_job, timeout=30)
        assert np.array_equal(
            sssp_result.values, run(Application.SSSP, random_graph, source=2).values
        )
        assert np.array_equal(
            cc_result.values, run(Application.CC, random_graph).values
        )

    def test_missing_source_poisons_only_its_own_job(self, registry, random_graph):
        """Regression: a BFS job whose source decayed to None used to slip
        past the out-of-range pre-validation into run_batch, where the raised
        error failed the entire multi-source group."""
        good_requests = [
            TraversalRequest("bfs", random_graph.name, source=s) for s in (0, 1)
        ]
        poisoned = TraversalRequest("bfs", random_graph.name, source=2)
        object.__setattr__(poisoned, "source", None)  # bypass normalization
        with make_service(registry) as service:
            jobs = [
                Job(job_id=f"poison-{i}", request=request)
                for i, request in enumerate([*good_requests, poisoned])
            ]
            service._execute_builtin(jobs, random_graph)
        for job, request in zip(jobs[:2], good_requests):
            assert job.status is JobStatus.DONE
            direct = run(Application.BFS, random_graph, source=request.source)
            assert np.array_equal(job.result.values, direct.values)
        assert jobs[2].status is JobStatus.FAILED
        assert isinstance(jobs[2].error, SimulationError)

    def test_invalid_source_fails_only_its_own_job(self, registry, random_graph):
        bad_source = random_graph.num_vertices + 5
        with make_service(registry, max_workers=1) as service:
            good = [
                service.submit(TraversalRequest("bfs", random_graph.name, source=s))
                for s in (0, 1)
            ]
            bad = service.submit(
                TraversalRequest("bfs", random_graph.name, source=bad_source)
            )
            assert service.wait_all(timeout=30)
            for job in good:
                assert service.result(job, timeout=30) is job.result
            with pytest.raises(JobFailedError):
                service.result(bad, timeout=30)
        assert bad.status is JobStatus.FAILED
        assert isinstance(bad.error, SimulationError)


class TestFailurePaths:
    def test_engine_failure_propagates_as_job_failed_error(
        self, registry, random_graph
    ):
        engine = GatedCountingEngine(fail_sources=(7,))
        with make_service(registry, engine=engine) as service:
            bad = service.submit(TraversalRequest("bfs", random_graph.name, source=7))
            good = service.submit(TraversalRequest("bfs", random_graph.name, source=8))
            with pytest.raises(JobFailedError) as excinfo:
                service.result(bad, timeout=30)
            assert isinstance(excinfo.value.__cause__, SimulationError)
            assert excinfo.value.job_id == bad.job_id
            assert bad.status is JobStatus.FAILED
            # a failing job does not poison its batch siblings
            assert service.result(good, timeout=30) is not None
        stats = service.stats()
        assert stats.failed == 1 and stats.completed == 1

    def test_failed_result_never_cached(self, registry, random_graph):
        engine = GatedCountingEngine(fail_sources=(7,))
        with make_service(registry, engine=engine) as service:
            request = TraversalRequest("bfs", random_graph.name, source=7)
            with pytest.raises(JobFailedError):
                service.result(service.submit(request), timeout=30)
            engine.fail_sources.clear()
            result = service.result(service.submit(request), timeout=30)
            assert result is not None
        assert len(engine.calls) == 2

    def test_loader_failure_fails_every_job_in_batch(self, random_graph):
        registry = GraphRegistry()
        registry.register("broken", lambda: (_ for _ in ()).throw(OSError("disk")))
        engine = GatedCountingEngine(gated=True)
        with make_service(registry, engine=engine, max_workers=1) as service:
            # occupy the worker so both broken jobs land in one batch
            registry.register_graph(random_graph)
            blocker = service.submit(TraversalRequest("cc", random_graph.name))
            jobs = [
                service.submit(TraversalRequest("bfs", "broken", source=s))
                for s in (0, 1)
            ]
            engine.gate.set()
            assert service.wait_all(timeout=30)
            for job in jobs:
                assert job.status is JobStatus.FAILED
                with pytest.raises(JobFailedError):
                    service.result(job, timeout=1)
            assert blocker.status is JobStatus.DONE
        assert service.stats().failed == 2

    def test_result_timeout(self, registry, random_graph):
        engine = GatedCountingEngine(gated=True)
        service = make_service(registry, engine=engine)
        try:
            job = service.submit(TraversalRequest("bfs", random_graph.name, source=0))
            with pytest.raises(ServiceError, match="timed out"):
                service.result(job, timeout=0.05)
        finally:
            engine.gate.set()
            service.close()


class TestStats:
    def test_snapshot_counters(self, registry, random_graph):
        with make_service(registry) as service:
            request = TraversalRequest("bfs", random_graph.name, source=0)
            service.result(service.submit(request), timeout=30)
            service.submit(request)  # cache hit
            stats = service.stats()
        assert stats.submitted == 2
        assert stats.completed == 2
        assert stats.executions == 1
        assert stats.pending == 0
        assert stats.uptime_seconds > 0
        assert stats.throughput_rps > 0
        assert 0 <= stats.cache.hit_rate <= 1
        assert "result cache" in stats.describe()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_workers=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(registry_budget_bytes=-5)
        with pytest.raises(ConfigurationError):
            ServiceConfig(result_cache_entries=-1)
        with pytest.raises(ConfigurationError):
            ServiceConfig(job_retention=0)


class TestLifecycle:
    def test_unfinished_job_does_not_block_pruning(self, registry, random_graph):
        """Regression: pruning used to stop at the first unfinished oldest
        job, so one long-running job let the job table grow unbounded."""

        class BlockFirstSourceEngine:
            def __init__(self):
                self.gate = threading.Event()

            def __call__(self, request, graph):
                if request.source == 0:
                    self.gate.wait(30)
                return default_engine(request, graph)

        engine = BlockFirstSourceEngine()
        service = make_service(registry, engine=engine, job_retention=2)
        try:
            blocker = service.submit(
                TraversalRequest("bfs", random_graph.name, source=0)
            )
            finished = []
            for source in range(1, 6):
                job = service.submit(
                    TraversalRequest("bfs", random_graph.name, source=source)
                )
                service.result(job, timeout=30)
                finished.append(job)
            # the long-running blocker is still the oldest entry, yet the
            # finished jobs behind it were pruned down to the retention bound
            with service._lock:
                table_size = len(service._jobs)
            assert table_size <= 3  # blocker + at most job_retention finished
            assert service.job(blocker.job_id) is blocker  # never pruned
            with pytest.raises(JobNotFoundError):
                service.job(finished[0].job_id)
        finally:
            engine.gate.set()
            service.close()
        assert blocker.status is JobStatus.DONE

    def test_close_is_atomic_with_submit(self, registry, random_graph):
        """Regression: close() flipped the closed flag without the lock that
        submit() checks it under, so a racing submit could enqueue after pool
        shutdown and only recover through the ServiceError side channel.
        Under the admission lock every submission either completes (and is
        drained) or is rejected up front — no job may hang unfinished."""
        engine = GatedCountingEngine()
        for _ in range(5):
            service = make_service(registry, engine=engine, max_workers=2)
            accepted: list[Job] = []
            errors: list[BaseException] = []
            start = threading.Barrier(5)

            def hammer(offset: int) -> None:
                start.wait(5)
                for source in range(offset, offset + 20):
                    try:
                        accepted.append(
                            service.submit(
                                TraversalRequest(
                                    "bfs", random_graph.name, source=source
                                )
                            )
                        )
                    except ServiceError as exc:
                        errors.append(exc)
                        return

            threads = [
                threading.Thread(target=hammer, args=(100 * i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            start.wait(5)
            service.close()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
            # every accepted job must reach a terminal state: nothing may be
            # stranded in a queue nobody will ever drain again
            for job in accepted:
                assert job.wait(30), f"{job.job_id} stranded after close()"

    def test_finished_jobs_pruned_beyond_retention(self, registry, random_graph):
        engine = GatedCountingEngine()
        with make_service(registry, engine=engine, job_retention=4) as service:
            jobs = []
            for source in range(8):
                job = service.submit(
                    TraversalRequest("bfs", random_graph.name, source=source)
                )
                service.result(job, timeout=30)
                jobs.append(job)
            with pytest.raises(JobNotFoundError):
                service.job(jobs[0].job_id)  # pruned: oldest finished job
            assert service.job(jobs[-1].job_id) is jobs[-1]
            # Job objects already handed to clients keep working after pruning
            assert jobs[0].status is JobStatus.DONE
            assert jobs[0].result is not None

    def test_close_cancel_pending_fails_queued_jobs(self, registry, random_graph):
        engine = GatedCountingEngine(gated=True)
        service = make_service(registry, engine=engine, max_workers=1)
        blocker = service.submit(TraversalRequest("bfs", random_graph.name, source=0))
        deadline = time.monotonic() + 5
        while not engine.calls and time.monotonic() < deadline:
            time.sleep(0.005)  # wait until the worker is inside the engine
        assert engine.calls
        queued = [
            service.submit(TraversalRequest("sssp", random_graph.name, source=s))
            for s in range(3)
        ]
        service.close(wait=False, cancel_pending=True)
        engine.gate.set()
        assert blocker.wait(10)
        assert blocker.status is JobStatus.DONE  # running work always completes
        for job in queued:
            assert job.wait(10)
            assert job.status is JobStatus.FAILED
            with pytest.raises(JobFailedError):
                service.result(job, timeout=1)
        assert service.stats().failed == 3


class TestRegistryEvictionUnderService:
    def test_budget_keeps_one_graph_resident(self, random_graph, uniform_graph):
        budget = max(random_graph.total_bytes, uniform_graph.total_bytes) + 1
        registry = GraphRegistry(budget_bytes=budget)
        registry.register_graph(random_graph)
        registry.register_graph(uniform_graph)
        with make_service(registry, max_workers=1) as service:
            for _ in range(2):  # alternate graphs to force reload after evict
                for graph in (random_graph, uniform_graph):
                    service.result(
                        service.submit(TraversalRequest("cc", graph.name)), timeout=30
                    )
                    service._cache.clear()  # force the next round to re-execute
        stats = service.stats().registry
        assert stats.resident_graphs == 1
        assert stats.evictions >= 2
        assert stats.loads >= 3  # evicted graphs were transparently reloaded


class TestWorkload:
    def make_spec(self, graph_name):
        return {
            "workers": 2,
            "graphs": [
                {"name": "rmat", "generator": "rmat", "vertices": 200, "edges": 1500}
            ],
            "requests": [
                {"app": "bfs", "graph": "rmat", "sources": [0, 1], "repeat": 2},
                {"app": "cc", "graph": "rmat"},
                {"app": "sssp", "graph": "rmat", "random_sources": 2, "seed": 3},
            ],
        }

    def test_expand_requests(self):
        spec = self.make_spec("rmat")
        with build_service(spec) as service:
            requests = expand_requests(service, spec)
            assert len(requests) == 2 * 2 + 1 + 2
            assert sum(1 for r in requests if r.application is Application.CC) == 1
            report = run_workload(service, requests, timeout=60)
        assert report.total_requests == 7
        assert report.failures == 0
        assert report.unique_results == 5  # the repeated BFS pair collapses
        assert report.requests_per_second > 0
        assert "requests/s" in report.to_table()

    def test_load_workload_validation(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        with pytest.raises(ServiceError):
            load_workload(bad)
        bad.write_text('{"graphs": [], "requests": [{"app": "bfs"}]}')
        with pytest.raises(ServiceError):
            load_workload(bad)

    def test_unknown_generator_rejected(self):
        spec = self.make_spec("rmat")
        spec["graphs"][0]["generator"] = "mystery"
        with pytest.raises(ServiceError):
            build_service(spec)


class TestWorkerPool:
    def test_cancelled_pending_tasks_release_active_count(self):
        """Regression: shutdown(cancel_pending=True) cancelled queued tasks
        whose tracked() wrapper never ran, so `_active` was never decremented
        and ServiceStats.active_workers stayed positive forever."""
        pool = WorkerPool(max_workers=1)
        gate = threading.Event()
        release = threading.Event()

        def blocker():
            gate.set()
            release.wait(30)

        pool.submit(blocker)
        assert gate.wait(5), "worker never started"
        # these can never start: the single worker is occupied
        for _ in range(4):
            pool.submit(lambda: None)
        assert pool.active == 5
        pool.shutdown(wait=False, cancel_pending=True)
        release.set()
        # the running task finishes, the queued ones are cancelled — both
        # paths must decrement, leaving nothing in flight
        deadline = time.monotonic() + 5
        while pool.active and time.monotonic() < deadline:
            time.sleep(0.005)
        assert pool.active == 0
        assert pool.dispatched == 5

    def test_completed_and_failing_tasks_release_active_count(self):
        pool = WorkerPool(max_workers=2)
        done = pool.submit(lambda: 42)
        failed = pool.submit(lambda: 1 / 0)
        assert done.result(timeout=5) == 42
        with pytest.raises(ZeroDivisionError):
            failed.result(timeout=5)
        deadline = time.monotonic() + 5
        while pool.active and time.monotonic() < deadline:
            time.sleep(0.005)
        assert pool.active == 0
        pool.shutdown()

    def test_service_stats_active_workers_zero_after_cancel_close(
        self, registry, random_graph
    ):
        """The service-level view of the same leak: active_workers must read
        zero after close(cancel_pending=True) drops a queued backlog."""
        engine = GatedCountingEngine(gated=True)
        service = make_service(registry, engine=engine, max_workers=1)
        jobs = [
            service.submit(TraversalRequest("bfs", random_graph.name, source=s))
            for s in range(6)
        ]
        deadline = time.monotonic() + 5
        while not engine.calls and time.monotonic() < deadline:
            time.sleep(0.005)
        engine.gate.set()
        service.close(wait=True, cancel_pending=True)
        deadline = time.monotonic() + 5
        while service.stats().active_workers and time.monotonic() < deadline:
            time.sleep(0.005)
        assert service.stats().active_workers == 0
        for job in jobs:
            assert job.done  # nobody is left blocking on a cancelled batch


class TestJobIdentity:
    def test_jobs_compare_by_identity_not_fields(self):
        request = TraversalRequest("bfs", "g", source=0)
        first = Job(job_id="j-1", request=request)
        twin = Job(job_id="j-1", request=request)
        # field-for-field twins are still *different* jobs: queue membership
        # checks must never conflate them
        assert first != twin
        assert first == first
        assert len({first, twin}) == 2

    def test_group_membership_uses_identity(self):
        request = TraversalRequest("bfs", "g", source=0)
        job = Job(job_id="j-1", request=request)
        twin = Job(job_id="j-1", request=request)
        group = [job]
        assert job in group
        assert twin not in group
        group.remove(job)
        assert group == []

    def test_identity_semantics_survive_state_transitions(self):
        request = TraversalRequest("bfs", "g", source=0)
        job = Job(job_id="j-1", request=request)
        table = {job: "entry"}
        job.mark_failed(RuntimeError("boom"))
        # a generated field-wise __hash__/__eq__ would have changed here
        assert table[job] == "entry"
