"""Tests for the HALO-style baseline (reordering + UVM)."""

import numpy as np
import pytest

from repro.baselines.halo import HaloRun, run_halo
from repro.config import titan_xp_pcie3
from repro.errors import ConfigurationError
from repro.graph.reorder import halo_order
from repro.traversal.bfs import bfs_levels
from repro.types import AccessStrategy, Application


class TestHaloCorrectness:
    def test_bfs_levels_match_original_graph(self, random_graph):
        source = 3
        halo = run_halo(Application.BFS, random_graph, source=source)
        permutation = halo_order(random_graph, source=source)
        original_levels = bfs_levels(random_graph, source)
        # Vertex v of the original graph is vertex permutation[v] in HALO's run.
        assert np.array_equal(original_levels, halo.result.values[permutation])

    def test_cc_supported_without_source(self, disconnected_graph):
        halo = run_halo(Application.CC, disconnected_graph)
        assert halo.result.application is Application.CC

    def test_source_required_for_bfs(self, random_graph):
        with pytest.raises(ConfigurationError):
            run_halo(Application.BFS, random_graph)

    def test_uses_uvm_underneath(self, random_graph):
        halo = run_halo(Application.BFS, random_graph, source=0)
        assert halo.result.strategy is AccessStrategy.UVM
        assert halo.result.metrics.traffic.uvm_migrated_bytes > 0


class TestHaloCostModel:
    def test_preprocessing_excluded_by_default(self, random_graph):
        halo = run_halo(Application.BFS, random_graph, source=0)
        assert isinstance(halo, HaloRun)
        assert halo.preprocessing_seconds > 0
        assert halo.seconds == pytest.approx(halo.result.metrics.seconds)

    def test_preprocessing_can_be_included(self, random_graph):
        halo = run_halo(
            Application.BFS, random_graph, source=0, include_preprocessing=True
        )
        assert halo.seconds == pytest.approx(
            halo.result.metrics.seconds + halo.preprocessing_seconds
        )

    def test_accepts_alternate_platform(self, random_graph):
        halo = run_halo(
            Application.BFS, random_graph, source=0, system=titan_xp_pcie3()
        )
        assert "Titan" in halo.result.metrics.system_name


class TestHaloVersusPlainUVM:
    def test_reordering_does_not_hurt_on_large_graphs(self):
        """HALO's whole point: locality ordering should not increase UVM traffic."""
        from repro.graph.datasets import load_dataset, pick_sources
        from repro.traversal.api import bfs

        graph = load_dataset("GK", scale=20000, use_cache=False)
        source = int(pick_sources(graph, 1, seed=5)[0])
        plain = bfs(graph, source, strategy=AccessStrategy.UVM)
        halo = run_halo(Application.BFS, graph, source=source)
        assert (
            halo.result.metrics.traffic.uvm_migrated_bytes
            <= plain.metrics.traffic.uvm_migrated_bytes * 1.05
        )
