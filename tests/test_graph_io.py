"""Tests for graph serialization (npz archives and edge-list text files)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list


class TestNpzRoundtrip:
    def test_roundtrip_unweighted(self, paper_example_graph, tmp_path):
        path = save_npz(paper_example_graph, tmp_path / "graph.npz")
        loaded = load_npz(path)
        assert loaded.offsets.tolist() == paper_example_graph.offsets.tolist()
        assert loaded.edges.tolist() == paper_example_graph.edges.tolist()
        assert loaded.directed == paper_example_graph.directed
        assert loaded.element_bytes == paper_example_graph.element_bytes
        assert loaded.name == paper_example_graph.name
        assert not loaded.has_weights

    def test_roundtrip_weighted(self, random_graph, tmp_path):
        path = save_npz(random_graph, tmp_path / "weighted.npz")
        loaded = load_npz(path)
        assert loaded.has_weights
        assert np.allclose(loaded.weights, random_graph.weights)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_npz(tmp_path / "missing.npz")

    def test_creates_parent_directories(self, path_graph, tmp_path):
        path = save_npz(path_graph, tmp_path / "nested" / "dir" / "g.npz")
        assert path.exists()


class TestEdgeListText:
    def test_roundtrip_directed(self, tmp_path):
        from repro.graph.builder import from_edge_array

        graph = from_edge_array(np.array([0, 1, 2]), np.array([1, 2, 0]), directed=True)
        path = write_edge_list(graph, tmp_path / "edges.txt")
        loaded = read_edge_list(path, directed=True)
        assert set(loaded.iter_edges()) == set(graph.iter_edges())

    def test_roundtrip_with_weights(self, random_graph, tmp_path):
        path = write_edge_list(random_graph, tmp_path / "weighted.txt")
        loaded = read_edge_list(path, directed=True)
        assert loaded.has_weights
        assert loaded.num_edges == random_graph.num_edges

    def test_ignores_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# a comment\n\n0 1\n1 2\n")
        graph = read_edge_list(path, directed=True)
        assert graph.num_edges == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError):
            read_edge_list(tmp_path / "missing.txt")

    def test_default_name_is_file_stem(self, path_graph, tmp_path):
        path = write_edge_list(path_graph, tmp_path / "mygraph.txt")
        assert read_edge_list(path).name == "mygraph"
