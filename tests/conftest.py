"""Shared fixtures for the test suite.

Unit tests run on small hand-made or generated graphs so the whole suite
completes in seconds; the few integration tests that need the paper-scale
datasets build them through the module-level dataset cache so they are only
generated once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import default_system, volta_pcie3
from repro.graph.builder import from_edge_array, from_neighbor_lists
from repro.graph.generators import random_weights, rmat_graph, uniform_random_graph


@pytest.fixture(scope="session")
def system():
    """The default (V100 / PCIe 3.0) simulated platform."""
    return default_system()


@pytest.fixture
def path_graph():
    """A 6-vertex undirected path: 0-1-2-3-4-5."""
    sources = np.array([0, 1, 2, 3, 4])
    destinations = np.array([1, 2, 3, 4, 5])
    return from_edge_array(sources, destinations, directed=False, name="path6")


@pytest.fixture
def star_graph():
    """A star with vertex 0 in the center and 8 leaves."""
    sources = np.zeros(8, dtype=np.int64)
    destinations = np.arange(1, 9)
    return from_edge_array(sources, destinations, directed=False, name="star8")


@pytest.fixture
def paper_example_graph():
    """The 5-vertex undirected graph of Figure 1 in the paper."""
    neighbor_lists = [
        [1, 2],
        [0, 2, 3, 4],
        [0, 1, 4],
        [1],
        [1, 2],
    ]
    return from_neighbor_lists(neighbor_lists, directed=False, name="figure1")


@pytest.fixture
def disconnected_graph():
    """Two components: a triangle {0,1,2} and an edge {3,4}; vertex 5 isolated."""
    sources = np.array([0, 1, 2, 3])
    destinations = np.array([1, 2, 0, 4])
    return from_edge_array(
        sources, destinations, num_vertices=6, directed=False, name="disconnected"
    )


@pytest.fixture(scope="session")
def random_graph():
    """A moderately sized weighted RMAT graph shared across correctness tests."""
    graph = rmat_graph(500, 6000, seed=33, name="rmat500")
    weights = random_weights(graph.num_edges, seed=34)
    return graph.with_weights(weights)


@pytest.fixture(scope="session")
def uniform_graph():
    """A uniform-degree graph shared across traffic-shape tests."""
    return uniform_random_graph(800, 16000, seed=35, name="uniform800")


@pytest.fixture(scope="session")
def weighted_uniform_graph(uniform_graph):
    weights = random_weights(uniform_graph.num_edges, seed=36)
    return uniform_graph.with_weights(weights)


def to_networkx(graph, weighted: bool = False):
    """Convert a CSRGraph to a networkx graph for reference computations."""
    import networkx as nx

    nx_graph = nx.DiGraph() if graph.directed else nx.Graph()
    nx_graph.add_nodes_from(range(graph.num_vertices))
    sources = graph.edge_sources()
    if weighted and graph.weights is not None:
        # CSR graphs may contain parallel edges; keep the cheapest one so the
        # networkx reference matches the relaxation over all parallel edges.
        for src, dst, weight in zip(sources, graph.edges, graph.weights):
            src, dst, weight = int(src), int(dst), float(weight)
            existing = nx_graph.get_edge_data(src, dst)
            if existing is None or existing["weight"] > weight:
                nx_graph.add_edge(src, dst, weight=weight)
    else:
        for src, dst in zip(sources, graph.edges):
            nx_graph.add_edge(int(src), int(dst))
    return nx_graph


def pytest_sessionfinish(session, exitstatus):
    """With REPRO_LOCKCHECK armed, unreviewed ordering cycles fail the run.

    Tests that deliberately provoke inversions (tests/test_lockorder.py)
    reset the graph in their teardown, so anything still recorded here came
    from real serving-tier code paths.
    """
    from repro.analysis import lockorder

    if not lockorder.enabled():
        return
    found = lockorder.cycles()
    if found:
        print(lockorder.format_report(found))
        session.exitstatus = 1
