"""Tests for repro.graph.builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph.builder import from_edge_array, from_neighbor_lists, symmetrize


class TestFromEdgeArray:
    def test_directed(self):
        graph = from_edge_array(np.array([0, 0, 2]), np.array([1, 2, 1]), directed=True)
        assert graph.num_vertices == 3
        assert graph.neighbors(0).tolist() == [1, 2]
        assert graph.neighbors(1).tolist() == []
        assert graph.neighbors(2).tolist() == [1]

    def test_undirected_stores_both_directions(self):
        graph = from_edge_array(np.array([0]), np.array([1]), directed=False)
        assert graph.num_edges == 2
        assert graph.neighbors(0).tolist() == [1]
        assert graph.neighbors(1).tolist() == [0]

    def test_explicit_num_vertices_adds_isolated(self):
        graph = from_edge_array(np.array([0]), np.array([1]), num_vertices=5)
        assert graph.num_vertices == 5
        assert graph.degree(4) == 0

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_array(np.array([0]), np.array([7]), num_vertices=3)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_array(np.array([0, 1]), np.array([1]))

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_array(np.array([-1]), np.array([0]))

    def test_weights_follow_their_edges(self):
        graph = from_edge_array(
            np.array([1, 0]),
            np.array([0, 1]),
            weights=np.array([5.0, 7.0]),
            directed=True,
        )
        assert graph.neighbor_weights(0).tolist() == [7.0]
        assert graph.neighbor_weights(1).tolist() == [5.0]

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            from_edge_array(
                np.array([0]), np.array([1]), weights=np.array([1.0, 2.0])
            )

    def test_remove_self_loops(self):
        graph = from_edge_array(
            np.array([0, 1]), np.array([0, 0]), remove_self_loops=True, directed=True
        )
        assert graph.num_edges == 1
        assert graph.neighbors(1).tolist() == [0]

    def test_deduplicate(self):
        graph = from_edge_array(
            np.array([0, 0, 0]), np.array([1, 1, 2]), deduplicate=True, directed=True
        )
        assert graph.neighbors(0).tolist() == [1, 2]

    def test_neighbors_sorted_by_default(self):
        graph = from_edge_array(np.array([0, 0, 0]), np.array([5, 2, 9]), directed=True)
        assert graph.neighbors(0).tolist() == [2, 5, 9]

    def test_empty_edge_list(self):
        graph = from_edge_array(np.array([]), np.array([]), num_vertices=3)
        assert graph.num_vertices == 3
        assert graph.num_edges == 0


class TestFromNeighborLists:
    def test_basic(self):
        graph = from_neighbor_lists([[1, 2], [], [0]])
        assert graph.num_vertices == 3
        assert graph.offsets.tolist() == [0, 2, 2, 3]
        assert graph.edges.tolist() == [1, 2, 0]

    def test_with_weights(self):
        graph = from_neighbor_lists([[1], [0]], weights=[[2.5], [1.5]])
        assert graph.neighbor_weights(0).tolist() == [2.5]

    def test_weight_shape_mismatch(self):
        with pytest.raises(GraphFormatError):
            from_neighbor_lists([[1], [0]], weights=[[2.5, 3.5], [1.5]])
        with pytest.raises(GraphFormatError):
            from_neighbor_lists([[1], [0]], weights=[[2.5]])


class TestSymmetrize:
    def test_adds_reverse_edges(self):
        directed = from_edge_array(np.array([0, 1]), np.array([1, 2]), directed=True)
        undirected = symmetrize(directed)
        assert not undirected.directed
        edges = set(undirected.iter_edges())
        assert edges == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_idempotent_on_symmetric_graphs(self, paper_example_graph):
        again = symmetrize(paper_example_graph)
        assert again.num_edges == paper_example_graph.num_edges
        assert set(again.iter_edges()) == set(paper_example_graph.iter_edges())


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=1, max_size=120
    )
)
@settings(max_examples=60, deadline=None)
def test_csr_roundtrip_preserves_directed_edge_multiset(edges):
    """Property: building a directed CSR preserves the exact edge multiset."""
    sources = np.array([e[0] for e in edges])
    destinations = np.array([e[1] for e in edges])
    graph = from_edge_array(sources, destinations, directed=True)
    rebuilt = sorted(zip(graph.edge_sources().tolist(), graph.edges.tolist()))
    assert rebuilt == sorted(zip(sources.tolist(), destinations.tolist()))


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), min_size=1, max_size=80
    )
)
@settings(max_examples=60, deadline=None)
def test_symmetrized_graph_is_symmetric(edges):
    """Property: the undirected builder always produces a symmetric edge set."""
    sources = np.array([e[0] for e in edges])
    destinations = np.array([e[1] for e in edges])
    graph = from_edge_array(sources, destinations, directed=False)
    assert graph.is_symmetric()
    original = {(s, d) for s, d in edges} | {(d, s) for s, d in edges}
    assert set(graph.iter_edges()) == original
