"""Integration tests: the paper's headline shapes on the full-scale datasets.

These run on the same 1/2000-scale datasets the benchmarks use (a few million
edge entries), so each test costs a noticeable fraction of a second to a few
seconds.  They assert the *qualitative* results of the evaluation section:
who wins, in which order, and roughly by how much.
"""

import pytest

from repro.config import ampere_pcie3, ampere_pcie4
from repro.graph.datasets import load_dataset, pick_sources
from repro.traversal.api import bfs, cc, sssp
from repro.types import AccessStrategy


@pytest.fixture(scope="module")
def gk_runs():
    """BFS on the GK analog under all four strategies (shared by several tests)."""
    graph = load_dataset("GK")
    source = int(pick_sources(graph, 1, seed=42)[0])
    return {
        strategy: bfs(graph, source, strategy=strategy) for strategy in AccessStrategy
    }


class TestFigure9Shapes:
    def test_strategy_ordering(self, gk_runs):
        """Naive < UVM < Merged <= Merged+Aligned (Figure 9)."""
        uvm = gk_runs[AccessStrategy.UVM].seconds
        naive = gk_runs[AccessStrategy.NAIVE].seconds
        merged = gk_runs[AccessStrategy.MERGED].seconds
        aligned = gk_runs[AccessStrategy.MERGED_ALIGNED].seconds
        assert naive > uvm
        assert merged < uvm
        assert aligned <= merged

    def test_emogi_speedup_in_paper_ballpark(self, gk_runs):
        """EMOGI lands around 3-4x over UVM on GK (the paper averages 3.56x)."""
        speedup = gk_runs[AccessStrategy.UVM].seconds / gk_runs[
            AccessStrategy.MERGED_ALIGNED
        ].seconds
        assert 2.0 < speedup < 6.0

    def test_naive_is_below_uvm_but_not_catastrophic(self, gk_runs):
        ratio = gk_runs[AccessStrategy.UVM].seconds / gk_runs[AccessStrategy.NAIVE].seconds
        assert 0.3 < ratio < 1.0


class TestFigure5And7Shapes:
    def test_request_size_distribution_improves_with_optimizations(self, gk_runs):
        naive = gk_runs[AccessStrategy.NAIVE].metrics.request_size_distribution
        merged = gk_runs[AccessStrategy.MERGED].metrics.request_size_distribution
        aligned = gk_runs[AccessStrategy.MERGED_ALIGNED].metrics.request_size_distribution
        assert naive[32] > 0.99
        assert merged[128] > 0.25
        assert aligned[128] > merged[128]

    def test_request_counts_drop_as_in_figure7(self, gk_runs):
        naive = gk_runs[AccessStrategy.NAIVE].metrics.total_pcie_requests
        merged = gk_runs[AccessStrategy.MERGED].metrics.total_pcie_requests
        aligned = gk_runs[AccessStrategy.MERGED_ALIGNED].metrics.total_pcie_requests
        # The paper reports up to 83.3% reduction from merging and up to a
        # further 28.8% from aligning.
        assert merged < 0.4 * naive
        assert aligned < merged


class TestFigure8Shapes:
    def test_bandwidth_ordering(self, gk_runs):
        uvm = gk_runs[AccessStrategy.UVM].metrics.achieved_bandwidth_gbps
        naive = gk_runs[AccessStrategy.NAIVE].metrics.achieved_bandwidth_gbps
        aligned = gk_runs[AccessStrategy.MERGED_ALIGNED].metrics.achieved_bandwidth_gbps
        assert naive < uvm < aligned
        # EMOGI approaches the ~12.3 GB/s cudaMemcpy ceiling.
        assert aligned > 10.5


class TestFigure10Shapes:
    def test_uvm_amplification_exceeds_emogi(self, gk_runs):
        uvm_amp = gk_runs[AccessStrategy.UVM].metrics.io_amplification
        emogi_amp = gk_runs[AccessStrategy.MERGED_ALIGNED].metrics.io_amplification
        assert uvm_amp > 2.0
        assert emogi_amp < 1.31  # the paper's stated EMOGI bound

    def test_sk_almost_fits_so_uvm_barely_amplifies(self):
        graph = load_dataset("SK")
        source = int(pick_sources(graph, 1, seed=1)[0])
        uvm = bfs(graph, source, strategy=AccessStrategy.UVM)
        assert uvm.metrics.io_amplification < 1.3


class TestFigure11Shapes:
    def test_sssp_also_benefits(self):
        graph = load_dataset("FS")
        source = int(pick_sources(graph, 1, seed=2)[0])
        uvm = sssp(graph, source, strategy=AccessStrategy.UVM)
        emogi = sssp(graph, source, strategy=AccessStrategy.MERGED_ALIGNED)
        assert uvm.seconds / emogi.seconds > 1.5

    def test_cc_speedup_is_smaller_than_bfs(self):
        """§5.4: CC streams the edge list, so UVM is comparatively better."""
        graph = load_dataset("GK")
        source = int(pick_sources(graph, 1, seed=42)[0])
        bfs_speedup = (
            bfs(graph, source, strategy=AccessStrategy.UVM).seconds
            / bfs(graph, source, strategy=AccessStrategy.MERGED_ALIGNED).seconds
        )
        cc_speedup = (
            cc(graph, strategy=AccessStrategy.UVM).seconds
            / cc(graph, strategy=AccessStrategy.MERGED_ALIGNED).seconds
        )
        assert cc_speedup > 1.0
        assert cc_speedup < bfs_speedup


class TestFigure12Shapes:
    def test_emogi_scales_better_than_uvm_with_pcie4(self):
        graph = load_dataset("GU")
        source = int(pick_sources(graph, 1, seed=3)[0])
        times = {}
        for label, system in (("gen3", ampere_pcie3()), ("gen4", ampere_pcie4())):
            for strategy in (AccessStrategy.UVM, AccessStrategy.MERGED_ALIGNED):
                times[(label, strategy)] = bfs(
                    graph, source, strategy=strategy, system=system
                ).seconds
        uvm_scaling = times[("gen3", AccessStrategy.UVM)] / times[("gen4", AccessStrategy.UVM)]
        emogi_scaling = (
            times[("gen3", AccessStrategy.MERGED_ALIGNED)]
            / times[("gen4", AccessStrategy.MERGED_ALIGNED)]
        )
        assert emogi_scaling > uvm_scaling
        assert emogi_scaling > 1.5
        assert uvm_scaling < 1.8
