"""Tests for batched multi-source traversal: bit-exact equivalence and
attribution invariants."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.traversal.api import run_average
from repro.traversal.bfs import bfs_levels, run_bfs
from repro.traversal.engine import TraversalEngine
from repro.traversal.multisource import (
    WORD_BITS,
    PackedLane,
    run_batch,
    run_bfs_batch,
    run_packed_batch,
    run_sssp_batch,
)
from repro.traversal.sssp import run_sssp, sssp_distances
from repro.types import AccessStrategy, Application

ALL_STRATEGIES = tuple(AccessStrategy)


@pytest.fixture(scope="module")
def sources():
    return [0, 3, 17, 42, 99, 250, 499]


class TestBFSEquivalence:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_levels_bit_equal_to_solo_runs(self, random_graph, sources, strategy):
        batch = run_bfs_batch(random_graph, sources, strategy=strategy)
        assert batch.num_sources == len(sources)
        for result in batch.results:
            solo = run_bfs(random_graph, result.source, strategy=strategy)
            assert np.array_equal(result.values, solo.values)
            assert result.values.dtype == solo.values.dtype
            assert result.metrics.iterations == solo.metrics.iterations

    def test_levels_match_reference(self, random_graph, sources):
        batch = run_bfs_batch(random_graph, sources)
        for result in batch.results:
            assert np.array_equal(result.values, bfs_levels(random_graph, result.source))

    def test_disconnected_sources(self, disconnected_graph):
        batch = run_bfs_batch(disconnected_graph, [0, 3, 5])
        assert np.array_equal(
            batch.results[2].values, bfs_levels(disconnected_graph, 5)
        )

    def test_duplicate_sources_allowed(self, random_graph):
        batch = run_bfs_batch(random_graph, [4, 4, 7])
        assert np.array_equal(batch.results[0].values, batch.results[1].values)

    def test_more_than_word_bits_sources_chunk(self, random_graph):
        sources = list(range(WORD_BITS + 6))
        batch = run_bfs_batch(random_graph, sources)
        assert batch.num_sources == len(sources)
        assert batch.num_batches == 2
        for result in (batch.results[0], batch.results[WORD_BITS + 5]):
            assert np.array_equal(
                result.values, bfs_levels(random_graph, result.source)
            )


class TestSSSPEquivalence:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_distances_bit_equal_to_solo_runs(self, random_graph, sources, strategy):
        batch = run_sssp_batch(random_graph, sources, strategy=strategy)
        for result in batch.results:
            solo = run_sssp(random_graph, result.source, strategy=strategy)
            assert np.array_equal(result.values, solo.values)
            assert result.metrics.iterations == solo.metrics.iterations

    def test_distances_match_reference(self, random_graph, sources):
        batch = run_sssp_batch(random_graph, sources)
        for result in batch.results:
            assert np.array_equal(
                result.values, sssp_distances(random_graph, result.source)
            )

    def test_unweighted_graph_uses_unit_weights(self, path_graph):
        batch = run_sssp_batch(path_graph, [0, 5])
        assert np.array_equal(batch.results[0].values, sssp_distances(path_graph, 0))


class TestValidation:
    def test_empty_sources_rejected(self, random_graph):
        with pytest.raises(ConfigurationError):
            run_bfs_batch(random_graph, [])

    def test_out_of_range_source_rejected(self, random_graph):
        with pytest.raises(SimulationError):
            run_bfs_batch(random_graph, [0, random_graph.num_vertices])

    def test_cc_rejected(self, random_graph):
        with pytest.raises(ConfigurationError):
            run_batch(Application.CC, random_graph, [0])


class TestAttribution:
    def test_attributed_seconds_sum_to_batch_total(self, random_graph, sources):
        batch = run_bfs_batch(random_graph, sources)
        attributed = sum(result.metrics.seconds for result in batch.results)
        assert attributed == pytest.approx(batch.batch_seconds, rel=1e-9)

    def test_attributed_traffic_fractions_cover_batch(self, random_graph, sources):
        batch = run_bfs_batch(random_graph, sources)
        total_edges = sum(r.metrics.traffic.edges_processed for r in batch.results)
        batch_edges = sum(m.traffic.edges_processed for m in batch.batch_metrics)
        assert total_edges == pytest.approx(batch_edges, rel=0.01)

    def test_per_source_metrics_carry_run_metadata(self, random_graph):
        batch = run_sssp_batch(random_graph, [1, 2], strategy=AccessStrategy.UVM)
        for result in batch.results:
            assert result.metrics.strategy is AccessStrategy.UVM
            assert result.metrics.dataset_bytes > 0
            assert result.metrics.seconds > 0


class TestEngineReuseAcrossChunks:
    def test_caller_engine_is_reused(self, random_graph):
        engine = TraversalEngine(random_graph, AccessStrategy.MERGED_ALIGNED)
        sources = list(range(WORD_BITS + 2))
        batch = run_bfs_batch(random_graph, sources, engine=engine)
        assert batch.num_batches == 2
        # The second chunk ran on the same (reset) engine; its metrics are
        # the engine's current state.
        assert engine.iterations == batch.batch_metrics[-1].iterations


class TestRunAverageDispatch:
    def test_batched_values_equal_serial_values(self, random_graph, sources):
        batched = run_average(Application.BFS, random_graph, sources, batched=True)
        serial = run_average(Application.BFS, random_graph, sources, batched=False)
        assert batched.num_runs == serial.num_runs == len(sources)
        for a, b in zip(batched.runs, serial.runs):
            assert a.source == b.source
            assert np.array_equal(a.values, b.values)

    def test_single_source_stays_serial(self, random_graph):
        aggregate = run_average(Application.BFS, random_graph, [3], batched=True)
        assert aggregate.num_runs == 1
        assert np.array_equal(aggregate.runs[0].values, bfs_levels(random_graph, 3))

    def test_cc_unaffected_by_batching_flag(self, disconnected_graph):
        a = run_average(Application.CC, disconnected_graph, [0, 1], batched=True)
        b = run_average(Application.CC, disconnected_graph, [0, 1], batched=False)
        assert a.num_runs == b.num_runs == 1
        assert np.array_equal(a.runs[0].values, b.runs[0].values)

    def test_sssp_batched_dispatch(self, weighted_uniform_graph):
        batched = run_average(
            Application.SSSP, weighted_uniform_graph, [0, 9, 27], batched=True
        )
        for run_result in batched.runs:
            assert np.array_equal(
                run_result.values,
                sssp_distances(weighted_uniform_graph, run_result.source),
            )


class TestPackedCrossConfigEquivalence:
    """run_packed_batch: lanes spanning *different* configurations in one word.

    Frontier evolution is engine-independent, so every lane's values must be
    bit-identical to its solo run no matter which other configurations ride
    in the same word — the invariant the fusion planner's packed plans rely
    on.
    """

    def test_bfs_lanes_across_strategies_bit_equal_to_solo(self, random_graph):
        lanes = [
            PackedLane(source, strategy)
            for strategy in ALL_STRATEGIES
            for source in (0, 7, 123)
        ]
        packed = run_packed_batch(Application.BFS, random_graph, lanes)
        assert len(packed.results) == len(lanes)
        assert packed.words == 1
        for lane, result in zip(lanes, packed.results):
            solo = run_bfs(random_graph, lane.source, strategy=lane.strategy)
            assert np.array_equal(result.values, solo.values)
            assert result.values.dtype == solo.values.dtype
            assert result.metrics.strategy is lane.strategy

    def test_sssp_lanes_across_strategies_bit_equal_to_solo(
        self, weighted_uniform_graph
    ):
        lanes = [
            PackedLane(5, AccessStrategy.MERGED_ALIGNED),
            PackedLane(5, AccessStrategy.UVM),
            PackedLane(31, AccessStrategy.NAIVE),
        ]
        packed = run_packed_batch("sssp", weighted_uniform_graph, lanes)
        for lane, result in zip(lanes, packed.results):
            solo = run_sssp(weighted_uniform_graph, lane.source, strategy=lane.strategy)
            assert np.array_equal(result.values, solo.values)

    def test_packed_matches_homogeneous_run_batch(self, random_graph, sources):
        lanes = [PackedLane(source) for source in sources]
        packed = run_packed_batch(Application.BFS, random_graph, lanes)
        plain = run_bfs_batch(random_graph, sources)
        for a, b in zip(packed.results, plain.results):
            assert np.array_equal(a.values, b.values)

    def test_word_chunking_past_64_lanes(self, random_graph):
        lanes = [
            PackedLane(source % random_graph.num_vertices, strategy)
            for source in range(WORD_BITS + 6)
            for strategy in (AccessStrategy.MERGED_ALIGNED,)
        ]
        packed = run_packed_batch("bfs", random_graph, lanes)
        assert packed.words == 2
        for lane, result in zip(lanes, packed.results):
            assert np.array_equal(
                result.values, bfs_levels(random_graph, lane.source)
            )

    def test_one_engine_metrics_entry_per_distinct_config(self, random_graph):
        lanes = [
            PackedLane(0, AccessStrategy.MERGED_ALIGNED),
            PackedLane(1, AccessStrategy.MERGED_ALIGNED),
            PackedLane(2, AccessStrategy.UVM),
        ]
        packed = run_packed_batch("bfs", random_graph, lanes)
        assert len(packed.batch_metrics) == 2  # two configs, one word

    def test_out_of_range_packed_source_rejected(self, random_graph):
        with pytest.raises(SimulationError):
            run_packed_batch(
                "bfs", random_graph, [PackedLane(random_graph.num_vertices)]
            )

    def test_cc_rejected(self, random_graph):
        with pytest.raises(ConfigurationError):
            run_packed_batch(Application.CC, random_graph, [PackedLane(0)])
