"""Tests for active-subgraph compaction (the Subway substrate)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.partition import extract_active_subgraph


class TestExtractActiveSubgraph:
    def test_single_vertex(self, paper_example_graph):
        subgraph = extract_active_subgraph(paper_example_graph, np.array([1]))
        assert subgraph.num_active == 1
        assert subgraph.edges.tolist() == paper_example_graph.neighbors(1).tolist()
        assert subgraph.local_offsets.tolist() == [0, 4]

    def test_multiple_vertices_in_order(self, paper_example_graph):
        subgraph = extract_active_subgraph(paper_example_graph, np.array([0, 3]))
        assert subgraph.edges.tolist() == [1, 2, 1]
        assert subgraph.local_offsets.tolist() == [0, 2, 3]

    def test_whole_graph(self, paper_example_graph):
        everything = np.arange(paper_example_graph.num_vertices)
        subgraph = extract_active_subgraph(paper_example_graph, everything)
        assert subgraph.edges.tolist() == paper_example_graph.edges.tolist()
        assert subgraph.num_edges == paper_example_graph.num_edges

    def test_vertices_with_no_neighbors(self, disconnected_graph):
        subgraph = extract_active_subgraph(disconnected_graph, np.array([5]))
        assert subgraph.num_edges == 0
        assert subgraph.local_offsets.tolist() == [0, 0]

    def test_empty_frontier(self, paper_example_graph):
        subgraph = extract_active_subgraph(paper_example_graph, np.array([], dtype=np.int64))
        assert subgraph.num_active == 0
        assert subgraph.num_edges == 0
        assert subgraph.transfer_bytes == subgraph.offset_bytes

    def test_weights_follow_edges(self, random_graph):
        active = np.array([0, 1, 2])
        subgraph = extract_active_subgraph(random_graph, active, include_weights=True)
        expected = np.concatenate([random_graph.neighbor_weights(v) for v in active])
        assert np.allclose(subgraph.weights, expected)
        assert subgraph.weight_bytes == subgraph.num_edges * 4

    def test_transfer_bytes_accounting(self, paper_example_graph):
        subgraph = extract_active_subgraph(paper_example_graph, np.array([1, 2]))
        expected_edge_bytes = subgraph.num_edges * paper_example_graph.element_bytes
        expected_offset_bytes = 3 * paper_example_graph.element_bytes
        assert subgraph.edge_bytes == expected_edge_bytes
        assert subgraph.offset_bytes == expected_offset_bytes
        assert subgraph.transfer_bytes == expected_edge_bytes + expected_offset_bytes

    def test_4_byte_elements_halve_transfer(self, paper_example_graph):
        graph4 = paper_example_graph.with_element_bytes(4)
        sub8 = extract_active_subgraph(paper_example_graph, np.array([1]))
        sub4 = extract_active_subgraph(graph4, np.array([1]))
        assert sub4.edge_bytes * 2 == sub8.edge_bytes

    def test_out_of_range_vertices_rejected(self, paper_example_graph):
        with pytest.raises(GraphFormatError):
            extract_active_subgraph(paper_example_graph, np.array([99]))

    def test_matches_manual_gather_on_random_graph(self, random_graph):
        rng = np.random.default_rng(0)
        active = np.unique(rng.integers(0, random_graph.num_vertices, size=50))
        subgraph = extract_active_subgraph(random_graph, active)
        expected = np.concatenate(
            [random_graph.neighbors(int(v)) for v in active]
            or [np.array([], dtype=np.int64)]
        )
        assert subgraph.edges.tolist() == expected.tolist()
