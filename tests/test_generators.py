"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import (
    dense_biomedical_graph,
    powerlaw_graph,
    random_weights,
    rmat_graph,
    uniform_random_graph,
    web_graph,
)

GENERATORS = [
    rmat_graph,
    uniform_random_graph,
    powerlaw_graph,
    dense_biomedical_graph,
    web_graph,
]


@pytest.mark.parametrize("generator", GENERATORS)
class TestCommonProperties:
    def test_requested_size(self, generator):
        graph = generator(300, 3000, seed=1)
        assert graph.num_vertices == 300
        assert graph.num_edges == 3000

    def test_deterministic_for_same_seed(self, generator):
        first = generator(200, 1500, seed=42)
        second = generator(200, 1500, seed=42)
        assert first.offsets.tolist() == second.offsets.tolist()
        assert first.edges.tolist() == second.edges.tolist()

    def test_different_seed_changes_graph(self, generator):
        first = generator(200, 1500, seed=1)
        second = generator(200, 1500, seed=2)
        assert (
            first.edges.tolist() != second.edges.tolist()
            or first.offsets.tolist() != second.offsets.tolist()
        )

    def test_valid_csr(self, generator):
        graph = generator(150, 900, seed=3)
        graph.validate()
        assert graph.edges.min() >= 0
        assert graph.edges.max() < graph.num_vertices

    def test_rejects_nonpositive_sizes(self, generator):
        with pytest.raises(GraphFormatError):
            generator(0, 10, seed=1)
        with pytest.raises(GraphFormatError):
            generator(10, 0, seed=1)


class TestDegreeShapes:
    def test_uniform_degrees_are_narrow(self):
        graph = uniform_random_graph(1000, 32000, seed=5, degree_spread=0.5)
        degrees = graph.degrees()
        mean = degrees.mean()
        # GAP-urand-like: everything within mean * (1 +- spread) (plus rounding).
        assert degrees.min() >= mean * 0.4
        assert degrees.max() <= mean * 1.7

    def test_rmat_degrees_are_skewed(self):
        graph = rmat_graph(1024, 16384, seed=6)
        degrees = graph.degrees()
        # Heavy tail: the maximum is far above the mean, and some vertices are cold.
        assert degrees.max() > 5 * degrees.mean()

    def test_powerlaw_skew_exceeds_uniform(self):
        uniform = uniform_random_graph(1000, 30000, seed=7)
        skewed = powerlaw_graph(1000, 30000, seed=7, exponent=2.1)
        assert skewed.degrees().max() > uniform.degrees().max()

    def test_biomedical_high_average_degree(self):
        graph = dense_biomedical_graph(100, 22000, seed=8)
        assert graph.average_degree() == pytest.approx(220, rel=0.01)
        # Nearly all edges belong to long neighbor lists (Figure 6: ML).
        degrees = graph.degrees()
        long_list_edges = degrees[degrees >= 64].sum()
        assert long_list_edges / graph.num_edges > 0.9

    def test_web_graph_locality(self):
        local = web_graph(2000, 30000, seed=9, locality=0.95, locality_scale=20.0,
                          permute_ids=False, hub_cap_fraction=0.0)
        spread = np.abs(local.edges - local.edge_sources())
        # Most destinations are close to the source ID when locality is high.
        assert np.median(spread) < 100

    def test_web_graph_hub_cap_limits_max_degree(self):
        capped = web_graph(2000, 40000, seed=10, hub_cap_fraction=0.001)
        assert capped.degrees().max() < 0.05 * capped.num_edges

    def test_web_graph_permutation_keeps_degree_distribution(self):
        base = web_graph(500, 8000, seed=11, permute_ids=False)
        permuted = web_graph(500, 8000, seed=11, permute_ids=True)
        assert sorted(base.degrees().tolist()) == sorted(permuted.degrees().tolist())


class TestRMATValidation:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(GraphFormatError):
            rmat_graph(64, 256, seed=1, probabilities=(0.5, 0.2, 0.2, 0.2))


class TestRandomWeights:
    def test_range_matches_paper(self):
        weights = random_weights(10000, seed=1)
        # §5.2: random integer weights between 8 and 72.
        assert weights.min() >= 8
        assert weights.max() <= 72
        assert weights.dtype == np.float32

    def test_deterministic(self):
        assert random_weights(100, seed=3).tolist() == random_weights(100, seed=3).tolist()
