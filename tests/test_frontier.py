"""Tests for frontier management and edge gathering."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.traversal.frontier import (
    all_vertices_frontier,
    as_frontier,
    frontier_from_mask,
    gather_frontier_edges,
)


class TestFrontierConstruction:
    def test_as_frontier_sorts_and_deduplicates(self):
        frontier = as_frontier([5, 2, 5, 1])
        assert frontier.tolist() == [1, 2, 5]

    def test_frontier_from_mask(self):
        mask = np.array([True, False, True, False])
        assert frontier_from_mask(mask).tolist() == [0, 2]

    def test_all_vertices_frontier(self, paper_example_graph):
        frontier = all_vertices_frontier(paper_example_graph)
        assert frontier.tolist() == [0, 1, 2, 3, 4]


class TestGatherFrontierEdges:
    def test_single_vertex(self, paper_example_graph):
        edges = gather_frontier_edges(paper_example_graph, np.array([1]))
        assert edges.destinations.tolist() == [0, 2, 3, 4]
        assert edges.sources.tolist() == [1, 1, 1, 1]
        assert edges.num_edges == 4

    def test_multiple_vertices(self, paper_example_graph):
        edges = gather_frontier_edges(paper_example_graph, np.array([0, 3]))
        assert edges.destinations.tolist() == [1, 2, 1]
        assert edges.sources.tolist() == [0, 0, 3]

    def test_edge_indices_point_into_edge_list(self, random_graph):
        frontier = np.array([0, 5, 10])
        edges = gather_frontier_edges(random_graph, frontier)
        assert np.array_equal(
            random_graph.edges[edges.edge_indices], edges.destinations
        )

    def test_empty_frontier(self, paper_example_graph):
        edges = gather_frontier_edges(paper_example_graph, np.array([], dtype=np.int64))
        assert edges.num_edges == 0

    def test_vertex_with_no_neighbors(self, disconnected_graph):
        edges = gather_frontier_edges(disconnected_graph, np.array([5]))
        assert edges.num_edges == 0

    def test_invalid_vertex_rejected(self, paper_example_graph):
        with pytest.raises(SimulationError):
            gather_frontier_edges(paper_example_graph, np.array([42]))
